"""Setuptools shim.

The pyproject.toml deliberately omits a [build-system] table so that
``pip install -e .`` works in fully offline environments (PEP 517 build
isolation would try to download setuptools from PyPI).  All metadata lives
in pyproject.toml; this file only hands control to setuptools.
"""
from setuptools import setup

setup()
