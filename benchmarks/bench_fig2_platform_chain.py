"""F2 — Fig. 2: the complete acquisition chain, block by block.

Fig. 2 draws generator -> potentiostat -> cell -> mux -> TIA -> ADC.  The
bench pushes a known staircase of cell currents through the full chain and
verifies signal integrity at each stage: the reconstructed current must
track the truth within the class resolution, mux settling must be confined
to the switch instants, and saturation must be flagged — not silently
clipped — when the input exceeds the class range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import integrated_chain
from repro.io.tables import render_table


def run_experiment() -> dict:
    chain = integrated_chain("oxidase", n_channels=5)
    fs = chain.adc.sample_rate
    levels = np.array([0.5e-6, 2.0e-6, 5.0e-6, 8.0e-6])
    samples_per_level = int(5.0 * fs)
    currents = np.repeat(levels, samples_per_level)
    times = np.arange(currents.size) / fs
    rng = np.random.default_rng(2011)
    reading = chain.digitize(times, currents, rng=rng)

    stage_rows = []
    for k, level in enumerate(levels):
        segment = slice(k * samples_per_level + samples_per_level // 2,
                        (k + 1) * samples_per_level)
        estimate = float(np.mean(reading.current_estimate[segment]))
        stage_rows.append((level, estimate, estimate - level))

    # Saturation: exceed the +/-10 uA class.
    big = np.full(64, 25.0e-6)
    t_big = np.arange(64) / fs
    saturated = chain.digitize(t_big, big, rng=rng)
    return {
        "chain": chain.describe(),
        "stages": stage_rows,
        "resolution": chain.adc.current_resolution(
            chain.tia.feedback_resistance),
        "saturation_flagged": bool(saturated.any_saturated),
        "noise_rms": chain.noise_rms(),
    }


def test_fig2_chain_signal_integrity(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[f"{true * 1e6:.2f}", f"{est * 1e6:.4f}",
             f"{err * 1e9:+.2f}"]
            for true, est, err in out["stages"]]
    report(out["chain"])
    report(render_table(
        ["True uA", "Reconstructed uA", "Error nA"], rows,
        title="F2 | Fig. 2: staircase through the full chain "
              "(oxidase class, 10 nA LSB)"))
    report(f"ADC current resolution : {out['resolution'] * 1e9:.1f} nA/LSB")
    report(f"chain noise RMS        : {out['noise_rms'] * 1e9:.2f} nA")
    report(f"over-range saturation  : "
           f"{'flagged' if out['saturation_flagged'] else 'MISSED'}")

    for true, est, err in out["stages"]:
        # Reconstruction within 3 LSB through noise + quantisation.
        assert abs(err) <= 3.0 * out["resolution"], true
    assert out["saturation_flagged"]


def test_fig2_mux_settling_confined(benchmark, report):
    """Mux switching artifacts must not leak into the settled window."""

    def run() -> dict:
        chain = integrated_chain("oxidase", n_channels=5)
        fs = chain.adc.sample_rate
        schedule = chain.mux.round_robin(["WE1", "WE2"], dwell=2.0)
        times = np.arange(int(4.0 * fs)) / fs
        currents = np.full(times.size, 4.0e-6)
        reading = chain.digitize(times, currents,
                                 schedule=schedule,
                                 rng=np.random.default_rng(3))
        early = np.abs(reading.current_estimate[1:4] - 4.0e-6)
        settled = np.abs(
            reading.current_estimate[int(1.0 * fs):int(1.9 * fs)] - 4.0e-6)
        return {"early": float(np.max(early)),
                "settled": float(np.mean(settled))}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"F2 | mux: error right after switch {out['early'] * 1e6:.2f} uA, "
           f"in settled window {out['settled'] * 1e9:.1f} nA")
    assert out["early"] > 10.0 * out["settled"]
    assert out["settled"] < 50.0e-9
