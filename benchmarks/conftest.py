"""Benchmark harness plumbing.

Every bench regenerates one table or figure of the paper and produces a
paper-versus-measured report.  Reports are:

- written to ``benchmarks/results/<bench>.txt`` for machine consumption,
- replayed in the terminal summary (pytest captures stdout during tests,
  so ``pytest_terminal_summary`` is the reliable channel).

Use the ``report`` fixture::

    def test_table1(benchmark, report):
        ...
        report(render_table(...))

Throughput benches additionally write machine-readable summaries through
the ``json_report`` fixture — ``benchmarks/results/BENCH_<tag>.json`` —
so the perf trajectory (steps/sec, assays/sec, speedups) is trackable
across PRs without parsing the human-readable tables.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

_RESULTS_DIR = Path(__file__).parent / "results"
_REPORTS: dict[str, list[str]] = {}

#: BLAS/OpenMP thread knobs that change measured throughput; recorded so
#: two BENCH_*.json files are comparable (or visibly not).
_THREAD_ENV_VARS = ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                    "MKL_NUM_THREADS", "NUMEXPR_NUM_THREADS")


def _host_metadata() -> dict:
    import numpy

    return {"cpu_count": os.cpu_count(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": numpy.__version__,
            "thread_env": {name: os.environ.get(name)
                           for name in _THREAD_ENV_VARS}}


@pytest.fixture
def report(request):
    """Collect report text for this bench; emitted at session end."""
    name = request.node.name

    def _append(text: str) -> None:
        _REPORTS.setdefault(name, []).append(str(text))

    return _append


@pytest.fixture
def json_report():
    """Write one machine-readable bench summary: BENCH_<tag>.json."""

    def _write(tag: str, payload: dict) -> None:
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"BENCH_{tag}.json"
        payload = {**payload, "host": _host_metadata()}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _write


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    _RESULTS_DIR.mkdir(exist_ok=True)
    terminalreporter.write_sep("=", "paper-vs-measured reports")
    for name, chunks in _REPORTS.items():
        text = "\n".join(chunks)
        (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)
