"""F4 — Fig. 4: the five-electrode multi-target platform, end to end.

The full Sec. III scenario: the silicon chip (5 gold WEs at 0.23 mm^2,
shared silver RE and gold CE), functionalized for glucose / lactate /
glutamate / CYP2B4 (benzphetamine + aminopyrine on ONE electrode) /
CYP11A1 (cholesterol), measured through one multiplexed integrated chain.
All six targets must be recovered from a mid-range sample; the CYP2B4
electrode must resolve its two drugs as two distinct peaks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import (
    PAPER_PANEL_MID_CONCENTRATIONS,
    integrated_chain,
    paper_biointerface,
    paper_panel_cell,
)
from repro.io.tables import render_table
from repro.measurement.panel import PanelProtocol
from repro.units import v_to_mv


def run_experiment() -> dict:
    cell = paper_panel_cell()
    chain = integrated_chain("cyp_micro", n_channels=5, seed=44)
    protocol = PanelProtocol()
    result = protocol.run(cell, chain, rng=np.random.default_rng(44))
    return {"result": result, "chip": paper_biointerface()}


def test_fig4_multitarget_panel(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    result = out["result"]
    report(out["chip"].layout_summary())
    rows = []
    for target, loading in PAPER_PANEL_MID_CONCENTRATIONS.items():
        readout = result.readouts.get(target)
        if readout is None:
            rows.append([target, f"{loading:g}", "-", "NOT RECOVERED", "-"])
            continue
        position = (f"{v_to_mv(readout.peak.potential):+.0f} mV"
                    if readout.peak else "-")
        rows.append([target, f"{loading:g}", readout.we_name,
                     f"{readout.signal * 1e9:.1f}", position])
    report(render_table(
        ["Target", "Loaded mM", "WE", "Signal nA", "Peak position"],
        rows, title="F4 | Fig. 4: multiplexed six-target assay "
                    "(0.23 mm^2 electrodes, +/-1 uA @ 1 nA readout)"))
    report(f"assay time (sequential multiplexed scan): "
           f"{result.assay_time:.0f} s")

    # Every panel target recovered.
    for target in PAPER_PANEL_MID_CONCENTRATIONS:
        assert target in result.readouts, target
    # The CYP2B4 electrode resolves its two drugs by peak position.
    benz = result.readouts["benzphetamine"]
    amino = result.readouts["aminopyrine"]
    assert benz.we_name == amino.we_name == "WE4"
    assert benz.peak is not None and amino.peak is not None
    separation = benz.peak.potential - amino.peak.potential
    assert separation == pytest.approx(0.150, abs=0.050)
    # Oxidase channels deliver strong signals (tens of LSB).
    for target in ("glucose", "lactate", "glutamate"):
        assert result.readouts[target].signal > 50.0e-9


def test_fig4_signals_track_concentration(benchmark, report):
    """Doubling the sample concentrations roughly doubles every signal —
    the platform is quantitative, not just detect/no-detect."""

    def run() -> dict:
        chain = integrated_chain("cyp_micro", n_channels=5, seed=45)
        protocol = PanelProtocol(ca_dwell=40.0)
        signals = {}
        for scale in (1.0, 2.0):
            loading = {t: min(v * scale, 8.0)
                       for t, v in PAPER_PANEL_MID_CONCENTRATIONS.items()}
            cell = paper_panel_cell(loading)
            result = protocol.run(cell, chain,
                                  rng=np.random.default_rng(45))
            signals[scale] = {t: r.signal
                              for t, r in result.readouts.items()}
        return signals

    signals = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for target in ("glucose", "lactate", "glutamate"):
        s1 = signals[1.0][target]
        s2 = signals[2.0][target]
        rows.append([target, f"{s1 * 1e9:.1f}", f"{s2 * 1e9:.1f}",
                     f"{s2 / s1:.2f}"])
        # Michaelis-Menten bends the response: ratio in (1.3, 2.2).
        assert 1.3 <= s2 / s1 <= 2.2, target
    report(render_table(
        ["Target", "Signal @1x nA", "Signal @2x nA", "Ratio"],
        rows, title="F4 | concentration tracking (oxidase channels)"))
