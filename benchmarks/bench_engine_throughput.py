"""E1 — engine throughput: scalar per-channel loop vs batched engine.

Every protocol bottoms out in "advance M diffusion systems one dt"; this
bench measures that inner loop on an 8-channel panel workload (eight CYP
substrate channels, i.e. sixteen coupled diffusion fields — one cyclic
voltammetry sweep's worth of chemistry for a full Fig. 4 panel chip).

Three implementations run the identical potential program:

- **seed scalar** — the seed's solver: one channel at a time, each step
  performing two ``thomas_solve`` calls that re-derive the elimination
  coefficients in a pure-Python recurrence (the pre-engine hot path);
- **prefactored scalar** — today's ``_RedoxChannelSimulator.step``,
  which reuses the stepper's one-time factorization but still loops
  over channels in Python;
- **batched** — :class:`repro.engine.simulation.SimulationEngine`: all
  2M fields advance in one prefactored, batch-vectorised solve.

All three produce bit-identical currents (pinned in
``tests/test_engine.py``); the acceptance bar here is >= 5x steps/sec
for the batched engine over the seed scalar solver.

A second axis measures **cross-cell CV fusion** (PR 6): a fleet of
``N_FUSED_SWEEPS`` cells each running the same 8-channel sweep, executed
as (a) one batched engine per sweep, sequentially — the pre-fusion
fleet's cost profile — and (b) all sweeps' channels stacked into one
engine driven by per-system potential programs, exactly what
:class:`repro.engine.scheduler.SweepBatch` builds.  Acceptance: the
fused pass delivers >= 2x total sweep-steps/sec over per-sweep batched,
at bit-identical fluxes.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.chem import constants as C
from repro.chem.diffusion import thomas_solve
from repro.chem.enzymes import CypSubstrateChannel, CytochromeP450, ProstheticGroup
from repro.chem.redox import ButlerVolmerKinetics, RedoxCouple
from repro.chem.solution import Chamber
from repro.data.catalog import CYP_BASE_K0
from repro.electronics.waveform import TriangleWaveform, uniform_sample_times
from repro.engine.simulation import SimulationEngine
from repro.io.tables import render_table
from repro.measurement.voltammetry import build_channel_simulators
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_cytochrome
from repro.sensors.materials import get_material

N_CHANNELS = 8
SAMPLE_RATE = 10.0
SCAN_RATE = 0.02
N_FUSED_SWEEPS = 8

#: Eight electroactive drugs with registered diffusivities — one channel
#: per panel electrode, spread across the sweep window.
_SUBSTRATES = ("benzphetamine", "aminopyrine", "bupropion", "clozapine",
               "cyclophosphamide", "diclofenac", "erythromycin", "etoposide")


def build_panel_channels():
    """The 8-channel workload: one WE carrying every panel channel."""
    channels = tuple(
        CypSubstrateChannel(
            substrate,
            ButlerVolmerKinetics(
                RedoxCouple(substrate, -0.15 - 0.05 * k, 2),
                k0=CYP_BASE_K0),
            efficiency=0.08, km=20.0)
        for k, substrate in enumerate(_SUBSTRATES))
    probe = CytochromeP450(
        name="panel8", display_name="8-channel panel probe",
        prosthetic_group=ProstheticGroup.HEME, channels=channels)
    we = WorkingElectrode(
        electrode=Electrode(name="WE_panel", role=ElectrodeRole.WORKING,
                            material=get_material("rhodium_graphite"),
                            area=7.0e-6),
        functionalization=with_cytochrome(probe))
    chamber = Chamber(name="panel")
    for substrate in _SUBSTRATES:
        chamber.set_bulk(substrate, 1.0)
    reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                          material=get_material("silver"), area=we.area)
    counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                        material=get_material("gold"), area=2.0 * we.area)
    cell = ElectrochemicalCell(chamber=chamber, working_electrodes=[we],
                               reference=reference, counter=counter)
    waveform = TriangleWaveform(e_start=0.0, e_vertex=-0.7,
                                scan_rate=SCAN_RATE)
    potentials = waveform.value(
        uniform_sample_times(waveform.duration, SAMPLE_RATE))

    def make_sims():
        return build_channel_simulators(we, cell.chamber,
                                        1.0 / SAMPLE_RATE,
                                        waveform.duration)

    return make_sims, potentials


def _seed_step(sim, e_applied: float) -> float:
    """The seed's ``_RedoxChannelSimulator.step``, verbatim.

    Re-derives the elimination coefficients on every ``thomas_solve``
    call — the cost profile this PR's engine replaced.
    """
    solver = sim.solver
    lower, diag, upper = solver.implicit_coefficients
    f = C.F_OVER_RT
    x = sim.n * f * (e_applied - sim.e_formal)
    x = min(max(x, -500.0), 500.0)
    kf = sim.k0 * math.exp(-sim.alpha * x)
    kb = sim.k0 * math.exp((1.0 - sim.alpha) * x)
    u_ox = thomas_solve(lower, diag, upper, solver.explicit_rhs(sim.c_ox))
    u_red = thomas_solve(lower, diag, upper, solver.explicit_rhs(sim.c_red))
    s = solver.surface_source_scale
    w = solver.surface_response()
    denominator = 1.0 + s * float(w[0]) * (kf + kb)
    flux = (kf * float(u_ox[0]) - kb * float(u_red[0])) / denominator
    sim.c_ox = np.clip(u_ox - flux * s * w, 0.0, None)
    sim.c_red = np.clip(u_red + flux * s * w, 0.0, None)
    return flux


def seed_steps_per_sec(make_sims, potentials) -> tuple[float, np.ndarray]:
    """The seed inner loop: per-channel thomas_solve stepping."""
    sims = make_sims()
    fluxes = np.empty((potentials.size, len(sims)))
    start = time.perf_counter()
    for k in range(potentials.size):
        e = float(potentials[k])
        for j, sim in enumerate(sims):
            fluxes[k, j] = _seed_step(sim, e)
    elapsed = time.perf_counter() - start
    return potentials.size / elapsed, fluxes


def scalar_steps_per_sec(make_sims, potentials) -> tuple[float, np.ndarray]:
    """Today's scalar path: prefactored, still per-channel Python."""
    sims = make_sims()
    fluxes = np.empty((potentials.size, len(sims)))
    start = time.perf_counter()
    for k in range(potentials.size):
        e = float(potentials[k])
        for j, sim in enumerate(sims):
            fluxes[k, j] = sim.step(e)
    elapsed = time.perf_counter() - start
    return potentials.size / elapsed, fluxes


def batched_steps_per_sec(make_sims, potentials) -> tuple[float, np.ndarray]:
    """The engine inner loop: one batched solve per sample."""
    engine = SimulationEngine.for_redox_channels(make_sims())
    start = time.perf_counter()
    fluxes = engine.run_sweep(potentials)
    elapsed = time.perf_counter() - start
    return potentials.size / elapsed, fluxes


def fusion_rates(make_sims, potentials,
                 n_sweeps: int = N_FUSED_SWEEPS) -> dict:
    """Per-sweep batched engines vs one cross-sweep fused engine.

    Both passes advance ``n_sweeps`` copies of the panel sweep; the
    fused pass drives a single engine with a per-system potential
    program, the same shape :class:`~repro.engine.scheduler.SweepBatch`
    compiles for a fleet's CV group.
    """
    engines = [SimulationEngine.for_redox_channels(make_sims())
               for _ in range(n_sweeps)]
    start = time.perf_counter()
    per_sweep = [engine.run_sweep(potentials) for engine in engines]
    sequential_elapsed = time.perf_counter() - start

    channels = [sim for _ in range(n_sweeps) for sim in make_sims()]
    fused = SimulationEngine.for_redox_channels(channels)
    programs = np.broadcast_to(
        potentials, (len(channels), potentials.size))
    fluxes = np.empty((potentials.size, len(channels)))
    start = time.perf_counter()
    for k in range(potentials.size):
        fluxes[k] = fused.step(programs[:, k])
    fused_elapsed = time.perf_counter() - start

    scale = float(np.max(np.abs(per_sweep[0])))
    deviation = max(
        float(np.max(np.abs(fluxes[:, j * N_CHANNELS:(j + 1) * N_CHANNELS]
                            - per_sweep[j])))
        for j in range(n_sweeps)) / scale
    total_steps = n_sweeps * potentials.size
    return {"n_sweeps": n_sweeps,
            "per_sweep_rate": total_steps / sequential_elapsed,
            "fused_rate": total_steps / fused_elapsed,
            "fusion_speedup": sequential_elapsed / fused_elapsed,
            "fusion_deviation": deviation}


def run_experiment() -> dict:
    make_sims, potentials = build_panel_channels()
    # Warm-up pass (allocators, caches) before the timed runs.
    batched_steps_per_sec(make_sims, potentials[:50])
    scalar_steps_per_sec(make_sims, potentials[:50])
    seed_rate, seed_fluxes = seed_steps_per_sec(make_sims, potentials)
    scalar_rate, scalar_fluxes = scalar_steps_per_sec(make_sims, potentials)
    batched_rate, batched_fluxes = batched_steps_per_sec(
        make_sims, potentials)
    scale = float(np.max(np.abs(seed_fluxes)))
    deviation = float(max(np.max(np.abs(batched_fluxes - seed_fluxes)),
                          np.max(np.abs(scalar_fluxes - seed_fluxes))))
    fusion = fusion_rates(make_sims, potentials)
    return {"n_steps": int(potentials.size),
            "seed_rate": seed_rate,
            "scalar_rate": scalar_rate,
            "batched_rate": batched_rate,
            "speedup": batched_rate / seed_rate,
            "relative_deviation": deviation / scale,
            **fusion}


def test_engine_throughput(benchmark, report, json_report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    json_report("engine", {
        "bench": "engine_throughput",
        "workload": f"{N_CHANNELS}-channel panel sweep",
        "n_steps": out["n_steps"],
        "steps_per_sec": {"seed_scalar": out["seed_rate"],
                          "prefactored_scalar": out["scalar_rate"],
                          "batched_engine": out["batched_rate"]},
        "speedup_vs_seed": out["speedup"],
        "max_relative_deviation": out["relative_deviation"],
        "cv_fusion": {
            "n_sweeps": out["n_sweeps"],
            "per_sweep_steps_per_sec": out["per_sweep_rate"],
            "fused_steps_per_sec": out["fused_rate"],
            "fusion_speedup": out["fusion_speedup"],
            "max_relative_deviation": out["fusion_deviation"]},
        "acceptance": {"min_speedup": 5.0, "max_deviation": 1.0e-12,
                       "min_fusion_speedup": 2.0},
    })
    report(render_table(
        ["implementation", "steps/sec"],
        [["seed scalar (thomas_solve loop)", f"{out['seed_rate']:.0f}"],
         ["prefactored scalar loop", f"{out['scalar_rate']:.0f}"],
         ["batched SimulationEngine", f"{out['batched_rate']:.0f}"]],
        title=(f"E1 | {N_CHANNELS}-channel panel sweep, "
               f"{out['n_steps']} samples")))
    report(f"speedup vs seed          : {out['speedup']:.1f}x  "
           f"(acceptance: >= 5x)")
    report(f"max relative deviation   : {out['relative_deviation']:.2e}  "
           f"(acceptance: <= 1e-12)")
    report(render_table(
        ["pass", "sweep-steps/sec"],
        [["per-sweep batched, sequential", f"{out['per_sweep_rate']:.0f}"],
         ["cross-sweep fused engine", f"{out['fused_rate']:.0f}"]],
        title=(f"E1b | {out['n_sweeps']}x {N_CHANNELS}-channel sweeps "
               f"(cross-cell CV fusion)")))
    report(f"fusion speedup           : {out['fusion_speedup']:.1f}x  "
           f"(acceptance: >= 2x)")
    report(f"fusion deviation         : {out['fusion_deviation']:.2e}  "
           f"(acceptance: <= 1e-12)")

    # The batched engine must agree with the seed path and beat it.
    assert out["relative_deviation"] <= 1.0e-12
    assert out["speedup"] >= 5.0
    # Cross-cell fusion must beat per-sweep batched engines and stay
    # bit-compatible with them.
    assert out["fusion_deviation"] <= 1.0e-12
    assert out["fusion_speedup"] >= 2.0
