"""T1 — Table I: oxidases and their applied potentials.

For each oxidase the bench sweeps the applied potential, measures the
steady-state chronoamperometric current on the cited reference electrode,
and locates the smallest potential delivering 95 % of the plateau signal.
That measured operating point is compared against the paper's applied-
potential column (+550/+650/+600/+700 mV vs Ag/AgCl).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import table1_cell
from repro.data.oxidases import TABLE_I
from repro.io.tables import render_table
from repro.units import v_to_mv

#: Potential sweep grid, volts vs Ag/AgCl.
SWEEP = np.arange(0.20, 0.92, 0.005)

#: Acceptable recovery error, volts.
TOLERANCE = 0.050


def measured_applied_potential(target: str) -> float:
    """Sweep E, return the 95 %-of-plateau operating potential."""
    cell = table1_cell(target)
    cell.chamber.set_bulk(target, 1.0)
    we_name = cell.working_electrodes[0].name
    leakage = cell.working_electrodes[0].electrode.leakage_current()
    currents = np.array([
        cell.measured_current(we_name, float(e)) - leakage for e in SWEEP])
    plateau = currents[-1]
    above = np.flatnonzero(currents >= 0.95 * plateau)
    return float(SWEEP[above[0]])


def run_experiment() -> list[dict]:
    rows = []
    for record in TABLE_I:
        measured = measured_applied_potential(record.target)
        rows.append({
            "oxidase": record.display_name,
            "target": record.target,
            "paper_mv": v_to_mv(record.applied_potential),
            "measured_mv": v_to_mv(measured),
            "error_mv": v_to_mv(measured - record.applied_potential),
        })
    return rows


def test_table1_applied_potentials(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = render_table(
        ["Oxidase", "Target", "Paper mV", "Measured mV", "Error mV"],
        [[r["oxidase"], r["target"], f"{r['paper_mv']:+.0f}",
          f"{r['measured_mv']:+.0f}", f"{r['error_mv']:+.0f}"]
         for r in rows],
        title="T1 | Table I: applied potentials (95% of plateau)")
    report(table)

    for row in rows:
        assert abs(row["error_mv"]) <= v_to_mv(TOLERANCE), row["target"]
    # Ordering preserved: glucose < glutamate < lactate <= cholesterol.
    measured = {r["target"]: r["measured_mv"] for r in rows}
    assert (measured["glucose"] < measured["glutamate"]
            < measured["lactate"] <= measured["cholesterol"])
