"""T3 — Table III: sensitivity, LOD and linear range of all six sensors.

Every sensor is rebuilt from its calibrated probe on the cited reference
electrode and *measured* end to end through a laboratory-grade chain:

- oxidase targets (glucose, lactate, glutamate): a chronoamperometric
  concentration ladder plus blank repeats; Savg (eq. 6), LOD (eq. 5) and
  the 5 %-non-linearity range extracted per Sec. II-B;
- CYP targets (benzphetamine, aminopyrine, cholesterol): a CV ladder with
  peak-height quantification; the LOD uses the blank-sweep current noise
  in the peak window.

Absolute agreement is expected for sensitivity (the films were inverted
from these numbers — this bench closes the loop through the *noisy,
quantised* chain); LOD and range must agree in magnitude and ordering.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import run_calibration
from repro.data.catalog import bench_chain, reference_cell
from repro.data.oxidases import oxidase_record
from repro.data.performance import TABLE_III, performance_record
from repro.electronics.waveform import TriangleWaveform
from repro.io.tables import render_table
from repro.measurement.peaks import assign_peaks, find_peaks
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.units import sensitivity_to_paper, si_to_um_conc


def calibrate_oxidase(target: str) -> dict:
    record = performance_record(target)
    cell = reference_cell(target)
    chain = bench_chain(seed=hash(target) % 100000)
    we = cell.working_electrodes[0]
    e_applied = oxidase_record(target).applied_potential

    def signal_at(c: float) -> tuple[float, float]:
        cell.chamber.set_bulk(target, c)
        true = cell.measured_current(we.name, e_applied)
        return chain.measure_constant(true, duration=5.0, we=we)

    lo, hi = record.linear_range
    ladder = list(np.linspace(lo, hi, 8)) + [1.25 * hi, 1.5 * hi]
    curve = run_calibration(signal_at, ladder)
    sensitivity = curve.sensitivity(c_low=lo, c_high=hi) / we.area
    lod = curve.limit_of_detection()
    low, high = curve.linear_range(nl_fraction=0.06)
    return {"target": target, "record": record,
            "sensitivity": sensitivity_to_paper(sensitivity),
            "lod": lod, "range": (low, high)}


def calibrate_cyp(target: str) -> dict:
    record = performance_record(target)
    cell = reference_cell(target)
    we = cell.working_electrodes[0]
    probe = we.probe
    channel = probe.channel_for(target)
    potentials = [ch.reduction_potential for ch in probe.channels]
    waveform = TriangleWaveform(e_start=max(potentials) + 0.25,
                                e_vertex=min(potentials) - 0.25,
                                scan_rate=0.020)
    protocol = CyclicVoltammetry(waveform, sample_rate=10.0)
    chain = bench_chain(seed=hash(target) % 100000)
    rng = np.random.default_rng(42)

    def peak_height(c: float) -> float:
        cell.chamber.set_bulk(target, c)
        result = protocol.run(cell, we.name, chain, rng=rng)
        peaks = find_peaks(result.voltammogram, cathodic=True,
                           min_height=5e-10, smooth_samples=9)
        assignment = assign_peaks(
            peaks, {target: channel.reduction_potential})
        if target not in assignment.matches:
            return 0.0
        return assignment.matches[target].height

    lo, hi = record.linear_range
    ladder = np.linspace(lo, hi, 5)
    heights = np.array([peak_height(float(c)) for c in ladder])
    slope = (heights[-1] - heights[0]) / (hi - lo)
    sensitivity = slope / we.area

    # Blank sweeps: current noise in the peak window bounds detectability.
    cell.chamber.set_bulk(target, 0.0)
    blank = protocol.run(cell, we.name, chain, rng=rng).voltammogram
    window = np.abs(blank.potentials
                    - channel.reduction_potential) < 0.05
    sigma = float(np.std(blank.current[window]
                         - blank.true_current[window]))
    lod = 3.0 * sigma / slope if slope > 0 else float("inf")

    # Linear range: deviation of the height curve from its endpoint line.
    line = heights[0] + slope * (hi - lo) * (
        (ladder - lo) / (hi - lo))
    nl = np.max(np.abs(heights - line)) / (heights[-1] - heights[0])
    return {"target": target, "record": record,
            "sensitivity": sensitivity_to_paper(sensitivity),
            "lod": lod, "range": (lo, hi), "nl_fraction": float(nl)}


def run_experiment() -> list[dict]:
    results = []
    for record in TABLE_III:
        if record.method == "chronoamperometry":
            results.append(calibrate_oxidase(record.target))
        else:
            results.append(calibrate_cyp(record.target))
    return results


def test_table3_performance(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for result in results:
        record = result["record"]
        lod_paper = (f"{si_to_um_conc(record.lod):.0f}"
                     if record.lod is not None else "-")
        lod_measured = (f"{si_to_um_conc(result['lod']):.0f}"
                        if np.isfinite(result["lod"]) else "-")
        low, high = result["range"]
        rows.append([
            result["target"], record.probe,
            f"{record.sensitivity:g}", f"{result['sensitivity']:.2f}",
            lod_paper, lod_measured,
            f"{record.linear_range[0]:g}-{record.linear_range[1]:g}",
            f"{low:.2g}-{high:.2g}",
        ])
    report(render_table(
        ["Target", "Probe", "S paper", "S meas",
         "LOD paper uM", "LOD meas uM", "Range paper mM", "Range meas mM"],
        rows,
        title="T3 | Table III: measured sensor performance "
              "(S in uA/(mM cm^2))"))

    by_target = {r["target"]: r for r in results}
    # Sensitivities within 25 % of the paper through the noisy chain.
    for result in results:
        paper = result["record"].sensitivity
        assert result["sensitivity"] == pytest.approx(paper, rel=0.25), (
            result["target"])
    # Sensitivity ordering preserved (the paper's headline structure).
    s = {t: r["sensitivity"] for t, r in by_target.items()}
    assert (s["cholesterol"] > s["lactate"] > s["glucose"]
            > s["glutamate"] > s["aminopyrine"] > s["benzphetamine"])
    # Oxidase LODs within a factor of two of the paper values.
    for target in ("glucose", "lactate", "glutamate"):
        paper_lod = by_target[target]["record"].lod
        measured = by_target[target]["lod"]
        assert 0.5 * paper_lod <= measured <= 2.0 * paper_lod, target
    # LOD ordering: glutamate worst among the oxidase sensors.
    assert (by_target["glutamate"]["lod"] > by_target["glucose"]["lod"]
            > by_target["lactate"]["lod"])
