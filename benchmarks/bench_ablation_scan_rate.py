"""A2 — Ablation: CV scan rate versus peak fidelity (Sec. II-C).

"The electrochemical cell reacts only to slow potential variations of
about 20 mV/sec.  If the voltage changes too rapidly, the biosensor
current peak does not occur at the specific potential of the target
molecule anymore, making it hard to distinguish among different targets."

The bench sweeps the CYP2B4 electrode (benzphetamine -250 mV +
aminopyrine -400 mV) at increasing scan rates and tracks the measured
peak positions and whether both targets still resolve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.solution import Chamber
from repro.data.catalog import build_cytochrome
from repro.electronics.waveform import TriangleWaveform
from repro.io.tables import render_table
from repro.measurement.peaks import assign_peaks, find_peaks
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_cytochrome
from repro.sensors.materials import get_material
from repro.units import v_to_mv

SCAN_RATES = (0.010, 0.020, 0.100, 0.500, 1.000)


def make_cell() -> ElectrochemicalCell:
    probe = build_cytochrome("CYP2B4")
    chamber = Chamber(name="a2")
    chamber.set_bulk("benzphetamine", 0.8)
    chamber.set_bulk("aminopyrine", 3.0)
    we = WorkingElectrode(
        electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                            material=get_material("rhodium_graphite"),
                            area=7.0e-6),
        functionalization=with_cytochrome(probe))
    return ElectrochemicalCell(
        chamber=chamber, working_electrodes=[we],
        reference=Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                            material=get_material("silver"), area=7.0e-6),
        counter=Electrode(name="CE", role=ElectrodeRole.COUNTER,
                          material=get_material("gold"), area=14.0e-6))


def run_rate(scan_rate: float) -> dict:
    cell = make_cell()
    waveform = TriangleWaveform(e_start=0.0, e_vertex=-0.7,
                                scan_rate=scan_rate)
    sample_rate = max(10.0, scan_rate * 1000.0)
    protocol = CyclicVoltammetry(waveform, sample_rate=sample_rate)
    t, p, s, i = protocol.simulate_true_current(cell, "WE")
    voltammogram = Voltammogram(times=t, potentials=p, current=i,
                                sweep_sign=s, scan_rate=scan_rate)
    peaks = find_peaks(voltammogram, cathodic=True, min_height=2e-9)
    assignment = assign_peaks(
        peaks, {"benzphetamine": -0.250, "aminopyrine": -0.400},
        tolerance=0.045)
    positions = {t: a.potential for t, a in assignment.matches.items()}
    return {"rate": scan_rate, "positions": positions,
            "resolved": assignment.all_assigned,
            "n_peaks": len(peaks)}


def run_experiment() -> list[dict]:
    return [run_rate(rate) for rate in SCAN_RATES]


def test_ablation_scan_rate(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for result in results:
        benz = result["positions"].get("benzphetamine")
        amino = result["positions"].get("aminopyrine")
        rows.append([
            f"{result['rate'] * 1e3:.0f}",
            f"{v_to_mv(benz):+.0f}" if benz is not None else "lost",
            f"{v_to_mv(amino):+.0f}" if amino is not None else "lost",
            "yes" if result["resolved"] else "NO",
        ])
    report(render_table(
        ["Scan mV/s", "Benz peak mV", "Amino peak mV", "Both resolved"],
        rows, title="A2 | scan-rate ablation on CYP2B4 "
                    "(paper limit: 20 mV/s)"))

    by_rate = {r["rate"]: r for r in results}
    # At and below the paper's 20 mV/s limit both drugs resolve.
    assert by_rate[0.010]["resolved"]
    assert by_rate[0.020]["resolved"]
    # Peaks drift cathodic monotonically as the sweep accelerates
    # (quasi-reversible kinetics fall behind the ramp).
    amino_positions = [r["positions"].get("aminopyrine")
                       for r in results
                       if "aminopyrine" in r["positions"]]
    assert all(b < a for a, b in zip(amino_positions, amino_positions[1:]))
    # Far above the limit the signature breaks: by 1 V/s the
    # benzphetamine peak has drifted out of its assignment window —
    # "making it hard to distinguish among different targets".
    assert not by_rate[1.000]["resolved"]
