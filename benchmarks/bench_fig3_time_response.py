"""F3 — Fig. 3: time response of a glucose biosensor.

The paper's Fig. 3 shows a glucose sensor taking "around 30 seconds to
reach the steady-state after an injection of the target molecule".  The
bench reproduces the figure: a macro screen-printed glucose strip, one
glucose injection, the full chain recording — then extracts the Sec. II-B
response-time properties (t90, transient response time) and the sample
throughput they imply, and prints the time series the figure plots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    sample_throughput,
    steady_state_response_time,
    transient_response_time,
)
from repro.chem.solution import InjectionSchedule
from repro.data.catalog import bench_chain, reference_cell
from repro.io.tables import render_table
from repro.measurement.chronoamperometry import Chronoamperometry

INJECTION_TIME = 10.0
GLUCOSE_STEP = 2.0  # mM


def run_experiment() -> dict:
    cell = reference_cell("glucose")
    chain = bench_chain(seed=33)
    protocol = Chronoamperometry(
        e_setpoint=0.550, duration=120.0, sample_rate=5.0,
        injections=InjectionSchedule.single(INJECTION_TIME, "glucose",
                                            GLUCOSE_STEP))
    result = protocol.run(cell, "WE_glucose", chain,
                          rng=np.random.default_rng(33))
    trace = result.trace
    smooth = trace.smoothed(21)
    t90 = steady_state_response_time(smooth, INJECTION_TIME)
    t_transient = transient_response_time(smooth, INJECTION_TIME)
    # Recovery assumed symmetric to settling (batch cell flushing).
    throughput = sample_throughput(t90, t90)
    return {"trace": trace, "t90": t90, "t_transient": t_transient,
            "throughput": throughput}


def test_fig3_glucose_time_response(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    trace = out["trace"]
    # Print the series the figure plots (down-sampled).
    rows = []
    for t in (0.0, 9.0, 12.0, 15.0, 20.0, 25.0, 30.0, 40.0, 50.0,
              70.0, 100.0):
        k = int(np.argmin(np.abs(trace.times - t)))
        rows.append([f"{trace.times[k]:.0f}",
                     f"{trace.current[k] * 1e6:.3f}"])
    report(render_table(
        ["t (s)", "i (uA)"], rows,
        title="F3 | Fig. 3: glucose transient (injection at t=10 s)"))
    report(f"t90 after injection      : {out['t90']:.1f} s  (paper: ~30 s)")
    report(f"transient response time  : {out['t_transient']:.1f} s")
    report(f"sample throughput        : {out['throughput']:.0f} samples/hour")

    # The paper's headline: steady state in about 30 seconds.
    assert 15.0 <= out["t90"] <= 45.0
    # The transient-time marker ((dV/dt)max) sits right after injection.
    assert out["t_transient"] < 10.0
    # Before injection the signal is baseline; after, a clear step.
    baseline = trace.window(0.0, 9.5).tail_mean()
    steady = trace.tail_mean()
    assert steady > 10.0 * max(abs(baseline), 1e-9)


def test_fig3_microelectrode_is_faster(benchmark, report):
    """Sec. III: scaling electrodes down shortens the measurement."""

    def run() -> dict:
        from repro.data.catalog import paper_panel_cell
        cell = paper_panel_cell({"glucose": 0.0})
        chain = bench_chain(seed=34)
        protocol = Chronoamperometry(
            e_setpoint=0.470, duration=60.0, sample_rate=5.0,
            injections=InjectionSchedule.single(5.0, "glucose",
                                                GLUCOSE_STEP))
        result = protocol.run(cell, "WE1", chain,
                              rng=np.random.default_rng(34))
        t90 = steady_state_response_time(result.trace, 5.0)
        return {"t90": t90}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"F3 | 0.23 mm^2 platform electrode t90: {out['t90']:.1f} s "
           f"(macro strip: ~30 s — microelectrodes are faster, Sec. III)")
    assert out["t90"] < 20.0
