"""A4 — Ablation: nanostructuring (paper Sec. III).

"Note from Table III that the introduction of a nanostructuration on the
electrodes brings much larger signals, demanding less constrains for the
readout circuit" — and, for the CYP drugs, sensitivities "can be further
enhance[d] by employing nanostructured electrodes".

The bench measures the platform glucose channel and the CYP2B4 drug
channels bare versus CNT-nanostructured, and converts the gains into the
readout-resolution relief the paper argues for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.solution import Chamber
from repro.data.catalog import build_cytochrome, build_oxidase
from repro.electronics.waveform import TriangleWaveform
from repro.io.tables import render_table
from repro.measurement.peaks import assign_peaks, find_peaks
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import (
    PAPER_ELECTRODE_AREA,
    Electrode,
    ElectrodeRole,
    WorkingElectrode,
)
from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import get_material


def make_cell(functionalization, loading: dict) -> ElectrochemicalCell:
    chamber = Chamber(name="a4")
    for name, value in loading.items():
        chamber.set_bulk(name, value)
    we = WorkingElectrode(
        electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                            material=get_material("gold"),
                            area=PAPER_ELECTRODE_AREA),
        functionalization=functionalization)
    return ElectrochemicalCell(
        chamber=chamber, working_electrodes=[we],
        reference=Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                            material=get_material("silver"),
                            area=PAPER_ELECTRODE_AREA),
        counter=Electrode(name="CE", role=ElectrodeRole.COUNTER,
                          material=get_material("gold"),
                          area=2 * PAPER_ELECTRODE_AREA))


def glucose_signal(nano) -> float:
    cell = make_cell(with_oxidase(build_oxidase("glucose"),
                                  nanostructure=nano), {"glucose": 2.0})
    leak = cell.working_electrodes[0].electrode.leakage_current()
    return cell.measured_current("WE", 0.470) - leak


def cyp_peak_heights(nano) -> dict[str, float]:
    probe = build_cytochrome("CYP2B4")
    cell = make_cell(with_cytochrome(probe, nanostructure=nano),
                     {"benzphetamine": 0.7, "aminopyrine": 0.8})
    waveform = TriangleWaveform(e_start=0.0, e_vertex=-0.65,
                                scan_rate=0.020)
    protocol = CyclicVoltammetry(waveform, sample_rate=10.0)
    t, p, s, i = protocol.simulate_true_current(cell, "WE")
    voltammogram = Voltammogram(times=t, potentials=p, current=i,
                                sweep_sign=s, scan_rate=0.020)
    peaks = find_peaks(voltammogram, cathodic=True, min_height=2e-10)
    assignment = assign_peaks(peaks, {"benzphetamine": -0.250,
                                      "aminopyrine": -0.400})
    return {t: p.height for t, p in assignment.matches.items()}


def run_experiment() -> dict:
    return {
        "glucose": {"bare": glucose_signal(None),
                    "cnt": glucose_signal(CARBON_NANOTUBES)},
        "cyp": {"bare": cyp_peak_heights(None),
                "cnt": cyp_peak_heights(CARBON_NANOTUBES)},
    }


def test_ablation_nanostructuring(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    g = out["glucose"]
    rows.append(["glucose (CA)", f"{g['bare'] * 1e9:.2f}",
                 f"{g['cnt'] * 1e9:.2f}", f"{g['cnt'] / g['bare']:.1f}x"])
    for target in ("benzphetamine", "aminopyrine"):
        bare = out["cyp"]["bare"].get(target, 0.0)
        cnt = out["cyp"]["cnt"].get(target, 0.0)
        gain = f"{cnt / bare:.1f}x" if bare > 0 else "detectable only w/ CNT"
        rows.append([f"{target} (CV)",
                     f"{bare * 1e9:.2f}" if bare else "below floor",
                     f"{cnt * 1e9:.2f}", gain])
    report(render_table(
        ["Channel", "Bare signal nA", "CNT signal nA", "Gain"],
        rows, title="A4 | nanostructuring on the 0.23 mm^2 platform"))
    report("Paper: nanostructuration 'brings much larger signals, "
           "demanding less constrains for the readout circuit'.")

    # CNT multiplies the glucose signal by the film gain (4x) and adds
    # a catalytic bonus: the H2O2 wave shifts -100 mV, so the held
    # potential sits deeper into the wave (eta 0.80 -> 1.0).
    assert 3.0 <= g["cnt"] / g["bare"] <= 5.6
    # The drug peaks grow by the same mechanism (the CNT film gain).
    assert (out["cyp"]["cnt"]["aminopyrine"]
            > 2.5 * out["cyp"]["bare"]["aminopyrine"])
    assert (out["cyp"]["cnt"]["benzphetamine"]
            > 2.5 * out["cyp"]["bare"]["benzphetamine"])
