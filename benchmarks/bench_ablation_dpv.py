"""A6 — Extension: differential pulse voltammetry vs cyclic voltammetry.

The paper's voltage generator "sweeps repeatedly within the voltage range
of interest" — linear sweeps.  DPV is the natural upgrade the platform's
generator could implement (the paper's own closing remark asks for more
sensitivity on the CYP drugs).  The bench quantifies what the upgrade
buys on the Fig. 4 CYP2B4 electrode:

- the capacitive background a 20 mV/s CV sweep carries versus the
  residual baseline of the DPV differential (charging rejection),
- the peak positions both methods report for the two drugs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import paper_panel_cell
from repro.io.tables import render_table
from repro.measurement.peaks import find_peaks
from repro.measurement.pulse_voltammetry import DifferentialPulseVoltammetry
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.electronics.waveform import TriangleWaveform
from repro.units import v_to_mv


def run_experiment() -> dict:
    cell = paper_panel_cell()
    we = cell.working_electrode("WE4")

    # CV: the charging rectangle rides under the peaks.
    waveform = TriangleWaveform(e_start=0.0, e_vertex=-0.65,
                                scan_rate=0.020)
    cv = CyclicVoltammetry(waveform, sample_rate=10.0)
    t, p, s, i = cv.simulate_true_current(cell, "WE4")
    voltammogram = Voltammogram(times=t, potentials=p, current=i,
                                sweep_sign=s, scan_rate=0.020)
    cv_peaks = find_peaks(voltammogram, cathodic=True, min_height=1e-9)
    cv_charging = abs(we.electrode.charging_current(0.020))
    # Baseline of the cathodic leg far from any peak (around -0.1 V).
    cv_baseline = abs(voltammogram.current_at(-0.10))

    # DPV on the same electrode and window.
    dpv = DifferentialPulseVoltammetry(e_start=0.0, e_end=-0.65)
    result = dpv.simulate_true(cell, "WE4")
    dpv_peaks = result.find_peaks(min_height=1e-9)
    off_peak = np.abs(result.base_potentials - (-0.225)) > 0.15
    off_peak &= np.abs(result.base_potentials - (-0.375)) > 0.15
    off_peak[:5] = False  # skip the initial equilibration transient
    dpv_baseline = float(np.max(np.abs(result.differential[off_peak])))

    return {
        "cv_peaks": cv_peaks, "cv_charging": cv_charging,
        "cv_baseline": cv_baseline,
        "dpv_peaks": dpv_peaks, "dpv_baseline": dpv_baseline,
        # Signed: the result records direction * amplitude (-50 mV here).
        "dpv_amplitude": result.pulse_amplitude,
    }


def test_ablation_dpv_vs_cv(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        ["baseline (no-peak region)",
         f"{out['cv_baseline'] * 1e9:.2f} nA",
         f"{out['dpv_baseline'] * 1e9:.4f} nA"],
        ["double-layer charging",
         f"{out['cv_charging'] * 1e9:.2f} nA (rides under peaks)",
         "rejected by differencing"],
        ["benzphetamine peak",
         next((f"{v_to_mv(p.potential):+.0f} mV" for p in out["cv_peaks"]
               if abs(p.potential + 0.27) < 0.05),
              "LOST under the aminopyrine tail"),
         next((f"{v_to_mv(p.potential + out['dpv_amplitude'] / 2):+.0f} mV"
               for p in out["dpv_peaks"]
               if abs(p.potential + 0.225) < 0.05), "-")],
        ["aminopyrine peak",
         next((f"{v_to_mv(p.potential):+.0f} mV" for p in out["cv_peaks"]
               if abs(p.potential + 0.42) < 0.05), "-"),
         next((f"{v_to_mv(p.potential + out['dpv_amplitude'] / 2):+.0f} mV"
               for p in out["dpv_peaks"]
               if abs(p.potential + 0.375) < 0.05), "-")],
    ]
    report(render_table(
        ["Property", "CV @ 20 mV/s", "DPV (50 mV pulse)"],
        rows, title="A6 | DPV extension on the Fig. 4 CYP2B4 electrode"))
    report("DPV centres are reported as base potential + amplitude/2; "
           "both methods agree with Table II within tens of mV.")

    # Charging rejection: DPV baseline well below CV's charging floor.
    assert out["dpv_baseline"] < out["cv_baseline"] / 5.0
    # At the panel's loadings (aminopyrine 4 mM vs benzphetamine 0.7 mM)
    # raw CV loses the benzphetamine shoulder under the big wave's
    # diffusion tail; DPV's baseline-returning peaks keep both.
    assert len(out["cv_peaks"]) == 1
    assert len(out["dpv_peaks"]) == 2
    # DPV centres land on the formal potentials.
    centers = sorted(p.potential + out["dpv_amplitude"] / 2.0
                     for p in out["dpv_peaks"])
    assert centers[0] == pytest.approx(-0.400, abs=0.02)
    assert centers[1] == pytest.approx(-0.250, abs=0.02)
