"""P1 — panel/fleet throughput: sequential per-WE panels vs the fused
cross-electrode scheduler.

The platform exists to run many multiplexed assays concurrently; this
bench measures that workload end to end.  A fleet of N identical
metabolite cells — glucose, lactate and glutamate oxidase WEs plus a
blank, with dopamine in the sample so even the blank carries chemistry —
runs through two implementations:

- **sequential** — PR 1's `PanelProtocol` reference path
  (``batch_electrodes=False``): one engine per working electrode, one
  cell after another;
- **fleet scheduler** — :class:`repro.engine.scheduler.AssayScheduler`:
  every chronoamperometric dwell of every cell fused into one
  :class:`~repro.engine.scheduler.DwellBatch` solve per time step,
  digitised per WE afterwards in the original per-job electrode order.

Both produce bit-identical :class:`~repro.measurement.panel.PanelResult`
records (same per-job RNG streams); the acceptance bar is >= 5x
assays/sec for the scheduler on the 16-cell fleet (raised from 3x when
the precompiled step programs landed; measured ~10x).

The bench also has a **backend axis**: the same spec-level fleet runs
through :class:`repro.api.executors.InlineExecutor` (one fused pass in
this process) and :class:`repro.api.executors.ProcessExecutor`
(sharded across worker processes).  Results must again be bit-identical
(<= 1e-12 relative deviation); the acceptance bar is >= 2x assays/sec
for the process backend with 4 workers on the 16-cell fleet — enforced
only when the host actually has the cores, since multi-process scaling
on a 1-core box is physically impossible.  Everything is written to
both the human-readable report and ``BENCH_panel.json``.

A third **store axis** measures the job-level cache: the same sweep
runs cold (every grid point simulated, records persisted) and warm
(every grid point rehydrated from the per-job store).  The warm pass
must be bit-identical, perform zero fused engine solves
(``EngineStats.n_solve_steps == 0``), and its cache-hit timings are
emitted into ``BENCH_panel.json`` alongside the backend numbers.

A fourth **CV-fusion axis** (PR 6) times a fleet of paper-panel cells —
mixed chronoamperometric and cyclic-voltammetry electrodes — through
the per-cell batched path (CV sweeps simulated one WE at a time inside
each job) versus the fleet scheduler, whose
:class:`~repro.engine.scheduler.SweepBatch` fuses every compatible CV
sweep across cells into one engine and digitises each fused group in
one :meth:`~repro.electronics.chain.AcquisitionChain.digitize_batch`
call per (TIA, ADC) cluster.  Results are bit-identical; the fused pass
must not fall behind per-cell batching (quick) / beat it (full).

A fifth **supervision axis** (PR 7) prices the fault-tolerance layer:
the same fleet through the plain process backend versus a supervised
:class:`~repro.api.executors.ProcessExecutor` carrying a
:class:`~repro.api.resilience.RetryPolicy` — with **no faults
injected**, so the measured ratio is pure supervision overhead
(per-unit worker pools, deadline bookkeeping, in-order re-merge).
Results must be bit-identical and the overhead bounded (<= 5% where
timing is fair; a loose catastrophic-regression bar elsewhere).

A sixth **service axis** (PR 8) measures diagnostics-as-a-service: an
in-process :class:`~repro.service.server.DiagnosticsServer` takes 32
concurrent small-fleet submissions from threaded
:class:`~repro.service.client.ServiceClient`\\ s against a warm store —
sustained requests/sec and p50/p95 submission latency are the service
overhead (HTTP, queueing, fair scheduling, store replay) since every
run is a cache hit.  Alongside it, the persistent worker pool is priced
directly: N consecutive small fleets through one
``ProcessExecutor(persistent=True)`` (pool spawned once, leased per
run) versus a fresh spawn-per-run executor each time — the persistent
pool must be >= 1.5x, with host metadata (cores, start method)
recorded since the spawn cost being amortised is platform-dependent.

Smoke mode: set ``REPRO_BENCH_QUICK=1`` (tier-1 CI does, through
``tests/test_scheduler.py``) to shrink the fleet and dwell so the bench
doubles as a fast regression gate on the batched path.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import replace

import numpy as np

from repro.data.catalog import build_oxidase, table1_working_electrode
from repro.engine import AssayJob, AssayScheduler
from repro.io.tables import render_table
from repro.measurement.panel import PanelProtocol
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import blank, with_oxidase
from repro.sensors.materials import get_material
from repro.chem.solution import Chamber
from repro.data import bench_chain

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

N_CELLS = 4 if QUICK else 16
CA_DWELL = 10.0 if QUICK else 30.0
SAMPLE_RATE = 10.0
MIN_SPEEDUP = 1.0 if QUICK else 5.0

# Backend axis: the api-level fleet through inline vs process executors.
N_CELLS_BACKEND = 2 if QUICK else 16
N_WORKERS = 2 if QUICK else 4

# Store axis: a parameter sweep cold vs warm against a per-job store.
N_SWEEP_POINTS = 2 if QUICK else 8
SWEEP_CA_DWELL = 5.0 if QUICK else 15.0

# CV-fusion axis: mixed CA + CV paper-panel cells, per-cell batched vs
# the cross-cell fused scheduler.
N_CELLS_CV = 2 if QUICK else 8
CV_CA_DWELL = 5.0 if QUICK else 15.0
MIN_CV_SPEEDUP = 0.8 if QUICK else 2.0
# Process sharding can only beat inline when the cores exist, and on
# spawn-start platforms each timed run pays worker re-import costs the
# warm-up cannot amortise; the parity bar (bit-identical results) is
# enforced unconditionally, the speedup bar only where it is fair.
MIN_BACKEND_SPEEDUP = (
    2.0 if not QUICK and (os.cpu_count() or 1) >= N_WORKERS
    and multiprocessing.get_start_method(allow_none=False) == "fork"
    else 0.0)
# Supervision axis: the fault-tolerance layer must be close to free
# when nothing faults.  The 5% bar applies where the backend timing is
# fair (cores present, fork start); elsewhere only a catastrophic
# regression (e.g. per-unit re-serialisation of the whole fleet) trips.
MAX_SUPERVISION_OVERHEAD = (
    1.05 if not QUICK and (os.cpu_count() or 1) >= N_WORKERS
    and multiprocessing.get_start_method(allow_none=False) == "fork"
    else 1.5)
# Service axis: concurrent submissions against a warm store, and the
# persistent worker pool against spawn-per-run executors.  The tiny
# dwell makes per-run engine work small, and the multi-worker pool
# multiplies the per-run spawn cost — exactly what persistence
# amortises — so the measured ratio is dominated by the fixed cost and
# stable against scheduling noise.
N_SERVICE_SUBMISSIONS = 8 if QUICK else 32
N_POOL_RUNS = 4 if QUICK else 8
N_POOL_WORKERS = 2 if QUICK else 4
SERVICE_CA_DWELL = 1.0
# The >= 1.5x persistence bar is enforced where the host can actually
# express it: with >= N_POOL_WORKERS cores the engine work runs in
# parallel in both legs and the measured ratio is dominated by the
# per-run pool-spawn fixed cost persistence amortises.  On core-starved
# hosts the serialized engine work dilutes the ratio, so only a
# regression floor applies (the full bar stays recorded in the JSON).
MIN_POOL_SPEEDUP = (
    1.5 if not QUICK and (os.cpu_count() or 1) >= N_POOL_WORKERS
    else (1.0 if QUICK else 1.1))
# Distributed axis: the same fleet through a shared queue directory
# served by 1/2/4 detached `repro worker` processes.  Workers are
# persistent capacity — they are spawned (and have printed their ready
# line) before the clock starts, so the timed quantity is
# submit-to-merge.  The >= 1.5x bar (4 workers vs 1) is enforced where
# the cores exist; the parity bar is unconditional.
N_CELLS_DIST = 2 if QUICK else 16
DIST_WORKER_COUNTS = (1,) if QUICK else (1, 2, 4)
MIN_DIST_SPEEDUP = (
    1.5 if not QUICK and (os.cpu_count() or 1) >= max(DIST_WORKER_COUNTS)
    else 0.0)

_OXIDASE_TARGETS = ("glucose", "lactate", "glutamate")


def build_fleet(n_cells: int) -> list[AssayJob]:
    """N metabolite cells, each with 3 oxidase WEs + 1 blank WE."""
    jobs = []
    for k in range(n_cells):
        chamber = Chamber(name=f"fleet{k:02d}")
        for target in _OXIDASE_TARGETS:
            chamber.set_bulk(target, 1.0)
        chamber.set_bulk("dopamine", 0.2)  # direct oxidiser: blanks too
        wes = []
        for target in _OXIDASE_TARGETS:
            reference = table1_working_electrode(target)
            wes.append(WorkingElectrode(
                electrode=Electrode(
                    name=f"WE_{target}", role=ElectrodeRole.WORKING,
                    material=reference.material, area=reference.area),
                functionalization=with_oxidase(build_oxidase(target))))
        wes.append(WorkingElectrode(
            electrode=Electrode(name="WE_blank", role=ElectrodeRole.WORKING,
                                material=get_material("gold"),
                                area=wes[0].area),
            functionalization=blank()))
        reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                              material=get_material("silver"),
                              area=wes[0].area)
        counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                            material=get_material("gold"),
                            area=2.0 * wes[0].area)
        cell = ElectrochemicalCell(chamber=chamber, working_electrodes=wes,
                                   reference=reference, counter=counter)
        jobs.append(AssayJob(cell=cell, chain=bench_chain(seed=900 + k),
                             name=f"cell{k:02d}"))
    return jobs


def _seeded(jobs) -> list[AssayJob]:
    """Fresh per-job generators (generators are stateful; re-seed per run)."""
    return [replace(job, rng=np.random.default_rng(900 + k))
            for k, job in enumerate(jobs)]


def run_sequential(jobs) -> tuple[float, list]:
    """PR 1's reference path: one engine per WE, one cell at a time."""
    protocol = PanelProtocol(ca_dwell=CA_DWELL, sample_rate=SAMPLE_RATE,
                             batch_electrodes=False)
    jobs = _seeded(jobs)
    start = time.perf_counter()
    results = [protocol.run(job.cell, job.chain, rng=job.rng)
               for job in jobs]
    elapsed = time.perf_counter() - start
    return len(jobs) / elapsed, results


def run_fleet(jobs) -> tuple[float, list, "object"]:
    """The scheduler: every dwell of every cell in one fused batch."""
    scheduler = AssayScheduler(
        PanelProtocol(ca_dwell=CA_DWELL, sample_rate=SAMPLE_RATE))
    jobs = _seeded(jobs)
    start = time.perf_counter()
    fleet = scheduler.run_many(jobs)
    elapsed = time.perf_counter() - start
    return len(jobs) / elapsed, list(fleet.results), fleet


def max_relative_deviation(ref_results, got_results) -> float:
    """Worst per-sample deviation across every trace, voltammogram,
    readout and blank."""
    worst = 0.0
    for ref, got in zip(ref_results, got_results):
        for name, trace in ref.traces.items():
            other = got.traces[name]
            for a, b in ((trace.current, other.current),
                         (trace.true_current, other.true_current)):
                scale = float(np.max(np.abs(a))) or 1.0
                worst = max(worst, float(np.max(np.abs(a - b))) / scale)
        for name, gram in ref.voltammograms.items():
            other = got.voltammograms[name]
            for a, b in ((gram.current, other.current),
                         (gram.true_current, other.true_current)):
                scale = float(np.max(np.abs(a))) or 1.0
                worst = max(worst, float(np.max(np.abs(a - b))) / scale)
        for target, readout in ref.readouts.items():
            scale = abs(readout.signal) or 1.0
            worst = max(worst,
                        abs(readout.signal - got.readouts[target].signal)
                        / scale)
        if ref.blank_current is not None:
            scale = abs(ref.blank_current) or 1.0
            worst = max(worst, abs(ref.blank_current - got.blank_current)
                        / scale)
    return worst


def run_experiment() -> dict:
    jobs = build_fleet(N_CELLS)
    # Warm-up on a small slice (allocators, factor caches) before timing.
    run_fleet(jobs[:1])
    run_sequential(jobs[:1])
    seq_rate, seq_results = run_sequential(jobs)
    fleet_rate, fleet_results, fleet = run_fleet(jobs)
    deviation = max_relative_deviation(seq_results, fleet_results)
    # Solve-step throughput of the fused path: the same logical step
    # count divided by each pass's wall time, so the smoke gate can pin
    # a *relative* fused-step floor that CI scheduling noise cannot
    # flake (the sequential path performs equivalent per-WE steps).
    fleet_elapsed = N_CELLS / fleet_rate
    seq_elapsed = N_CELLS / seq_rate
    return {"n_cells": N_CELLS,
            "n_wes": sum(len(j.cell.working_electrodes) for j in jobs),
            "ca_dwell_s": CA_DWELL,
            "n_fused_dwells": fleet.n_fused_dwells,
            "n_solve_steps": fleet.n_solve_steps,
            "fleet_steps_per_sec": fleet.n_solve_steps / fleet_elapsed,
            "sequential_steps_per_sec": fleet.n_solve_steps / seq_elapsed,
            "sequential_rate": seq_rate,
            "fleet_rate": fleet_rate,
            "speedup": fleet_rate / seq_rate,
            "relative_deviation": deviation,
            "quick": QUICK}


def run_cv_fusion_experiment() -> dict:
    """Mixed CA + CV paper-panel cells: per-cell batched vs fused fleet."""
    from repro.data import paper_panel_cell

    protocol = PanelProtocol(ca_dwell=CV_CA_DWELL, sample_rate=SAMPLE_RATE)

    def build_jobs() -> list[AssayJob]:
        return [AssayJob(cell=paper_panel_cell(),
                         chain=bench_chain(seed=700 + k),
                         name=f"cv{k:02d}",
                         rng=np.random.default_rng(700 + k))
                for k in range(N_CELLS_CV)]

    # Warm-up both paths on one cell.
    warm = build_jobs()[:1]
    AssayScheduler(protocol).run_many(_cv_seeded(warm))
    [protocol.run(j.cell, j.chain, rng=j.rng) for j in _cv_seeded(warm)]

    jobs = build_jobs()
    start = time.perf_counter()
    per_cell = [protocol.run(job.cell, job.chain, rng=job.rng)
                for job in jobs]
    per_cell_s = time.perf_counter() - start

    jobs = build_jobs()
    start = time.perf_counter()
    fleet = AssayScheduler(protocol).run_many(jobs)
    fused_s = time.perf_counter() - start

    deviation = max_relative_deviation(per_cell, list(fleet.results))
    return {"n_cells": N_CELLS_CV,
            "ca_dwell_s": CV_CA_DWELL,
            "n_fused_sweeps": fleet.n_fused_sweeps,
            "n_sweep_groups": fleet.n_sweep_groups,
            "per_cell_rate": N_CELLS_CV / per_cell_s,
            "fused_rate": N_CELLS_CV / fused_s,
            "speedup": per_cell_s / fused_s,
            "relative_deviation": deviation}


def _cv_seeded(jobs) -> list[AssayJob]:
    return [replace(job, rng=np.random.default_rng(700 + k))
            for k, job in enumerate(jobs)]


def run_backend_experiment() -> dict:
    """The same paper-panel fleet through inline vs process backends."""
    import time

    from repro import api

    spec = api.FleetSpec.homogeneous(cells=N_CELLS_BACKEND, seed=900,
                                     ca_dwell=CA_DWELL)

    def timed(backend) -> tuple[float, list]:
        start = time.perf_counter()
        records = list(api.iter_results(spec, backend=backend))
        elapsed = time.perf_counter() - start
        return len(records) / elapsed, [r.result for r in records]

    # Warm-up on a one-cell fleet through *both* backends (allocators,
    # factor caches, and the OS page cache for worker imports).
    warm = api.FleetSpec.homogeneous(cells=1, seed=900, ca_dwell=CA_DWELL)
    list(api.iter_results(warm))
    list(api.iter_results(warm, backend=api.ProcessExecutor(workers=1)))
    inline_rate, inline_results = timed(api.InlineExecutor())
    process_rate, process_results = timed(
        api.ProcessExecutor(workers=N_WORKERS))
    deviation = max_relative_deviation(inline_results, process_results)
    return {"n_cells": N_CELLS_BACKEND,
            "workers": N_WORKERS,
            "inline_rate": inline_rate,
            "process_rate": process_rate,
            "speedup": process_rate / inline_rate,
            "relative_deviation": deviation,
            "enforced_min_speedup": MIN_BACKEND_SPEEDUP,
            "host_cpus": os.cpu_count() or 1}


def run_supervision_experiment() -> dict:
    """No-fault cost of the supervised process path vs the plain one."""
    import time

    from repro import api

    spec = api.FleetSpec.homogeneous(cells=N_CELLS_BACKEND, seed=900,
                                     ca_dwell=CA_DWELL)

    def timed(backend) -> tuple[float, list, object]:
        start = time.perf_counter()
        records = list(api.iter_results(spec, backend=backend))
        elapsed = time.perf_counter() - start
        return (len(records) / elapsed, [r.result for r in records],
                records[-1])

    # Warm-up both paths (worker imports, per-unit pool spawn).
    warm = api.FleetSpec.homogeneous(cells=1, seed=900, ca_dwell=CA_DWELL)
    list(api.iter_results(warm, backend=api.ProcessExecutor(workers=1)))
    list(api.iter_results(warm, backend=api.ProcessExecutor(
        workers=1, retry=api.RetryPolicy(max_attempts=2))))
    plain_rate, plain_results, _ = timed(
        api.ProcessExecutor(workers=N_WORKERS))
    supervised_rate, supervised_results, last = timed(
        api.ProcessExecutor(workers=N_WORKERS,
                            retry=api.RetryPolicy(max_attempts=2)))
    deviation = max_relative_deviation(plain_results, supervised_results)
    stats = last.resilience
    return {"n_cells": N_CELLS_BACKEND,
            "workers": N_WORKERS,
            "plain_rate": plain_rate,
            "supervised_rate": supervised_rate,
            "overhead": plain_rate / supervised_rate,
            "relative_deviation": deviation,
            "faults": stats.faults if stats is not None else None,
            "retries": stats.retries if stats is not None else None,
            "enforced_max_overhead": MAX_SUPERVISION_OVERHEAD}


def run_store_experiment() -> dict:
    """A dose-response sweep cold vs warm against a per-job run store."""
    import tempfile
    import time

    from repro import api

    sweep = api.SweepSpec(
        name="bench-dose-response",
        base=api.AssaySpec(name="pt", seed=900,
                           chain=api.ChainSpec(seed=900),
                           protocol=api.PanelProtocolSpec(
                               ca_dwell=SWEEP_CA_DWELL)),
        grid={"seed": list(range(900, 900 + N_SWEEP_POINTS))})

    def timed(store) -> tuple[float, list]:
        start = time.perf_counter()
        records = list(api.iter_results(sweep, store=store))
        return time.perf_counter() - start, records

    with tempfile.TemporaryDirectory() as root:
        store = api.RunStore(root)
        cold_s, cold = timed(store)
        warm_s, warm = timed(store)
        deviation = max_relative_deviation(
            [r.result for r in cold], [r.result for r in warm])
        # A collected warm fleet exposes the live engine totals of the
        # pass: all-cached means zero fused engine solve steps.
        verify = api.run(api.SweepSpec(
            name="bench-dose-response-verify", base=sweep.base,
            grid=dict(sweep.grid)), store=store)
        stats = store.stats()
        return {"n_points": N_SWEEP_POINTS,
                "ca_dwell_s": SWEEP_CA_DWELL,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "speedup": cold_s / warm_s if warm_s > 0.0 else float("inf"),
                "warm_all_cached": all(r.cached for r in warm),
                "warm_solve_steps": verify.engine.n_solve_steps,
                "warm_fresh_jobs": sum(1 for r in warm if not r.cached),
                "relative_deviation": deviation,
                "store_bytes": stats.bytes,
                "store_hit_rate": stats.hit_rate}


def run_distributed_experiment() -> dict:
    """The same fleet through the queue-backed distributed backend,
    served by 1/2/4 detached ``repro worker`` processes, then a warm
    cluster-wide re-run against the shared store."""
    import subprocess
    import sys
    import tempfile
    import time
    from pathlib import Path

    from repro import api

    spec = api.FleetSpec.homogeneous(cells=N_CELLS_DIST, seed=910,
                                     ca_dwell=CA_DWELL)
    inline_results = [r.result for r in api.InlineExecutor().run_fleet(spec)]

    def spawn_workers(queue: Path, count: int) -> list:
        procs = []
        for _ in range(count):
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cli", "worker",
                 "--queue", str(queue), "--idle-exit-s", "30"],
                stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True)
            ready = proc.stdout.readline()
            assert ready.startswith("repro worker: ready "), ready
            procs.append(proc)
        return procs

    rates: dict[int, float] = {}
    deviation = 0.0
    with tempfile.TemporaryDirectory() as root:
        for count in DIST_WORKER_COUNTS:
            # A fresh queue (and store) per worker count keeps every
            # timed pass cold; only the final queue is re-run warm.
            queue = Path(root) / f"q{count}"
            procs = spawn_workers(queue, count)
            try:
                executor = api.DistributedExecutor(queue=queue,
                                                   workers=count)
                start = time.perf_counter()
                records = list(executor.run_fleet(spec))
                elapsed = time.perf_counter() - start
            finally:
                for proc in procs:
                    proc.terminate()
                    proc.wait()
            rates[count] = len(records) / elapsed
            deviation = max(deviation, max_relative_deviation(
                inline_results, [r.result for r in records]))
        # Warm cluster-wide re-run: a *different* worker process, the
        # same shared store — every job short-circuits.
        procs = spawn_workers(queue, 1)
        try:
            warm = api.run(spec, backend=api.DistributedExecutor(
                queue=queue, workers=DIST_WORKER_COUNTS[-1]))
        finally:
            for proc in procs:
                proc.terminate()
                proc.wait()
    low, high = DIST_WORKER_COUNTS[0], DIST_WORKER_COUNTS[-1]
    return {"n_cells": N_CELLS_DIST,
            "worker_counts": list(DIST_WORKER_COUNTS),
            "rates": {str(count): rates[count] for count in rates},
            "speedup": rates[high] / rates[low],
            "relative_deviation": deviation,
            "warm_all_cached": all(r.cached for r in warm.records),
            "warm_solve_steps": warm.engine.n_solve_steps,
            "enforced_min_speedup": MIN_DIST_SPEEDUP,
            "host_cpus": os.cpu_count() or 1}


def run_service_experiment() -> dict:
    """The service layer under concurrent load, and the persistent
    worker pool against spawn-per-run executors."""
    import statistics
    import tempfile
    import threading
    import time

    from repro import api
    from repro.service import DiagnosticsServer, ServeSpec, ServiceClient

    # The pool axis runs first, before this process has churned through
    # pools: spawn-per-run cost in a pool-warm process underestimates
    # what a real spawn-per-run deployment pays, while a persistent
    # server pool is spawned exactly once either way.  Identical
    # consecutive small fleets through one persistent executor (pool
    # spawned once, leased per run) vs a fresh executor each time.
    specs = [api.FleetSpec.homogeneous(cells=N_POOL_WORKERS,
                                       seed=820 + 10 * k,
                                       ca_dwell=SERVICE_CA_DWELL)
             for k in range(N_POOL_RUNS)]

    persistent = api.ProcessExecutor(workers=N_POOL_WORKERS,
                                     persistent=True)
    list(api.iter_results(specs[0], backend=persistent))  # spawn + warm
    start = time.perf_counter()
    for fleet_spec in specs:
        list(api.iter_results(fleet_spec, backend=persistent))
    persistent_s = time.perf_counter() - start
    persistent.close()

    list(api.iter_results(  # warm the spawn path identically
        specs[0], backend=api.ProcessExecutor(workers=N_POOL_WORKERS,
                                              persistent=False)))
    start = time.perf_counter()
    for fleet_spec in specs:
        list(api.iter_results(
            fleet_spec,
            backend=api.ProcessExecutor(workers=N_POOL_WORKERS,
                                        persistent=False)))
    spawn_s = time.perf_counter() - start

    spec = api.FleetSpec.homogeneous(cells=1, seed=800,
                                     ca_dwell=SERVICE_CA_DWELL)
    latencies: list[float] = []
    statuses: list[str] = []
    lock = threading.Lock()
    with tempfile.TemporaryDirectory() as root:
        serve = ServeSpec(dispatchers=2, store=f"{root}/store")
        with DiagnosticsServer(serve) as server:
            # One cold pass warms the store and the HTTP path; every
            # measured submission is then a cache replay, so the
            # latencies are pure service overhead (HTTP, queueing, fair
            # scheduling, store rehydration).
            ServiceClient(server.port).submit(spec, wait=True)

            def one_submission(k: int) -> None:
                client = ServiceClient(server.port,
                                       api_key=f"client{k % 4}")
                start = time.perf_counter()
                status = client.submit(spec, wait=True)
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    statuses.append(status["status"])

            threads = [threading.Thread(target=one_submission, args=(k,))
                       for k in range(N_SERVICE_SUBMISSIONS)]
            wall = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            wall = time.perf_counter() - wall
            stats = server.runtime.stats()

    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p95 = ordered[min(len(ordered) - 1, int(round(0.95 * len(ordered))))]

    return {"n_submissions": N_SERVICE_SUBMISSIONS,
            "dispatchers": serve.dispatchers,
            "ca_dwell_s": SERVICE_CA_DWELL,
            "statuses": statuses,
            "sustained_rps": N_SERVICE_SUBMISSIONS / wall,
            "latency_p50_s": p50,
            "latency_p95_s": p95,
            "store_hits": stats["store"]["hits"],
            "rejected": sum(row["rejected"]
                            for row in stats["usage"].values()),
            "pool_runs": N_POOL_RUNS,
            "pool_workers": N_POOL_WORKERS,
            "persistent_s": persistent_s,
            "spawn_s": spawn_s,
            "pool_speedup": spawn_s / persistent_s,
            "host_cpus": os.cpu_count() or 1,
            "start_method": multiprocessing.get_start_method()}


def test_panel_throughput(benchmark, report, json_report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    # The service axis runs before the other pool-creating axes: its
    # spawn-per-run leg must pay the pool cost a fresh deployment pays,
    # not the discounted cost of a process that has churned pools.
    service = run_service_experiment()
    distributed = run_distributed_experiment()
    backends = run_backend_experiment()
    supervision = run_supervision_experiment()
    store_axis = run_store_experiment()
    cv_axis = run_cv_fusion_experiment()
    json_report("panel", {
        "bench": "panel_throughput",
        "workload": (f"{out['n_cells']}-cell fleet, {out['n_wes']} WEs, "
                     f"{out['ca_dwell_s']:g} s dwell"),
        "quick_mode": out["quick"],
        "n_fused_dwell_systems": out["n_fused_dwells"],
        "n_solve_steps": out["n_solve_steps"],
        "fused_steps_per_sec": out["fleet_steps_per_sec"],
        "assays_per_sec": {"sequential_panel": out["sequential_rate"],
                           "fleet_scheduler": out["fleet_rate"]},
        "speedup_vs_sequential": out["speedup"],
        "max_relative_deviation": out["relative_deviation"],
        "acceptance": {"min_speedup": MIN_SPEEDUP,
                       "max_deviation": 1.0e-12},
        "cv_fusion": {
            "workload": (f"{cv_axis['n_cells']}-cell paper-panel fleet, "
                         f"{cv_axis['ca_dwell_s']:g} s dwell, mixed CA+CV"),
            "n_fused_sweeps": cv_axis["n_fused_sweeps"],
            "n_sweep_groups": cv_axis["n_sweep_groups"],
            "assays_per_sec": {"per_cell_batched": cv_axis["per_cell_rate"],
                               "fused_fleet": cv_axis["fused_rate"]},
            "fused_speedup_vs_per_cell": cv_axis["speedup"],
            "max_relative_deviation": cv_axis["relative_deviation"],
            "acceptance": {"min_speedup": MIN_CV_SPEEDUP,
                           "max_deviation": 1.0e-12}},
        "backends": {
            "workload": (f"{backends['n_cells']}-cell paper-panel fleet, "
                         f"{backends['workers']} workers"),
            "host_cpus": backends["host_cpus"],
            "assays_per_sec": {"inline": backends["inline_rate"],
                               "process": backends["process_rate"]},
            "process_speedup_vs_inline": backends["speedup"],
            "max_relative_deviation": backends["relative_deviation"],
            "acceptance": {
                "min_speedup": 2.0,
                "enforced_min_speedup": backends["enforced_min_speedup"],
                "max_deviation": 1.0e-12},
        },
        "supervision": {
            "workload": (f"{supervision['n_cells']}-cell paper-panel "
                         f"fleet, {supervision['workers']} workers, "
                         f"no faults"),
            "assays_per_sec": {
                "plain_process": supervision["plain_rate"],
                "supervised_process": supervision["supervised_rate"]},
            "supervision_overhead": supervision["overhead"],
            "max_relative_deviation": supervision["relative_deviation"],
            "faults": supervision["faults"],
            "retries": supervision["retries"],
            "acceptance": {
                "max_overhead": 1.05,
                "enforced_max_overhead":
                    supervision["enforced_max_overhead"],
                "max_deviation": 1.0e-12},
        },
        "store": {
            "workload": (f"{store_axis['n_points']}-point dose-response "
                         f"sweep, {store_axis['ca_dwell_s']:g} s dwell"),
            "cold_s": store_axis["cold_s"],
            "warm_s": store_axis["warm_s"],
            "cache_hit_speedup": store_axis["speedup"],
            "warm_all_cached": store_axis["warm_all_cached"],
            "warm_solve_steps": store_axis["warm_solve_steps"],
            "max_relative_deviation": store_axis["relative_deviation"],
            "store_bytes": store_axis["store_bytes"],
            "store_hit_rate": store_axis["store_hit_rate"],
            "acceptance": {"warm_solve_steps": 0,
                           "max_deviation": 0.0},
        },
        "service": {
            "workload": (f"{service['n_submissions']} concurrent 1-cell "
                         f"submissions, {service['dispatchers']} "
                         f"dispatchers, warm store"),
            "host_cpus": service["host_cpus"],
            "start_method": service["start_method"],
            "sustained_rps": service["sustained_rps"],
            "latency_p50_s": service["latency_p50_s"],
            "latency_p95_s": service["latency_p95_s"],
            "store_hits": service["store_hits"],
            "pool": {
                "runs": service["pool_runs"],
                "workers": service["pool_workers"],
                "persistent_s": service["persistent_s"],
                "spawn_per_run_s": service["spawn_s"],
                "persistent_speedup": service["pool_speedup"]},
            "acceptance": {"min_pool_speedup": 1.5,
                           "enforced_min_pool_speedup": MIN_POOL_SPEEDUP},
        },
        "distributed": {
            "workload": (f"{distributed['n_cells']}-cell paper-panel "
                         f"fleet, shared queue, "
                         f"{distributed['worker_counts']} worker "
                         f"processes"),
            "host_cpus": distributed["host_cpus"],
            "assays_per_sec": distributed["rates"],
            "scaling_speedup": distributed["speedup"],
            "max_relative_deviation": distributed["relative_deviation"],
            "warm_all_cached": distributed["warm_all_cached"],
            "warm_solve_steps": distributed["warm_solve_steps"],
            "acceptance": {
                "min_speedup": 1.5,
                "enforced_min_speedup":
                    distributed["enforced_min_speedup"],
                "max_deviation": 1.0e-12,
                "warm_solve_steps": 0},
        },
    })
    report(render_table(
        ["implementation", "assays/sec"],
        [["sequential PanelProtocol (per-WE engines)",
          f"{out['sequential_rate']:.2f}"],
         ["AssayScheduler (fused dwell batch)",
          f"{out['fleet_rate']:.2f}"]],
        title=(f"P1 | {out['n_cells']}-cell fleet, "
               f"{out['n_fused_dwells']} fused dwell systems"
               + (" [quick]" if out["quick"] else ""))))
    report(f"speedup vs sequential    : {out['speedup']:.1f}x  "
           f"(acceptance: >= {MIN_SPEEDUP:g}x)")
    report(f"max relative deviation   : {out['relative_deviation']:.2e}  "
           f"(acceptance: <= 1e-12)")
    report(render_table(
        ["backend", "assays/sec"],
        [["InlineExecutor (fused, in-process)",
          f"{backends['inline_rate']:.2f}"],
         [f"ProcessExecutor ({backends['workers']} workers)",
          f"{backends['process_rate']:.2f}"]],
        title=(f"P1b | backend axis, {backends['n_cells']}-cell fleet, "
               f"{backends['host_cpus']} host CPU(s)")))
    report(f"process speedup vs inline: {backends['speedup']:.1f}x  "
           f"(acceptance: >= 2x with >= {N_WORKERS} cores; enforced: "
           f">= {backends['enforced_min_speedup']:g}x here)")
    report(f"backend max rel deviation: "
           f"{backends['relative_deviation']:.2e}  (acceptance: <= 1e-12)")
    report(render_table(
        ["backend", "assays/sec"],
        [["ProcessExecutor (plain)", f"{supervision['plain_rate']:.2f}"],
         ["ProcessExecutor (supervised, no faults)",
          f"{supervision['supervised_rate']:.2f}"]],
        title=(f"P1e | supervision axis, {supervision['n_cells']}-cell "
               f"fleet, {supervision['workers']} workers")))
    report(f"supervision overhead     : {supervision['overhead']:.2f}x  "
           f"(acceptance: <= 1.05x where timing is fair; enforced: "
           f"<= {supervision['enforced_max_overhead']:g}x here)")
    report(f"supervised max deviation : "
           f"{supervision['relative_deviation']:.2e}  "
           f"(acceptance: <= 1e-12)")
    report(render_table(
        ["pass", "wall s"],
        [["cold sweep (every point simulated)",
          f"{store_axis['cold_s']:.2f}"],
         ["warm sweep (per-job store hits)",
          f"{store_axis['warm_s']:.2f}"]],
        title=(f"P1c | store axis, {store_axis['n_points']}-point sweep, "
               f"{store_axis['store_bytes']} stored bytes")))
    report(f"cache-hit speedup        : {store_axis['speedup']:.1f}x  "
           f"(warm pass: {store_axis['warm_fresh_jobs']} fresh jobs, "
           f"{store_axis['warm_solve_steps']} engine solve steps)")
    report(render_table(
        ["implementation", "assays/sec"],
        [["per-cell batched (CV per WE)", f"{cv_axis['per_cell_rate']:.2f}"],
         ["fused fleet (cross-cell SweepBatch)",
          f"{cv_axis['fused_rate']:.2f}"]],
        title=(f"P1d | CV-fusion axis, {cv_axis['n_cells']} paper-panel "
               f"cells, {cv_axis['n_fused_sweeps']} fused sweeps in "
               f"{cv_axis['n_sweep_groups']} group(s)")))
    report(f"CV-fusion speedup        : {cv_axis['speedup']:.1f}x  "
           f"(acceptance: >= {MIN_CV_SPEEDUP:g}x)")
    report(f"CV-fusion max deviation  : {cv_axis['relative_deviation']:.2e}"
           f"  (acceptance: <= 1e-12)")
    report(render_table(
        ["metric", "value"],
        [["sustained submissions/sec", f"{service['sustained_rps']:.1f}"],
         ["submission latency p50", f"{service['latency_p50_s']*1e3:.0f} ms"],
         ["submission latency p95", f"{service['latency_p95_s']*1e3:.0f} ms"]],
        title=(f"P1f | service axis, {service['n_submissions']} concurrent "
               f"submissions, {service['dispatchers']} dispatchers, "
               f"warm store")))
    report(render_table(
        ["executor", "wall s"],
        [["ProcessExecutor(persistent=True), pool leased per run",
          f"{service['persistent_s']:.2f}"],
         ["spawn-per-run ProcessExecutor",
          f"{service['spawn_s']:.2f}"]],
        title=(f"P1g | persistent pool, {service['pool_runs']} consecutive "
               f"{service['pool_workers']}-cell fleets, "
               f"{service['pool_workers']} workers, "
               f"{service['host_cpus']} CPU(s), "
               f"{service['start_method']} start")))
    report(f"persistent-pool speedup  : {service['pool_speedup']:.1f}x  "
           f"(acceptance: >= 1.5x; enforced: >= {MIN_POOL_SPEEDUP:g}x here)")
    report(render_table(
        ["worker fleet", "assays/sec"],
        [[f"{count} repro worker process(es)",
          f"{distributed['rates'][str(count)]:.2f}"]
         for count in distributed["worker_counts"]],
        title=(f"P1h | distributed axis, {distributed['n_cells']}-cell "
               f"fleet through a shared queue, "
               f"{distributed['host_cpus']} host CPU(s)")))
    report(f"distributed scaling      : {distributed['speedup']:.1f}x  "
           f"({distributed['worker_counts'][-1]} vs "
           f"{distributed['worker_counts'][0]} workers; acceptance: "
           f">= 1.5x with >= {distributed['worker_counts'][-1]} cores; "
           f"enforced: >= {distributed['enforced_min_speedup']:g}x here)")
    report(f"distributed warm re-run  : all_cached="
           f"{distributed['warm_all_cached']}, "
           f"{distributed['warm_solve_steps']} engine solve steps "
           f"(acceptance: 0)")

    # The scheduler must reproduce the sequential panels and beat them.
    assert out["relative_deviation"] <= 1.0e-12
    assert out["speedup"] >= MIN_SPEEDUP
    # Backends must agree bit for bit; process must scale when it can.
    assert backends["relative_deviation"] <= 1.0e-12
    assert backends["speedup"] >= backends["enforced_min_speedup"]
    # Supervision must be bit-identical, fault-free here, and near-free.
    assert supervision["relative_deviation"] <= 1.0e-12
    assert supervision["faults"] == 0 and supervision["retries"] == 0
    assert supervision["overhead"] <= supervision["enforced_max_overhead"]
    # A warm sweep is a pure replay: bit-identical, zero engine solves.
    assert store_axis["relative_deviation"] == 0.0
    assert store_axis["warm_all_cached"]
    assert store_axis["warm_solve_steps"] == 0
    # Cross-cell CV fusion must agree bit for bit and stay ahead.
    assert cv_axis["relative_deviation"] <= 1.0e-12
    assert cv_axis["speedup"] >= MIN_CV_SPEEDUP
    # The fused path must not fall behind the sequential reference in
    # raw solve-step throughput (relative floor; quick mode gates CI).
    assert (out["fleet_steps_per_sec"]
            >= 0.8 * out["sequential_steps_per_sec"])
    # The service must complete every concurrent submission from the
    # warm store, and the persistent pool must beat spawn-per-run.
    assert service["statuses"] == ["done"] * service["n_submissions"]
    assert service["store_hits"] >= service["n_submissions"]
    assert service["rejected"] == 0
    assert service["pool_speedup"] >= MIN_POOL_SPEEDUP
    # Distributed workers must agree bit for bit, scale when the cores
    # exist, and short-circuit a warm fleet cluster-wide.
    assert distributed["relative_deviation"] <= 1.0e-12
    assert distributed["speedup"] >= distributed["enforced_min_speedup"]
    assert distributed["warm_all_cached"]
    assert distributed["warm_solve_steps"] == 0
