"""A5 — Ablation: readout sharing and readout style (Sec. II-A / II-C).

Two trade-offs the paper discusses:

1. **Sharing**: one multiplexed chain across all WEs (De Venuto et al.
   [23]) versus a chain per electrode — area/power against assay time.
2. **Readout style**: the TIA+ADC voltage path versus the
   current-to-frequency converter of refs. [26][27] — power and
   gate-time-for-resolution against conversion speed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import design_from_choices
from repro.core.costs import cost_of
from repro.core.estimates import estimate_design
from repro.core.library import probe_options
from repro.core.targets import paper_panel_spec
from repro.data.catalog import integrated_chain
from repro.electronics.freq_readout import CurrentToFrequencyConverter
from repro.io.tables import render_table
from repro.sensors.electrode import PAPER_ELECTRODE_AREA


def panel_design(readout: str):
    panel = paper_panel_spec()
    choices = {}
    for target in panel.species_names():
        options = probe_options(target)
        pick = options[0]
        for option in options:
            if target == "cholesterol" and option.family == "cytochrome":
                pick = option
        choices[target] = pick
    design = design_from_choices(
        panel, choices, structure="shared_chamber", readout=readout,
        noise="raw", nanostructure="carbon_nanotubes",
        we_area=PAPER_ELECTRODE_AREA, scan_rate=0.020,
        name=f"panel_{readout}")
    return panel, design


def run_sharing() -> dict:
    out = {}
    for readout in ("mux_shared", "per_we"):
        panel, design = panel_design(readout)
        estimates = estimate_design(design, panel)
        cost = cost_of(design, estimates)
        out[readout] = {"cost": cost, "estimates": estimates,
                        "chains": design.n_chains}
    return out


def run_readout_style() -> dict:
    chain = integrated_chain("cyp_micro", n_channels=1)
    converter = CurrentToFrequencyConverter()
    return {
        "tia_power": chain.tia.power + chain.adc.power,
        "tia_resolution": chain.adc.current_resolution(
            chain.tia.feedback_resistance),
        "i2f_power": converter.power,
        "i2f_gate_1na": converter.gate_time_for_resolution(1.0e-9),
        "i2f_gate_10pa": converter.gate_time_for_resolution(10.0e-12),
    }


def test_ablation_readout_sharing(benchmark, report):
    out = benchmark.pedantic(run_sharing, rounds=1, iterations=1)
    rows = []
    for readout in ("mux_shared", "per_we"):
        entry = out[readout]
        rows.append([
            readout, entry["chains"],
            f"{entry['cost'].power_w * 1e6:.0f}",
            f"{entry['cost'].die_area_mm2:.1f}",
            f"{entry['cost'].fabrication_cost:.1f}",
            f"{entry['cost'].assay_time_s:.0f}",
        ])
    report(render_table(
        ["Readout", "Chains", "Power uW", "Die mm^2", "Cost", "Assay s"],
        rows, title="A5 | readout sharing on the Sec. III panel"))

    mux = out["mux_shared"]["cost"]
    par = out["per_we"]["cost"]
    # Sharing wins area/power/cost; parallel wins assay time.
    assert mux.power_w < par.power_w / 3.0
    assert mux.fabrication_cost < par.fabrication_cost
    assert mux.assay_time_s > par.assay_time_s


def test_ablation_readout_style(benchmark, report):
    out = benchmark.pedantic(run_readout_style, rounds=1, iterations=1)
    report(render_table(
        ["Property", "TIA + ADC", "Current-to-frequency [26][27]"],
        [["power", f"{out['tia_power'] * 1e6:.0f} uW",
          f"{out['i2f_power'] * 1e6:.0f} uW"],
         ["resolution", f"{out['tia_resolution'] * 1e9:.1f} nA (fixed)",
          "any (gate-limited)"],
         ["gate for 1 nA", "n/a (10 ms/sample)",
          f"{out['i2f_gate_1na'] * 1e3:.0f} ms"],
         ["gate for 10 pA", "below the LSB floor",
          f"{out['i2f_gate_10pa'] * 1e3:.0f} ms"]],
        title="A5 | readout style: voltage path vs frequency path"))
    # The frequency converter runs on a fraction of the power budget —
    # why implantable potentiostats [26] choose it — and its resolution
    # is bought with gate time (100x finer costs 100x longer).
    assert out["i2f_power"] < 0.2 * out["tia_power"]
    assert out["i2f_gate_10pa"] == pytest.approx(
        100.0 * out["i2f_gate_1na"], rel=1e-9)
