"""F1 — Fig. 1: potentiostat + transimpedance amplifier behaviour.

Fig. 1 is a block diagram, so the reproducible content is the *function*
of the two blocks: the potentiostat must hold the cell potential at the
setpoint (finite-gain error far below the chemistry's sensitivity to
potential), and the TIA must convert cell current to voltage linearly up
to its rails.  The bench sweeps both and reports regulation error,
transfer linearity and compliance limits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.catalog import integrated_chain
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import TransimpedanceAmplifier
from repro.io.tables import render_table


def run_experiment() -> dict:
    potentiostat = Potentiostat()
    setpoints = np.linspace(-0.8, 0.8, 17)
    errors = potentiostat.regulation_error(setpoints)

    tia = TransimpedanceAmplifier.for_range(10.0e-6)
    currents = np.linspace(-9.0e-6, 9.0e-6, 37)
    volts = tia.output_voltage(currents)
    slope, intercept = np.polyfit(currents, volts, deg=1)
    residual = volts - (slope * currents + intercept)
    nonlinearity = float(np.max(np.abs(residual)) / (2.0 * tia.rail))

    compliance_points = [
        (0.3, potentiostat.max_cell_current(0.3)),
        (0.65, potentiostat.max_cell_current(0.65)),
        (1.0, potentiostat.max_cell_current(1.0)),
    ]
    return {
        "setpoints": setpoints,
        "errors": errors,
        "tia_gain": float(slope),
        "tia_nonlinearity": nonlinearity,
        "compliance": compliance_points,
        "settle_time": potentiostat.settle_time(0.01),
    }


def test_fig1_potentiostat_and_tia(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    worst = float(np.max(np.abs(out["errors"])))
    rows = [
        ["worst regulation error", f"{worst * 1e3:.3f} mV"],
        ["TIA gain", f"{out['tia_gain'] / 1e3:.1f} kV/A"],
        ["TIA non-linearity (of FS)", f"{out['tia_nonlinearity']:.2e}"],
        ["settling time (1 %)", f"{out['settle_time'] * 1e6:.0f} us"],
    ]
    for setpoint, i_max in out["compliance"]:
        rows.append([f"max cell current @ {setpoint:.2f} V",
                     f"{i_max * 1e3:.2f} mA"])
    report(render_table(["Property", "Value"], rows,
                        title="F1 | Fig. 1: potentiostat + TIA behaviour"))

    # Regulation error must be far below the chemistry's potential scale
    # (the 25.7 mV Nernst slope): < 1 mV.
    assert worst < 1.0e-3
    # The TIA transfer must be linear to well below one 10 nA LSB of FS.
    assert out["tia_nonlinearity"] < 1.0e-3
    # Compliance shrinks with setpoint (IR headroom).
    i_values = [i for _, i in out["compliance"]]
    assert i_values[0] > i_values[1] > i_values[2]


def test_fig1_closed_loop_step(benchmark, report):
    """The control loop settles orders of magnitude faster than the
    chemistry (Sec. II-C: the readout never limits response times)."""

    def run() -> dict:
        potentiostat = Potentiostat()
        t = np.linspace(0.0, 5.0 * potentiostat.settling_time_constant, 200)
        y = potentiostat.step_response(t, e_step=0.65)
        settle = potentiostat.settle_time(0.01)
        return {"settle": settle, "final": float(y[-1])}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"F1 | step settling to 1 %: {out['settle'] * 1e6:.0f} us "
           f"(chemistry settles in ~30 s — 5 orders of magnitude slower)")
    assert out["settle"] < 1.0e-3  # micro-seconds to milli-seconds
    assert out["final"] == pytest.approx(0.65, rel=0.01)
