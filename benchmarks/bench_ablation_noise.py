"""A1 — Ablation: noise strategies (raw vs chopping vs CDS, Sec. II-C).

The paper prescribes chopping and correlated double sampling against
flicker noise, and warns that the CDS blank electrode fails for molecules
that oxidise directly on bare metal (dopamine, etoposide).  The bench
measures both claims:

1. the blank noise (and hence LOD) of a platform glucose channel under
   each strategy, through the integrated chain with realistic 1/f noise;
2. the fraction of signal CDS subtraction preserves for glucose
   (enzyme-mediated, blank blind) versus dopamine (direct oxidiser, blank
   sees it too).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.solution import Chamber
from repro.data.catalog import integrated_chain, paper_panel_cell
from repro.electronics.noise import CdsStrategy, ChoppingStrategy, NoStrategy
from repro.io.tables import render_table
from repro.units import si_to_um_conc

STRATEGIES = {
    "raw": NoStrategy(),
    "chopping": ChoppingStrategy(),
    "cds": CdsStrategy(),
}


def measure_blank_sigma(strategy_name: str) -> float:
    """Blank-channel noise of the platform glucose WE, amperes RMS."""
    cell = paper_panel_cell({t: 0.0 for t in ("glucose",)})
    chain = integrated_chain("cyp_micro", n_channels=5,
                             noise_strategy=STRATEGIES[strategy_name],
                             seed=55)
    we = cell.working_electrodes[0]
    rng = np.random.default_rng(55)
    stds = []
    for _ in range(4):
        true = cell.measured_current("WE1", 0.470)
        __, std = chain.measure_constant(true, duration=20.0,
                                         sample_rate=10.0, we=we, rng=rng)
        stds.append(std)
    return float(np.mean(stds))


def cds_signal_retention(species: str, concentration: float) -> float:
    """Signal fraction surviving blank subtraction for one analyte."""
    cell = paper_panel_cell({species: concentration})
    e_applied = 0.55
    signal = cell.measured_current("WE1", e_applied)
    blank = cell.blank_current(e_applied)
    leak = cell.working_electrodes[0].electrode.leakage_current()
    raw = signal - leak
    after_cds = signal - blank
    return float(after_cds / raw) if raw else 0.0


def run_experiment() -> dict:
    sigmas = {name: measure_blank_sigma(name) for name in STRATEGIES}
    # Glucose channel sensitivity on the platform for the LOD conversion.
    cell = paper_panel_cell({"glucose": 1.0})
    slope = (cell.measured_current("WE1", 0.470)
             - cell.blank_current(0.470)) / 1.0
    lods = {name: 3.0 * sigma / slope for name, sigma in sigmas.items()}
    retention = {
        "glucose": cds_signal_retention("glucose", 2.0),
        "dopamine": cds_signal_retention("dopamine", 0.5),
    }
    return {"sigmas": sigmas, "lods": lods, "retention": retention}


def test_ablation_noise_strategies(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[name, f"{out['sigmas'][name] * 1e9:.2f}",
             f"{si_to_um_conc(out['lods'][name]):.0f}"]
            for name in ("raw", "chopping", "cds")]
    report(render_table(
        ["Strategy", "Blank sigma nA", "Glucose LOD uM"],
        rows, title="A1 | noise strategies on the integrated platform "
                    "(1/f corner 10 Hz)"))
    report(f"CDS signal retention: glucose "
           f"{out['retention']['glucose']:.2f}, dopamine "
           f"{out['retention']['dopamine']:.2f} "
           f"(paper: blank WE 'not helpful' for direct oxidisers)")

    # Chopping and CDS beat the raw flicker-limited readout.
    assert out["sigmas"]["chopping"] < 0.6 * out["sigmas"]["raw"]
    assert out["sigmas"]["cds"] < out["sigmas"]["raw"]
    # CDS keeps the enzyme-mediated signal but eats the direct oxidiser.
    assert out["retention"]["glucose"] > 0.9
    assert out["retention"]["dopamine"] < 0.2
