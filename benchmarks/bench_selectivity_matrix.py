"""S1 — Selectivity of the Fig. 4 panel (Sec. II-B property).

"Selectivity ... measures the ability to discriminate between different
substances.  Such behavior is principally a function of the recognition
element, i.e. the enzymes."

The bench measures the panel's cross-response matrix at both operating
points — the anodic oxidase potential (+550 mV, where H2O2 is collected)
and a cathodic CYP potential (-600 mV, where the heme couples drive) —
plus the failure mode the paper warns about: dopamine, a direct oxidiser,
lights up *every* electrode at the anodic point, enzymes or not.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.selectivity import cross_response_matrix
from repro.data.catalog import paper_panel_cell
from repro.io.tables import render_table

PANEL_SPECIES = ("glucose", "lactate", "glutamate",
                 "benzphetamine", "aminopyrine", "cholesterol")


def run_experiment() -> dict:
    cell = paper_panel_cell({t: 0.0 for t in PANEL_SPECIES})
    anodic = cross_response_matrix(cell, +0.550, species=PANEL_SPECIES,
                                   concentration=1.0)
    cathodic = cross_response_matrix(cell, -0.600, species=PANEL_SPECIES,
                                     concentration=1.0)
    interference = cross_response_matrix(
        cell, +0.550, species=("glucose", "dopamine"), concentration=0.5)
    return {"anodic": anodic, "cathodic": cathodic,
            "interference": interference}


def test_selectivity_matrix(benchmark, report):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    anodic, cathodic = out["anodic"], out["cathodic"]
    report("S1 | anodic operating point (+550 mV): oxidase channels")
    report(anodic.render())
    report("")
    report("S1 | cathodic operating point (-600 mV): CYP channels")
    report(cathodic.render())
    report("")
    inter = out["interference"]
    rows = []
    for we in inter.we_names:
        rows.append([we,
                     f"{inter.response(we, 'glucose') * 1e9:.2f}",
                     f"{inter.response(we, 'dopamine') * 1e9:.2f}"])
    report(render_table(
        ["WE", "glucose 0.5 mM (nA)", "dopamine 0.5 mM (nA)"],
        rows, title="S1 | the direct-oxidiser failure mode: dopamine "
                    "responds on every electrode (paper Sec. II-C)"))

    # Oxidase electrodes: own target >> everything else at +550 mV.
    for we, target in (("WE1", "glucose"), ("WE2", "lactate"),
                       ("WE3", "glutamate")):
        own = abs(anodic.response(we, target))
        assert own > 0.0
        __, worst = anodic.worst_interferent(we)
        assert worst > 1.0e3, (we, worst)
    # CYP electrodes respond (cathodically) to their substrates only.
    for we, targets in (("WE4", ("benzphetamine", "aminopyrine")),
                        ("WE5", ("cholesterol",))):
        for target in targets:
            assert cathodic.response(we, target) < 0.0, (we, target)
        __, worst = cathodic.worst_interferent(we)
        assert worst > 1.0e3, (we, worst)
    # Dopamine breaks enzyme selectivity: every electrode responds with
    # currents comparable across the whole chip.
    for we in inter.we_names:
        assert inter.response(we, "dopamine") > 1.0e-9, we
    # H2O2 cross-talk between oxidase electrodes stays negligible at the
    # Fig. 4 pitch — the paper's Sec. II-A assumption, quantified.
    assert abs(anodic.response("WE2", "glucose")) < 1.0e-11
