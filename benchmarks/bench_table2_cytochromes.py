"""T2 — Table II: CYP isoforms and their reduction potentials.

For every isoform the bench loads its drugs at equal concentration, runs
cyclic voltammetry at the paper's 20 mV/s, detects the cathodic peaks and
maps the positions back to formal potentials (reversible-offset
corrected).  Resolvable targets must land within tolerance of Table II;
the two pairs the physics cannot separate (CYP2B6's coincident -450 mV
channels; CYP2C9's 22 mV torsemide/diclofenac gap) must show up merged —
exactly the conclusion the design rules encode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chem.solution import Chamber
from repro.data.catalog import build_cytochrome
from repro.data.cytochromes import cyp_isoforms, cyp_records_for
from repro.electronics.waveform import TriangleWaveform
from repro.io.tables import render_table
from repro.measurement.peaks import assign_peaks, find_peaks
from repro.measurement.trace import Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import with_cytochrome
from repro.sensors.materials import get_material
from repro.units import v_to_mv

TOLERANCE_MV = 40.0

#: Isoforms whose channel pairs are too close to resolve (paper data).
EXPECTED_MERGED = {"CYP2B6", "CYP2C9"}


def run_isoform(isoform: str) -> dict:
    probe = build_cytochrome(isoform)
    chamber = Chamber(name=isoform)
    for record in cyp_records_for(isoform):
        chamber.set_bulk(record.target, 0.5)
    we = WorkingElectrode(
        electrode=Electrode(name="WE", role=ElectrodeRole.WORKING,
                            material=get_material("glassy_carbon"),
                            area=7.0e-6),
        functionalization=with_cytochrome(probe))
    cell = ElectrochemicalCell(
        chamber=chamber, working_electrodes=[we],
        reference=Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                            material=get_material("silver"), area=7.0e-6),
        counter=Electrode(name="CE", role=ElectrodeRole.COUNTER,
                          material=get_material("gold"), area=14.0e-6))
    potentials = [ch.reduction_potential for ch in probe.channels]
    waveform = TriangleWaveform(e_start=max(potentials) + 0.25,
                                e_vertex=min(potentials) - 0.25,
                                scan_rate=0.020)
    protocol = CyclicVoltammetry(waveform, sample_rate=10.0)
    t, p, s, i = protocol.simulate_true_current(cell, "WE")
    voltammogram = Voltammogram(times=t, potentials=p, current=i,
                                sweep_sign=s, scan_rate=0.020)
    peaks = find_peaks(voltammogram, cathodic=True, min_height=2e-9)
    candidates = {ch.substrate: ch.reduction_potential
                  for ch in probe.channels}
    assignment = assign_peaks(peaks, candidates,
                              tolerance=TOLERANCE_MV * 1e-3)
    return {"isoform": isoform, "peaks": peaks, "assignment": assignment,
            "candidates": candidates}


def run_experiment() -> list[dict]:
    return [run_isoform(isoform) for isoform in cyp_isoforms()]


def test_table2_reduction_potentials(benchmark, report):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for result in results:
        isoform = result["isoform"]
        for target, e_formal in result["candidates"].items():
            peak = result["assignment"].matches.get(target)
            if peak is None:
                rows.append([isoform, target, f"{v_to_mv(e_formal):+.0f}",
                             "merged/undetected", "-"])
            else:
                estimate = peak.formal_potential_estimate(2)
                rows.append([isoform, target, f"{v_to_mv(e_formal):+.0f}",
                             f"{v_to_mv(estimate):+.0f}",
                             f"{v_to_mv(estimate - e_formal):+.0f}"])
    report(render_table(
        ["CYP", "Drug", "Paper mV", "Measured E0 mV", "Error mV"],
        rows, title="T2 | Table II: CV peak positions at 20 mV/s"))

    for result in results:
        isoform = result["isoform"]
        assignment = result["assignment"]
        if isoform in EXPECTED_MERGED:
            # The near-coincident pairs must NOT fully resolve.
            assert assignment.missing_targets, isoform
            continue
        assert assignment.all_assigned, (isoform,
                                         assignment.missing_targets)
        for target, peak in assignment.matches.items():
            error = abs(peak.formal_potential_estimate(2)
                        - result["candidates"][target])
            assert error <= TOLERANCE_MV * 1e-3, (isoform, target, error)
