"""D1 — Design-space exploration for the Sec. III panel.

The paper's core proposition: restrict the design space to parametrized
components, then search it systematically for "the most cost-effective
solution (e.g., small, low energy consumption, low-cost)".  The bench runs
the full exploration for the six-target panel, prints the Pareto front,
and checks the structural findings the paper argues for:

- the shared-chamber, multiplexed Fig. 4 arrangement dominates on cost;
- per-WE readout buys assay time at a power/area premium;
- every infeasible corner is explained by a named rule violation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.explorer import explore
from repro.core.report import design_point_report, exploration_report
from repro.core.targets import paper_panel_spec


def run_experiment():
    return explore(paper_panel_spec(), require_feasible=True)


def test_dse_pareto(benchmark, report):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(exploration_report(result))
    cheapest = result.best_by("cost")
    fastest = result.best_by("time")
    report("")
    report("cheapest feasible platform:")
    report(design_point_report(cheapest))
    report("")
    report("fastest feasible platform:")
    report(design_point_report(fastest))

    # A meaningful exploration: hundreds of candidates, a real front.
    assert result.n_candidates >= 200
    assert result.n_feasible >= 50
    assert len(result.front) >= 5

    # The paper's Fig. 4 architecture family (shared chamber, multiplexed
    # readout) is the cost champion.
    assert cheapest.design.structure == "shared_chamber"
    assert cheapest.design.readout == "mux_shared"
    # Buying speed means paying power: the fastest point runs parallel
    # chains and burns more than the cheapest.
    assert fastest.design.readout == "per_we"
    assert fastest.cost.power_w > cheapest.cost.power_w
    # Every infeasible candidate carries an explanation.
    for point in result.points:
        if not point.feasible:
            assert point.violations
