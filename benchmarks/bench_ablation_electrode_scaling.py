"""A3 — Ablation: electrode scaling (paper Sec. III).

"Scaling down the electrodes can bring some advantages: the background
current is smaller, due to different double-layer capacitance phenomena;
time response of the biosensor is decreased in the case of
microelectrodes, enabling much shorter measurements."

The bench builds the same glucose sensor at four areas and measures the
capacitive background at the 20 mV/s sweep, the diffusive settling time,
and the signal current — quantifying both claims and the price paid
(signal shrinks with area too).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.chem.solution import Chamber
from repro.data.catalog import build_oxidase
from repro.io.tables import render_table
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import CARBON_NANOTUBES, with_oxidase
from repro.sensors.materials import get_material

AREAS_MM2 = (7.0, 1.0, 0.23, 0.05)


def build_we(area_mm2: float) -> WorkingElectrode:
    return WorkingElectrode(
        electrode=Electrode(name=f"WE_{area_mm2}",
                            role=ElectrodeRole.WORKING,
                            material=get_material("gold"),
                            area=area_mm2 * 1e-6),
        functionalization=with_oxidase(build_oxidase("glucose"),
                                       nanostructure=CARBON_NANOTUBES))


def run_experiment() -> list[dict]:
    chamber = Chamber(name="a3")
    chamber.set_bulk("glucose", 2.0)
    rows = []
    for area in AREAS_MM2:
        we = build_we(area)
        background = we.electrode.charging_current(0.020)
        t90 = we.response_time("glucose")
        signal = we.steady_state_current(0.470, chamber)
        rows.append({"area": area, "background": background,
                     "t90": t90, "signal": signal,
                     "snr_like": signal / max(background, 1e-15)})
    return rows


def test_ablation_electrode_scaling(benchmark, report):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(render_table(
        ["Area mm^2", "Charging bg nA", "t90 s", "Signal nA",
         "Signal/bg"],
        [[f"{r['area']:g}", f"{r['background'] * 1e9:.2f}",
          f"{r['t90']:.1f}", f"{r['signal'] * 1e9:.1f}",
          f"{r['snr_like']:.0f}"] for r in rows],
        title="A3 | electrode scaling: background, response time, signal "
              "(glucose, 2 mM, 20 mV/s sweep)"))

    by_area = {r["area"]: r for r in rows}
    # Background charging current scales linearly with area (claim 1).
    ratio = by_area[7.0]["background"] / by_area[0.23]["background"]
    assert ratio == pytest.approx(7.0 / 0.23, rel=1e-6)
    # Smaller electrodes settle faster (claim 2), monotonically.
    t90s = [by_area[a]["t90"] for a in AREAS_MM2]
    assert all(a > b for a, b in zip(t90s, t90s[1:]))
    # The 0.05 mm^2 microelectrode is at least 3x faster than the strip.
    assert by_area[0.05]["t90"] < by_area[7.0]["t90"] / 3.0
