"""CSV/JSON export of traces, voltammograms and calibration curves.

Benches drop machine-readable artifacts next to their printed tables so
downstream tooling (plotting, regression tracking) can consume the same
numbers.

:func:`panel_result_to_payload` / :func:`panel_result_from_payload` are
the *lossless* JSON round trip of a live
:class:`~repro.measurement.panel.PanelResult` — every sample of every
trace and voltammogram, every readout and detected peak.  Python floats
serialise through ``repr`` and therefore round-trip bit for bit, so the
:class:`~repro.api.store.RunStore`'s per-job records can rehydrate a
result that is bit-identical to the run that produced it.  Only the raw
:class:`~repro.electronics.chain.ChannelReading` attachments (ADC codes,
saturation flags) are dropped; rehydrated records carry
``reading=None``.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from repro.analysis.calibration import CalibrationCurve
from repro.measurement.trace import Trace, Voltammogram

__all__ = ["trace_to_csv", "voltammogram_to_csv", "calibration_to_json",
           "run_record_to_json", "write_json",
           "panel_result_to_payload", "panel_result_from_payload"]


def trace_to_csv(trace: Trace, path: str | Path) -> Path:
    """Write a time/current CSV; returns the path."""
    out = Path(path)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["time_s", "current_a"]
        if trace.true_current is not None:
            header.append("true_current_a")
        writer.writerow(header)
        for k in range(trace.n_samples):
            row = [f"{trace.times[k]:.6g}", f"{trace.current[k]:.9g}"]
            if trace.true_current is not None:
                row.append(f"{trace.true_current[k]:.9g}")
            writer.writerow(row)
    return out


def voltammogram_to_csv(voltammogram: Voltammogram, path: str | Path) -> Path:
    """Write a time/potential/current CSV; returns the path."""
    out = Path(path)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "potential_v", "current_a", "sweep_sign"])
        for k in range(voltammogram.n_samples):
            writer.writerow([
                f"{voltammogram.times[k]:.6g}",
                f"{voltammogram.potentials[k]:.6g}",
                f"{voltammogram.current[k]:.9g}",
                f"{voltammogram.sweep_sign[k]:.0f}",
            ])
    return out


def calibration_to_json(curve: CalibrationCurve, path: str | Path) -> Path:
    """Serialise a calibration curve (points + blank stats) to JSON."""
    payload = {
        "blank_mean": curve.blank_mean,
        "blank_std": curve.blank_std,
        "points": [
            {
                "concentration": p.concentration,
                "signal": p.signal,
                "signal_std": p.signal_std,
            }
            for p in curve.points
        ],
    }
    return write_json(payload, path)


def run_record_to_json(record, path: str | Path) -> Path:
    """Serialise a :mod:`repro.api` run record to JSON.

    The payload is the record's ``to_dict()``: provenance (spec hash,
    schema version, seed, wall time), the canonical spec itself, and the
    quantified result summary — everything needed to audit or replay the
    run.  Raw sample arrays stay on the live result; export those with
    :func:`trace_to_csv` / :func:`voltammogram_to_csv`.
    """
    return write_json(record.to_dict(), path)


def _optional(array) -> list | None:
    return None if array is None else array.tolist()


def _trace_to_payload(trace: Trace) -> dict:
    return {"times": trace.times.tolist(),
            "current": trace.current.tolist(),
            "true_current": _optional(trace.true_current),
            "channel": trace.channel}


def _trace_from_payload(payload: dict) -> Trace:
    return Trace(times=payload["times"], current=payload["current"],
                 true_current=payload.get("true_current"),
                 channel=payload.get("channel", ""))


def _voltammogram_to_payload(voltammogram: Voltammogram) -> dict:
    return {"times": voltammogram.times.tolist(),
            "potentials": voltammogram.potentials.tolist(),
            "current": voltammogram.current.tolist(),
            "sweep_sign": voltammogram.sweep_sign.tolist(),
            "scan_rate": voltammogram.scan_rate,
            "channel": voltammogram.channel,
            "true_current": _optional(voltammogram.true_current)}


def _voltammogram_from_payload(payload: dict) -> Voltammogram:
    import numpy as np

    true_current = payload.get("true_current")
    return Voltammogram(
        times=np.asarray(payload["times"], dtype=float),
        potentials=np.asarray(payload["potentials"], dtype=float),
        current=np.asarray(payload["current"], dtype=float),
        sweep_sign=np.asarray(payload["sweep_sign"], dtype=float),
        scan_rate=payload["scan_rate"], channel=payload.get("channel", ""),
        true_current=(None if true_current is None
                      else np.asarray(true_current, dtype=float)))


def _readout_to_payload(readout) -> dict:
    peak = readout.peak
    return {"target": readout.target, "we_name": readout.we_name,
            "method": readout.method, "signal": readout.signal,
            "e_applied": readout.e_applied,
            "peak": (None if peak is None else
                     {"potential": peak.potential, "current": peak.current,
                      "height": peak.height, "width": peak.width,
                      "cathodic": peak.cathodic, "method": peak.method})}


def _readout_from_payload(payload: dict):
    from repro.measurement.panel import TargetReadout
    from repro.measurement.peaks import Peak

    peak = payload.get("peak")
    return TargetReadout(
        target=payload["target"], we_name=payload["we_name"],
        method=payload["method"], signal=payload["signal"],
        e_applied=payload.get("e_applied"),
        peak=None if peak is None else Peak(**peak))


def panel_result_to_payload(result) -> dict:
    """Lossless JSON payload of a live :class:`~repro.measurement.panel.
    PanelResult` (raw ``ChannelReading`` attachments excepted)."""
    return {
        "traces": {name: _trace_to_payload(trace)
                   for name, trace in result.traces.items()},
        "voltammograms": {name: _voltammogram_to_payload(vg)
                          for name, vg in result.voltammograms.items()},
        "readouts": {target: _readout_to_payload(readout)
                     for target, readout in result.readouts.items()},
        "assay_time": result.assay_time,
        "blank_current": result.blank_current,
        "blank_e_applied": result.blank_e_applied,
    }


def panel_result_from_payload(payload: dict):
    """Rebuild the live :class:`~repro.measurement.panel.PanelResult` a
    :func:`panel_result_to_payload` payload came from, bit for bit."""
    from repro.measurement.panel import PanelResult

    return PanelResult(
        traces={name: _trace_from_payload(item)
                for name, item in payload["traces"].items()},
        voltammograms={name: _voltammogram_from_payload(item)
                       for name, item in payload["voltammograms"].items()},
        readouts={target: _readout_from_payload(item)
                  for target, item in payload["readouts"].items()},
        assay_time=payload["assay_time"],
        blank_current=payload["blank_current"],
        blank_e_applied=payload.get("blank_e_applied"))


def write_json(payload: object, path: str | Path) -> Path:
    """Write any JSON-serialisable payload, pretty-printed, atomically.

    The payload is serialised up front and staged to a temp file in the
    target directory, then moved into place with ``os.replace`` — so a
    concurrent reader (run-store lookups, parallel workers racing on one
    record) sees either the old file or the complete new one, never a
    truncated write, and a serialisation failure leaves any existing
    file untouched.
    """
    out = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = out.parent / f".{out.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, out)
    finally:
        tmp.unlink(missing_ok=True)
    return out
