"""CSV/JSON export of traces, voltammograms and calibration curves.

Benches drop machine-readable artifacts next to their printed tables so
downstream tooling (plotting, regression tracking) can consume the same
numbers.
"""

from __future__ import annotations

import csv
import json
import os
from pathlib import Path

from repro.analysis.calibration import CalibrationCurve
from repro.measurement.trace import Trace, Voltammogram

__all__ = ["trace_to_csv", "voltammogram_to_csv", "calibration_to_json",
           "run_record_to_json", "write_json"]


def trace_to_csv(trace: Trace, path: str | Path) -> Path:
    """Write a time/current CSV; returns the path."""
    out = Path(path)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = ["time_s", "current_a"]
        if trace.true_current is not None:
            header.append("true_current_a")
        writer.writerow(header)
        for k in range(trace.n_samples):
            row = [f"{trace.times[k]:.6g}", f"{trace.current[k]:.9g}"]
            if trace.true_current is not None:
                row.append(f"{trace.true_current[k]:.9g}")
            writer.writerow(row)
    return out


def voltammogram_to_csv(voltammogram: Voltammogram, path: str | Path) -> Path:
    """Write a time/potential/current CSV; returns the path."""
    out = Path(path)
    with out.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_s", "potential_v", "current_a", "sweep_sign"])
        for k in range(voltammogram.n_samples):
            writer.writerow([
                f"{voltammogram.times[k]:.6g}",
                f"{voltammogram.potentials[k]:.6g}",
                f"{voltammogram.current[k]:.9g}",
                f"{voltammogram.sweep_sign[k]:.0f}",
            ])
    return out


def calibration_to_json(curve: CalibrationCurve, path: str | Path) -> Path:
    """Serialise a calibration curve (points + blank stats) to JSON."""
    payload = {
        "blank_mean": curve.blank_mean,
        "blank_std": curve.blank_std,
        "points": [
            {
                "concentration": p.concentration,
                "signal": p.signal,
                "signal_std": p.signal_std,
            }
            for p in curve.points
        ],
    }
    return write_json(payload, path)


def run_record_to_json(record, path: str | Path) -> Path:
    """Serialise a :mod:`repro.api` run record to JSON.

    The payload is the record's ``to_dict()``: provenance (spec hash,
    schema version, seed, wall time), the canonical spec itself, and the
    quantified result summary — everything needed to audit or replay the
    run.  Raw sample arrays stay on the live result; export those with
    :func:`trace_to_csv` / :func:`voltammogram_to_csv`.
    """
    return write_json(record.to_dict(), path)


def write_json(payload: object, path: str | Path) -> Path:
    """Write any JSON-serialisable payload, pretty-printed, atomically.

    The payload is serialised up front and staged to a temp file in the
    target directory, then moved into place with ``os.replace`` — so a
    concurrent reader (run-store lookups, parallel workers racing on one
    record) sees either the old file or the complete new one, never a
    truncated write, and a serialisation failure leaves any existing
    file untouched.
    """
    out = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = out.parent / f".{out.name}.{os.getpid()}.tmp"
    try:
        tmp.write_text(text)
        os.replace(tmp, out)
    finally:
        tmp.unlink(missing_ok=True)
    return out
