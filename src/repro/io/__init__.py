"""Text tables and data export."""

from repro.io.export import (
    calibration_to_json,
    trace_to_csv,
    voltammogram_to_csv,
    write_json,
)
from repro.io.tables import format_quantity, render_table

__all__ = [
    "render_table", "format_quantity",
    "trace_to_csv", "voltammogram_to_csv", "calibration_to_json",
    "write_json",
]
