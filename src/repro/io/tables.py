"""Plain-text table rendering, paper-style.

Benches print paper-versus-measured tables; reports print design
summaries.  The renderer right-aligns numeric columns, left-aligns text,
and keeps everything ASCII so outputs diff cleanly in CI logs.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["render_table", "format_quantity"]


def format_quantity(value: float | None, unit: str = "",
                    digits: int = 3) -> str:
    """Human-friendly number: engineering-ish formatting, '-' for None."""
    if value is None:
        return "-"
    if value == 0.0:
        text = "0"
    elif abs(value) >= 1.0e4 or abs(value) < 1.0e-3:
        text = f"{value:.{digits}g}"
    else:
        text = f"{value:.{digits}g}"
    return f"{text} {unit}".strip()


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an ASCII table.

    Cells are str()-ed; numeric-looking columns are right-aligned.
    """
    if not headers:
        raise ValueError("table needs at least one column")
    str_rows = [[_cell(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    numeric = [
        all(_looks_numeric(row[k]) for row in str_rows) if str_rows else False
        for k in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    lines.append(sep)
    lines.append("| " + " | ".join(
        h.ljust(widths[k]) for k, h in enumerate(headers)) + " |")
    lines.append(sep)
    for row in str_rows:
        cells = []
        for k, cell in enumerate(row):
            if numeric[k]:
                cells.append(cell.rjust(widths[k]))
            else:
                cells.append(cell.ljust(widths[k]))
        lines.append("| " + " | ".join(cells) + " |")
    lines.append(sep)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format_quantity(value)
    return str(value)


def _looks_numeric(text: str) -> bool:
    if text in ("-", ""):
        return True
    stripped = text.replace("+", "").replace("-", "").replace(".", "")
    stripped = stripped.replace("e", "").replace("E", "")
    return stripped.isdigit()
