"""Enzyme kinetics primitives.

The oxidase and cytochrome films of the paper are modelled with
Michaelis-Menten surface kinetics: an enzyme film of areal turnover capacity
``vmax`` (mol of substrate per m^2 of electrode per second) converts
substrate arriving at surface concentration ``c_surface`` at rate

    v(c) = vmax * c / (km + c)

This module provides the rate law, its inverse problems (which concentration
gives a target rate), competitive inhibition, and the coupled
transport-kinetics steady state used as the fast path for calibration
sweeps: a Nernst diffusion layer of thickness ``delta`` delivers substrate
at ``J = (D/delta) * (c_bulk - c_surface)`` and the film consumes it at
``v(c_surface)``; equating the two yields a quadratic in ``c_surface``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ChemistryError
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "michaelis_menten",
    "michaelis_menten_inverse",
    "competitive_inhibition",
    "MichaelisMentenFilm",
    "steady_state_surface_concentration",
    "steady_state_turnover_flux",
    "linear_range_upper_bound",
]


def michaelis_menten(c, vmax: float, km: float):
    """Michaelis-Menten rate v = vmax*c/(km+c).

    ``c`` may be a scalar or a numpy array (mol/m^3); negative inputs are
    clipped to zero (a concentration cannot be negative; solvers may
    undershoot by rounding).  ``vmax`` is in mol/(m^2 s) for surface films
    or mol/(m^3 s) for volumetric kinetics; ``km`` in mol/m^3.
    """
    ensure_non_negative(vmax, "vmax")
    ensure_positive(km, "km")
    c_arr = np.clip(np.asarray(c, dtype=float), 0.0, None)
    rate = vmax * c_arr / (km + c_arr)
    if np.isscalar(c) or getattr(c, "ndim", 1) == 0:
        return float(rate)
    return rate


def michaelis_menten_inverse(rate: float, vmax: float, km: float) -> float:
    """Concentration at which the film runs at ``rate`` (mol/m^3).

    Raises :class:`~repro.errors.ChemistryError` when ``rate >= vmax``
    (the hyperbola never reaches vmax).
    """
    ensure_non_negative(rate, "rate")
    ensure_positive(vmax, "vmax")
    ensure_positive(km, "km")
    if rate >= vmax:
        raise ChemistryError(
            f"rate {rate!r} is unreachable: Michaelis-Menten saturates at vmax={vmax!r}"
        )
    return km * rate / (vmax - rate)


def competitive_inhibition(c, vmax: float, km: float,
                           inhibitor: float, ki: float):
    """Michaelis-Menten with a competitive inhibitor.

    v = vmax*c / (km*(1 + I/ki) + c).  Used to model interfering
    substrates sharing an enzyme (selectivity analysis).
    """
    ensure_non_negative(inhibitor, "inhibitor")
    ensure_positive(ki, "ki")
    km_apparent = km * (1.0 + inhibitor / ki)
    return michaelis_menten(c, vmax, km_apparent)


@dataclass(frozen=True)
class MichaelisMentenFilm:
    """An immobilised enzyme film characterised by (vmax, km).

    ``vmax`` is the areal maximum turnover, mol/(m^2 s); ``km`` the
    Michaelis constant, mol/m^3.  The film is the kinetic core of both
    oxidase and CYP electrode models.
    """

    vmax: float
    km: float

    def __post_init__(self) -> None:
        ensure_positive(self.vmax, "vmax")
        ensure_positive(self.km, "km")

    def rate(self, c_surface):
        """Turnover rate at surface concentration ``c_surface``, mol/(m^2 s)."""
        return michaelis_menten(c_surface, self.vmax, self.km)

    def scaled(self, factor: float) -> "MichaelisMentenFilm":
        """Return a film with ``vmax`` multiplied by ``factor``.

        Nanostructuring the electrode (CNTs, Sec. III) increases the
        effective enzyme loading and electroactive area, which this models
        as a vmax gain.
        """
        ensure_positive(factor, "factor")
        return MichaelisMentenFilm(vmax=self.vmax * factor, km=self.km)


def steady_state_surface_concentration(
    c_bulk: float, film: MichaelisMentenFilm, mass_transfer: float,
) -> float:
    """Surface concentration where film turnover balances diffusive supply.

    Solves ``m*(cb - cs) = vmax*cs/(km + cs)`` for ``cs`` where
    ``m = D/delta`` is the mass-transfer coefficient (m/s).  The physical
    root of the quadratic

        m*cs^2 + (m*km + vmax - m*cb)*cs - m*km*cb = 0

    is returned (the positive root; the product of roots is negative so
    exactly one root is positive for cb > 0).
    """
    cb = ensure_non_negative(c_bulk, "c_bulk")
    m = ensure_positive(mass_transfer, "mass_transfer")
    if cb == 0.0:
        return 0.0
    b = m * film.km + film.vmax - m * cb
    # a = m, c = -m*km*cb; pick the cancellation-free form per sign of b.
    disc = b * b + 4.0 * m * m * film.km * cb
    sqrt_disc = math.sqrt(disc)
    if b > 0.0:
        # (-b + sqrt) cancels; multiply by the conjugate instead.
        root = 2.0 * m * film.km * cb / (b + sqrt_disc)
    else:
        root = (-b + sqrt_disc) / (2.0 * m)
    # Rounding can leave a tiny negative number for cb -> 0, and denormal
    # inputs can round a hair above cb; the physical root lies in [0, cb].
    return min(max(root, 0.0), cb)


def steady_state_turnover_flux(
    c_bulk: float, film: MichaelisMentenFilm, mass_transfer: float,
) -> float:
    """Steady-state substrate turnover flux, mol/(m^2 s).

    This is the flux of product (H2O2 for oxidases) generated per unit
    electrode area once supply and consumption balance; the electrode
    current follows as ``i = n * F * A * eta * flux``.
    """
    cs = steady_state_surface_concentration(c_bulk, film, mass_transfer)
    return film.rate(cs)


def linear_range_upper_bound(
    film: MichaelisMentenFilm, mass_transfer: float,
    non_linearity: float = 0.05,
) -> float:
    """Estimate the bulk concentration where the calibration bends.

    The response is linear while the film is far from saturation; the
    deviation of v(c) from its initial slope reaches the fraction
    ``non_linearity`` roughly at ``c_surface = 2*nl*km_eff / (1-2*nl)``
    with ``km_eff`` the transport-corrected Michaelis constant
    ``km*(1 + vmax/(m*km))``.  This closed form seeds the numeric
    linear-range search in :mod:`repro.analysis.calibration`.
    """
    ensure_positive(non_linearity, "non_linearity")
    if non_linearity >= 0.5:
        raise ChemistryError("non_linearity must be < 0.5 for a finite bound")
    m = ensure_positive(mass_transfer, "mass_transfer")
    km_eff = film.km * (1.0 + film.vmax / (m * film.km))
    return 2.0 * non_linearity * km_eff / (1.0 - 2.0 * non_linearity)
