"""Physical constants and default parameters for electrochemical models.

All constants are in SI units.  ``F_OVER_RT`` is the frequently used
``f = F / (R*T)`` factor of the Nernst and Butler-Volmer equations at the
default cell temperature (298.15 K); models that accept a temperature
recompute it.
"""

from __future__ import annotations

import math

__all__ = [
    "FARADAY",
    "GAS_CONSTANT",
    "BOLTZMANN",
    "STANDARD_TEMPERATURE",
    "F_OVER_RT",
    "f_over_rt",
    "thermal_voltage",
    "DIFFUSIVITY_GLUCOSE",
    "DIFFUSIVITY_LACTATE",
    "DIFFUSIVITY_GLUTAMATE",
    "DIFFUSIVITY_CHOLESTEROL",
    "DIFFUSIVITY_H2O2",
    "DIFFUSIVITY_O2",
    "DIFFUSIVITY_DRUG_SMALL",
    "DIFFUSIVITY_DEFAULT",
    "NERNST_LAYER_QUIESCENT",
    "DOUBLE_LAYER_CAPACITANCE",
    "ELECTRONS_PER_H2O2",
    "ELECTRONS_PER_CYP_TURNOVER",
    "REVERSIBLE_PEAK_OFFSET",
    "RANDLES_SEVCIK_COEFFICIENT",
]

#: Faraday constant, C/mol.
FARADAY = 96485.33212

#: Molar gas constant, J/(mol*K).
GAS_CONSTANT = 8.31446261815324

#: Boltzmann constant, J/K (used by thermal-noise models).
BOLTZMANN = 1.380649e-23

#: Default electrochemical cell temperature, K (25 C).
STANDARD_TEMPERATURE = 298.15

#: f = F/(R*T) at the standard temperature, 1/V.
F_OVER_RT = FARADAY / (GAS_CONSTANT * STANDARD_TEMPERATURE)


def f_over_rt(temperature_k: float = STANDARD_TEMPERATURE) -> float:
    """Return f = F/(R*T) in 1/V at the given temperature in kelvin."""
    if temperature_k <= 0.0 or not math.isfinite(temperature_k):
        raise ValueError(f"temperature must be positive kelvin, got {temperature_k!r}")
    return FARADAY / (GAS_CONSTANT * temperature_k)


def thermal_voltage(temperature_k: float = STANDARD_TEMPERATURE) -> float:
    """Return RT/F in volts (about 25.7 mV at 25 C)."""
    return 1.0 / f_over_rt(temperature_k)


# ---------------------------------------------------------------------------
# Aqueous diffusion coefficients at 25 C, m^2/s.  Literature magnitudes for
# small molecules in water; used as species defaults (each Species may
# override).
# ---------------------------------------------------------------------------

#: Glucose in water, m^2/s.
DIFFUSIVITY_GLUCOSE = 6.7e-10

#: Lactate in water, m^2/s.
DIFFUSIVITY_LACTATE = 1.0e-9

#: Glutamate in water, m^2/s.
DIFFUSIVITY_GLUTAMATE = 7.6e-10

#: Cholesterol (carried in micelles), m^2/s; much slower than free solutes.
DIFFUSIVITY_CHOLESTEROL = 2.5e-10

#: Hydrogen peroxide in water, m^2/s.  The paper notes the H2O2 diffusion
#: coefficient is "really low" in the sensing membranes, which is what keeps
#: inter-electrode cross-talk negligible; the cross-talk model accounts for
#: the membrane separately.
DIFFUSIVITY_H2O2 = 1.4e-9

#: Molecular oxygen in water, m^2/s.
DIFFUSIVITY_O2 = 2.1e-9

#: Generic small drug molecule in water, m^2/s.
DIFFUSIVITY_DRUG_SMALL = 5.0e-10

#: Fallback when a species has no tabulated diffusivity, m^2/s.
DIFFUSIVITY_DEFAULT = 6.0e-10

# ---------------------------------------------------------------------------
# Cell and electrode defaults.
# ---------------------------------------------------------------------------

#: Effective Nernst diffusion-layer thickness of a quiescent (unstirred)
#: batch cell, m.  Chosen so a macro (screen-printed) glucose electrode
#: settles in about 30 s, reproducing paper Fig. 3: the slowest diffusion
#: mode across delta has tau = 4*delta^2/(pi^2*D); with
#: D(glucose) = 6.7e-10 m^2/s and delta = 150 um, t90 = tau*ln(8.1) ~ 29 s.
#: Microelectrodes see a thinner effective layer (min with pi*r/4) and are
#: faster — the paper's Sec. III scaling argument.
NERNST_LAYER_QUIESCENT = 1.5e-4

#: Specific double-layer capacitance of a flat metal/solution interface,
#: F/m^2 (20 uF/cm^2, textbook magnitude).  Background charging current
#: i = Cdl*A*dE/dt scales with electrode area, which is the paper's
#: motivation for scaling electrodes down (Sec. III).
DOUBLE_LAYER_CAPACITANCE = 0.20

#: Electrons collected per H2O2 molecule oxidised at the working electrode.
#: Paper reaction (3): 2 H2O2 -> 2 H2O + O2 + 4 e-, i.e. 2 e- per H2O2.
ELECTRONS_PER_H2O2 = 2

#: Electrons per CYP catalytic turnover.  Paper reaction (4):
#: substrate + O2 + 2 H+ + 2 e- -> product + H2O.
ELECTRONS_PER_CYP_TURNOVER = 2

#: Peak-to-half-wave offset of a reversible voltammetric wave,
#: |Ep - E1/2| = 1.109 * RT/(nF) (about 28.5/n mV at 25 C).
REVERSIBLE_PEAK_OFFSET = 1.109

#: Dimensionless Randles-Sevcik peak-current coefficient for a reversible
#: wave: ip = 0.4463 * n*F*A*C * sqrt(n*F*v*D/(R*T)).
RANDLES_SEVCIK_COEFFICIENT = 0.4463
