"""Bulk solutions, measurement chambers, and injection schedules.

The paper's measurements happen in a batch cell: a chamber holds a buffered
sample, analyte aliquots are injected over time (Fig. 3 shows the response
to one glucose injection), and the electrodes see the resulting bulk
concentrations.  Chambers are well stirred at injection time, so an
injection updates the bulk concentration instantaneously and the diffusion
layer at each electrode then re-equilibrates — that re-equilibration *is*
the measured transient.

Multiple chambers isolate reactions from one another (paper Sec. II:
"when the electrochemical reactions must be kept separated, each sensor in
an array must have its own chamber").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.species import get_species
from repro.errors import ChemistryError, ProtocolError
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "Injection",
    "InjectionSchedule",
    "Chamber",
]


@dataclass(frozen=True)
class Injection:
    """One analyte addition: at ``time`` the bulk of ``species`` rises.

    ``concentration_step`` is the *increase* of bulk concentration in
    mol/m^3 (== mM) after mixing, not the aliquot's own concentration;
    the library works at the level the sensor sees.
    """

    time: float
    species: str
    concentration_step: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.time, "time")
        get_species(self.species)
        ensure_positive(self.concentration_step, "concentration_step")


@dataclass(frozen=True)
class InjectionSchedule:
    """A time-ordered sequence of injections."""

    injections: tuple[Injection, ...] = ()

    def __post_init__(self) -> None:
        times = [inj.time for inj in self.injections]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ProtocolError("injections must be ordered by time")

    @classmethod
    def single(cls, time: float, species: str,
               concentration_step: float) -> "InjectionSchedule":
        """One injection — the Fig. 3 protocol."""
        return cls((Injection(time, species, concentration_step),))

    @classmethod
    def staircase(cls, species: str, step: float, n_steps: int,
                  interval: float, start: float = 0.0) -> "InjectionSchedule":
        """Equal additions at regular intervals — a calibration staircase."""
        ensure_positive(interval, "interval")
        if n_steps < 1:
            raise ProtocolError("staircase needs at least one step")
        injections = tuple(
            Injection(start + k * interval, species, step)
            for k in range(n_steps)
        )
        return cls(injections)

    @property
    def duration_hint(self) -> float:
        """Time of the last injection (protocols add settling time)."""
        if not self.injections:
            return 0.0
        return self.injections[-1].time

    def species_names(self) -> tuple[str, ...]:
        """Distinct species injected, in first-appearance order."""
        seen: list[str] = []
        for inj in self.injections:
            if inj.species not in seen:
                seen.append(inj.species)
        return tuple(seen)

    def events_between(self, t_start: float, t_end: float,
                       ) -> tuple[Injection, ...]:
        """Injections with t_start < time <= t_end (simulation stepping)."""
        return tuple(inj for inj in self.injections
                     if t_start < inj.time <= t_end)

    def final_concentration(self, species: str) -> float:
        """Total bulk concentration of ``species`` after all injections."""
        return sum(inj.concentration_step for inj in self.injections
                   if inj.species == species)


class Chamber:
    """A well-stirred measurement chamber holding bulk concentrations.

    Parameters
    ----------
    name:
        Identifier used in platform layouts and reports.
    volume:
        Chamber volume in m^3.  Only used for consumption bookkeeping —
        batch measurements deplete so little analyte that bulk values stay
        constant between injections, but the accounting is exposed for
        long-term monitoring scenarios.
    """

    def __init__(self, name: str = "chamber", volume: float = 1.0e-7) -> None:
        if not name:
            raise ChemistryError("chamber name must be non-empty")
        self.name = name
        self.volume = ensure_positive(volume, "volume")
        self._bulk: dict[str, float] = {}

    def __repr__(self) -> str:
        inside = ", ".join(f"{k}={v:.3g}" for k, v in sorted(self._bulk.items()))
        return f"Chamber({self.name!r}, {{{inside}}})"

    def set_bulk(self, species: str, concentration: float) -> None:
        """Set the bulk concentration of ``species``, mol/m^3."""
        get_species(species)
        self._bulk[species] = ensure_non_negative(concentration, "concentration")

    def bulk(self, species: str) -> float:
        """Bulk concentration of ``species``, mol/m^3 (0 when absent)."""
        get_species(species)
        return self._bulk.get(species, 0.0)

    def species_present(self) -> tuple[str, ...]:
        """Names of species with non-zero bulk concentration, sorted."""
        return tuple(sorted(k for k, v in self._bulk.items() if v > 0.0))

    def inject(self, injection: Injection) -> None:
        """Apply one injection (instantaneous stirred mixing)."""
        current = self._bulk.get(injection.species, 0.0)
        self._bulk[injection.species] = current + injection.concentration_step

    def consume(self, species: str, moles: float) -> None:
        """Remove ``moles`` of ``species`` from the chamber (electrolysis).

        Clamps at zero; batch cells are never driven negative.
        """
        ensure_non_negative(moles, "moles")
        current = self._bulk.get(species, 0.0)
        delta = moles / self.volume
        self._bulk[species] = max(current - delta, 0.0)

    def copy(self) -> "Chamber":
        """Independent copy (protocols never mutate a caller's chamber)."""
        out = Chamber(self.name, self.volume)
        out._bulk = dict(self._bulk)
        return out
