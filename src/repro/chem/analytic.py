"""Closed-form electrochemical reference solutions.

These textbook results serve two purposes: they are the fast analytic path
for design-space exploration (where thousands of candidate platforms are
scored), and they validate the numerical solvers (property tests compare
the Crank-Nicolson output against them).

- **Cottrell equation** — current after a potential step to a
  diffusion-limited regime.
- **Randles-Sevcik equation** — peak current of a reversible voltammetric
  wave (the CYP quantification law: peak height proportional to
  concentration and sqrt(scan rate)).
- **Reversible peak position/width** — what makes CV an "electrochemical
  signature" (paper Sec. I-B): peak potential tracks the formal potential.
- **Microelectrode steady state** — why scaling electrodes down shortens
  measurements (paper Sec. III).
"""

from __future__ import annotations

import math

from repro.chem import constants as C
from repro.errors import ChemistryError
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "cottrell_current",
    "cottrell_charge",
    "randles_sevcik_peak_current",
    "reversible_peak_potential",
    "reversible_half_peak_width",
    "microdisk_steady_state_current",
    "microdisk_response_time",
    "planar_response_time",
    "mass_transfer_coefficient",
    "diffusion_limited_current",
]


def cottrell_current(n: int, area: float, c_bulk: float, diffusivity: float,
                     t: float) -> float:
    """Cottrell current i(t) = n F A C sqrt(D / (pi t)), amperes.

    Valid for a planar electrode after a step to a potential where the
    surface concentration is driven to zero.
    """
    _check_nac(n, area, c_bulk)
    ensure_positive(diffusivity, "diffusivity")
    ensure_positive(t, "t")
    return n * C.FARADAY * area * c_bulk * math.sqrt(diffusivity / (math.pi * t))


def cottrell_charge(n: int, area: float, c_bulk: float, diffusivity: float,
                    t: float) -> float:
    """Charge passed up to time t under Cottrell decay, coulombs.

    Q(t) = 2 n F A C sqrt(D t / pi) — the integral of the Cottrell current.
    """
    _check_nac(n, area, c_bulk)
    ensure_positive(diffusivity, "diffusivity")
    ensure_non_negative(t, "t")
    return 2.0 * n * C.FARADAY * area * c_bulk * math.sqrt(diffusivity * t / math.pi)


def randles_sevcik_peak_current(n: int, area: float, c_bulk: float,
                                diffusivity: float, scan_rate: float,
                                temperature_k: float = C.STANDARD_TEMPERATURE,
                                ) -> float:
    """Reversible voltammetric peak current, amperes.

    ip = 0.4463 n F A C sqrt(n F v D / (R T)).  The linearity of ip in C is
    what lets CYP sensors quantify drugs from peak height (Sec. I-B).
    """
    _check_nac(n, area, c_bulk)
    ensure_positive(diffusivity, "diffusivity")
    ensure_positive(scan_rate, "scan_rate")
    f = C.f_over_rt(temperature_k)
    return (C.RANDLES_SEVCIK_COEFFICIENT * n * C.FARADAY * area * c_bulk
            * math.sqrt(n * f * scan_rate * diffusivity))


def reversible_peak_potential(e_formal: float, n: int, cathodic: bool = True,
                              temperature_k: float = C.STANDARD_TEMPERATURE,
                              ) -> float:
    """Peak potential of a reversible wave, volts.

    The cathodic (reduction) peak sits ``1.109 RT/nF`` (about 28.5/n mV)
    **below** the formal potential; the anodic peak the same amount above.
    The peak positions in Table II are read off this way.
    """
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    offset = C.REVERSIBLE_PEAK_OFFSET / (n * C.f_over_rt(temperature_k))
    return e_formal - offset if cathodic else e_formal + offset


def reversible_half_peak_width(n: int,
                               temperature_k: float = C.STANDARD_TEMPERATURE,
                               ) -> float:
    """Potential distance from peak to half-peak, |Ep - Ep/2| = 2.20 RT/nF.

    About 56.5/n mV at 25 C; twice this is a practical full width.  The
    design rule for putting two targets on one CYP electrode (paper
    Sec. III: benzphetamine + aminopyrine on CYP2B4) requires their formal
    potentials to differ by more than roughly the sum of their half-widths.
    """
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    return 2.20 / (n * C.f_over_rt(temperature_k))


def microdisk_steady_state_current(n: int, radius: float, c_bulk: float,
                                   diffusivity: float) -> float:
    """Steady-state current of an inlaid microdisk, i = 4 n F D C r."""
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    ensure_positive(radius, "radius")
    ensure_non_negative(c_bulk, "c_bulk")
    ensure_positive(diffusivity, "diffusivity")
    return 4.0 * n * C.FARADAY * diffusivity * c_bulk * radius


def microdisk_response_time(radius: float, diffusivity: float) -> float:
    """Time for a microdisk to approach its steady state, ~ r^2 / D.

    The r^2 scaling is the quantitative form of the paper's claim that
    microelectrodes enable "much shorter measurements" (Sec. III).
    """
    ensure_positive(radius, "radius")
    ensure_positive(diffusivity, "diffusivity")
    return radius * radius / diffusivity


def planar_response_time(nernst_layer: float, diffusivity: float,
                         settle_fraction: float = 0.9) -> float:
    """Time for a planar electrode to reach ``settle_fraction`` of steady state.

    For diffusion across a Nernst layer of thickness delta the slowest
    relaxation mode has time constant ``tau = 4 delta^2 / (pi^2 D)``; the
    90 % settling time is about ``tau * ln(10 * 8/pi^2)`` (first-mode
    approximation, validated against the numeric solver in tests).
    """
    ensure_positive(nernst_layer, "nernst_layer")
    ensure_positive(diffusivity, "diffusivity")
    if not 0.0 < settle_fraction < 1.0:
        raise ChemistryError(
            f"settle_fraction must be in (0, 1), got {settle_fraction!r}")
    tau = 4.0 * nernst_layer * nernst_layer / (math.pi * math.pi * diffusivity)
    # Residual of the first Fourier mode: (8/pi^2) exp(-t/tau).
    amplitude = 8.0 / (math.pi * math.pi)
    return tau * math.log(amplitude / (1.0 - settle_fraction))


def mass_transfer_coefficient(diffusivity: float, nernst_layer: float) -> float:
    """Steady-state mass-transfer coefficient m = D / delta, m/s."""
    ensure_positive(diffusivity, "diffusivity")
    ensure_positive(nernst_layer, "nernst_layer")
    return diffusivity / nernst_layer


def diffusion_limited_current(n: int, area: float, c_bulk: float,
                              diffusivity: float, nernst_layer: float) -> float:
    """Transport-limited steady current, i = n F A (D/delta) C, amperes.

    This is the ceiling of any amperometric sensor's sensitivity: the
    enzyme film cannot consume substrate faster than diffusion delivers it.
    Table III's cholesterol/CYP11A1 sensitivity (112 uA/(mM cm^2)) sits
    essentially at this ceiling; the others below it.
    """
    _check_nac(n, area, c_bulk)
    m = mass_transfer_coefficient(diffusivity, nernst_layer)
    return n * C.FARADAY * area * m * c_bulk


def _check_nac(n: int, area: float, c_bulk: float) -> None:
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    ensure_positive(area, "area")
    ensure_non_negative(c_bulk, "c_bulk")
