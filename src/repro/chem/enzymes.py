"""Enzyme probe models: oxidases and cytochromes P450.

The paper's two probe families (Sec. I-B) map to two classes:

- :class:`Oxidase` — FAD/FMN-mediated catalysis producing H2O2
  (reactions (1)-(2)), detected by **chronoamperometry**: the H2O2 is
  oxidised at the working electrode (reaction (3), 2 e- per H2O2) at a
  fixed applied potential.  Each oxidase wraps a Michaelis-Menten film and
  the sigmoidal H2O2-collection wave whose saturation point is Table I's
  "applied potential".
- :class:`CytochromeP450` — heme-mediated direct electron transfer
  (reaction (4)), detected by **cyclic voltammetry**: each substrate the
  isoform metabolises shows a reduction peak at its own potential
  (Table II), so one electrode can sense several drugs.

Both classes are pure chemistry: electrode area, materials and electronics
live in :mod:`repro.sensors` and :mod:`repro.electronics`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.chem import constants as C
from repro.chem.kinetics import MichaelisMentenFilm
from repro.chem.redox import ButlerVolmerKinetics, OxidationEfficiency, RedoxCouple
from repro.chem.species import Species, get_species
from repro.errors import ChemistryError
from repro.units import ensure_positive

__all__ = [
    "ProstheticGroup",
    "Enzyme",
    "Oxidase",
    "CypSubstrateChannel",
    "CytochromeP450",
]


class ProstheticGroup(enum.Enum):
    """The redox-active group wired to the electrode (paper Sec. I-B)."""

    #: Flavin adenine dinucleotide — glucose, glutamate, cholesterol oxidase.
    FAD = "FAD"
    #: Flavin mononucleotide — lactate oxidase.
    FMN = "FMN"
    #: Heme — all cytochromes P450.
    HEME = "heme"


@dataclass(frozen=True)
class Enzyme:
    """Base class: a named protein probe with a prosthetic group."""

    name: str
    display_name: str
    prosthetic_group: ProstheticGroup

    def __post_init__(self) -> None:
        if not self.name:
            raise ChemistryError("enzyme name must be non-empty")


@dataclass(frozen=True)
class Oxidase(Enzyme):
    """An oxidase probe for one endogenous metabolite.

    Parameters
    ----------
    substrate:
        Registry name of the target metabolite.
    film:
        Michaelis-Menten kinetics of the immobilised film
        (vmax in mol/(m^2 s), km in mol/m^3).
    h2o2_wave:
        Sigmoidal collection-efficiency wave of the produced H2O2; its
        95 %-saturation potential reproduces Table I's applied potential.
    electrons_per_substrate:
        Electrons collected per substrate turnover.  One H2O2 per
        substrate (reaction (1)-(2)) and 2 e- per H2O2 (reaction (3))
        gives the default of 2.
    """

    substrate: str = ""
    film: MichaelisMentenFilm = field(
        default_factory=lambda: MichaelisMentenFilm(vmax=1.0e-6, km=10.0))
    h2o2_wave: OxidationEfficiency = field(
        default_factory=lambda: OxidationEfficiency(e_half=0.45))
    electrons_per_substrate: int = C.ELECTRONS_PER_H2O2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.prosthetic_group is ProstheticGroup.HEME:
            raise ChemistryError(
                f"oxidase {self.name!r} cannot have a heme prosthetic group")
        if not self.substrate:
            raise ChemistryError(f"oxidase {self.name!r} needs a substrate")
        get_species(self.substrate)  # validate eagerly
        if self.electrons_per_substrate < 1:
            raise ChemistryError("electrons_per_substrate must be >= 1")

    @property
    def substrate_species(self) -> Species:
        """The target metabolite as a :class:`Species`."""
        return get_species(self.substrate)

    def turnover_flux(self, c_surface: float) -> float:
        """Substrate (= H2O2 production) flux at the film, mol/(m^2 s)."""
        return self.film.rate(c_surface)

    def collection_efficiency(self, e_applied: float) -> float:
        """Fraction of produced H2O2 oxidised at potential ``e_applied``."""
        return self.h2o2_wave.at(e_applied)

    def faradaic_yield(self, e_applied: float) -> float:
        """Electrons collected per substrate turnover at ``e_applied``.

        ``electrons_per_substrate * eta(E)`` — multiply by F and the
        turnover flux for the current density.
        """
        return self.electrons_per_substrate * self.collection_efficiency(e_applied)

    def recommended_potential(self, saturation: float = 0.95) -> float:
        """Smallest applied potential with ``saturation`` of full signal.

        This is the model-side definition of Table I's applied-potential
        column; the T1 bench *measures* the same point from simulated
        chronoamperometry sweeps.
        """
        return self.h2o2_wave.potential_for_efficiency(saturation)

    def with_film(self, film: MichaelisMentenFilm) -> "Oxidase":
        """Return a copy with different film kinetics (nanostructuring)."""
        return Oxidase(
            name=self.name, display_name=self.display_name,
            prosthetic_group=self.prosthetic_group, substrate=self.substrate,
            film=film, h2o2_wave=self.h2o2_wave,
            electrons_per_substrate=self.electrons_per_substrate,
        )


@dataclass(frozen=True)
class CypSubstrateChannel:
    """One drug a CYP isoform can sense: kinetics + signature potential.

    ``kinetics`` wraps the redox couple whose formal potential is the
    Table II reduction potential; ``efficiency`` scales the electroactive
    fraction of the drug actually coupled to the electrode (rhodium-
    graphite electrodes in [16] have low efficiency, hence benzphetamine's
    0.28 uA/(mM cm^2) sensitivity).  Values slightly above 1 model
    porous-film preconcentration: nanostructured (CNT) films trap analyte
    in a thin-layer regime and can exceed the flat-electrode
    Randles-Sevcik ceiling, as the cholesterol sensor of ref. [15] does.
    """

    substrate: str
    kinetics: ButlerVolmerKinetics
    efficiency: float = 1.0
    km: float = 5.0  # mol/m^3; saturation of the catalytic response

    def __post_init__(self) -> None:
        get_species(self.substrate)
        if not 0.0 < self.efficiency <= 2.0:
            raise ChemistryError(
                f"channel {self.substrate!r}: efficiency must be in (0, 2] "
                f"(above 1 only for porous-film preconcentration)")
        ensure_positive(self.km, "km")

    @property
    def reduction_potential(self) -> float:
        """Formal (signature) potential, V vs Ag/AgCl (Table II)."""
        return self.kinetics.couple.e_formal


@dataclass(frozen=True)
class CytochromeP450(Enzyme):
    """A CYP isoform probe able to sense one or more drugs.

    The ``channels`` tuple lists every substrate the isoform senses with
    its own reduction potential; CYP2B4 carries both benzphetamine
    (-250 mV) and aminopyrine (-400 mV), which is how one electrode
    resolves two drugs by peak position (paper Sec. III).
    """

    channels: tuple[CypSubstrateChannel, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.prosthetic_group is not ProstheticGroup.HEME:
            raise ChemistryError(
                f"cytochrome {self.name!r} must have a heme prosthetic group")
        if not self.channels:
            raise ChemistryError(
                f"cytochrome {self.name!r} needs at least one substrate channel")
        names = [ch.substrate for ch in self.channels]
        if len(set(names)) != len(names):
            raise ChemistryError(
                f"cytochrome {self.name!r} lists a substrate twice")

    @property
    def substrates(self) -> tuple[str, ...]:
        """Registry names of every drug this isoform senses."""
        return tuple(ch.substrate for ch in self.channels)

    def channel_for(self, substrate: str) -> CypSubstrateChannel:
        """The sensing channel for ``substrate``.

        Raises :class:`~repro.errors.ChemistryError` when the isoform does
        not metabolise that drug.
        """
        for ch in self.channels:
            if ch.substrate == substrate:
                return ch
        raise ChemistryError(
            f"cytochrome {self.name!r} does not sense {substrate!r} "
            f"(senses: {', '.join(self.substrates)})")

    def peak_separation(self) -> float:
        """Smallest potential gap between any two channels, volts.

        Infinite for single-substrate isoforms.  Feeds the design rule
        that decides whether several drugs can share the electrode.
        """
        potentials = sorted(ch.reduction_potential for ch in self.channels)
        if len(potentials) < 2:
            return float("inf")
        gaps = [b - a for a, b in zip(potentials, potentials[1:])]
        return min(gaps)

    def couples(self) -> tuple[RedoxCouple, ...]:
        """All redox couples, one per channel."""
        return tuple(ch.kinetics.couple for ch in self.channels)
