"""Electrochemistry substrate: species, kinetics, redox laws, diffusion.

This subpackage is the physics the rest of the library stands on.  It is
deliberately independent of sensors and electronics — everything here is
solution-side chemistry and numerics.
"""

from repro.chem.analytic import (
    cottrell_current,
    diffusion_limited_current,
    mass_transfer_coefficient,
    microdisk_response_time,
    microdisk_steady_state_current,
    planar_response_time,
    randles_sevcik_peak_current,
    reversible_half_peak_width,
    reversible_peak_potential,
)
from repro.chem.constants import (
    DOUBLE_LAYER_CAPACITANCE,
    ELECTRONS_PER_CYP_TURNOVER,
    ELECTRONS_PER_H2O2,
    FARADAY,
    F_OVER_RT,
    GAS_CONSTANT,
    NERNST_LAYER_QUIESCENT,
    STANDARD_TEMPERATURE,
    f_over_rt,
    thermal_voltage,
)
from repro.chem.diffusion import (
    CrankNicolsonDiffusion,
    Grid1D,
    default_domain_length,
    thomas_solve,
)
from repro.chem.enzymes import (
    CypSubstrateChannel,
    CytochromeP450,
    Enzyme,
    Oxidase,
    ProstheticGroup,
)
from repro.chem.kinetics import (
    MichaelisMentenFilm,
    competitive_inhibition,
    linear_range_upper_bound,
    michaelis_menten,
    michaelis_menten_inverse,
    steady_state_surface_concentration,
    steady_state_turnover_flux,
)
from repro.chem.redox import (
    ButlerVolmerKinetics,
    OxidationEfficiency,
    RedoxCouple,
    butler_volmer_current_density,
    nernst_potential,
    nernst_ratio,
)
from repro.chem.solution import Chamber, Injection, InjectionSchedule
from repro.chem.species import (
    ENDOGENOUS_METABOLITES,
    EXOGENOUS_DRUGS,
    Species,
    get_species,
    has_species,
    register_species,
    species_names,
)

__all__ = [
    # constants
    "FARADAY", "GAS_CONSTANT", "STANDARD_TEMPERATURE", "F_OVER_RT",
    "NERNST_LAYER_QUIESCENT", "DOUBLE_LAYER_CAPACITANCE",
    "ELECTRONS_PER_H2O2", "ELECTRONS_PER_CYP_TURNOVER",
    "f_over_rt", "thermal_voltage",
    # species
    "Species", "get_species", "has_species", "register_species",
    "species_names", "ENDOGENOUS_METABOLITES", "EXOGENOUS_DRUGS",
    # kinetics
    "MichaelisMentenFilm", "michaelis_menten", "michaelis_menten_inverse",
    "competitive_inhibition", "steady_state_surface_concentration",
    "steady_state_turnover_flux", "linear_range_upper_bound",
    # redox
    "RedoxCouple", "OxidationEfficiency", "ButlerVolmerKinetics",
    "nernst_potential", "nernst_ratio", "butler_volmer_current_density",
    # enzymes
    "ProstheticGroup", "Enzyme", "Oxidase", "CytochromeP450",
    "CypSubstrateChannel",
    # diffusion
    "Grid1D", "CrankNicolsonDiffusion", "thomas_solve",
    "default_domain_length",
    # analytic
    "cottrell_current", "randles_sevcik_peak_current",
    "reversible_peak_potential", "reversible_half_peak_width",
    "microdisk_steady_state_current", "microdisk_response_time",
    "planar_response_time", "mass_transfer_coefficient",
    "diffusion_limited_current",
    # solution
    "Chamber", "Injection", "InjectionSchedule",
]
