"""Chemical species and the global species registry.

Every molecule that appears in the paper is modelled as a :class:`Species`
carrying the properties the simulator needs: an aqueous diffusion
coefficient, the number of electrons it exchanges when electroactive, and —
for the correlated-double-sampling caveat of Sec. II-C — whether it oxidises
**directly** on a bare electrode (dopamine and etoposide do, which defeats a
blank working electrode as a CDS reference).

The registry is a plain module-level dictionary; :func:`get_species` raises
:class:`~repro.errors.UnknownSpeciesError` with the list of known names so
typos fail usefully.  User code may register additional species with
:func:`register_species`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.chem import constants as C
from repro.errors import ChemistryError, UnknownSpeciesError
from repro.units import ensure_positive

__all__ = [
    "Species",
    "register_species",
    "get_species",
    "has_species",
    "species_names",
    "ENDOGENOUS_METABOLITES",
    "EXOGENOUS_DRUGS",
]


@dataclass(frozen=True)
class Species:
    """An electroactive or inert solute.

    Parameters
    ----------
    name:
        Registry key, lowercase snake-case (e.g. ``"glucose"``).
    display_name:
        Human-readable name used in tables and reports.
    diffusivity:
        Aqueous diffusion coefficient, m^2/s.
    kind:
        Free-form category: ``"metabolite"``, ``"drug"``,
        ``"neurotransmitter"``, ``"reactive"`` (H2O2, O2), ...
    charge:
        Ionic charge at physiological pH (used only for reporting).
    n_electrons:
        Electrons exchanged per molecule in its electrode reaction, when
        electroactive.
    direct_oxidation_potential:
        If the molecule oxidises on a **bare** (enzyme-free) electrode, the
        potential (V vs Ag/AgCl) above which it does; ``None`` for molecules
        that need an enzyme probe.  The paper names dopamine and etoposide
        as direct oxidisers, which invalidates the blank-WE CDS scheme.
    molar_mass:
        g/mol, for reporting.
    description:
        One-line description (mirrors the paper's table prose).
    """

    name: str
    display_name: str
    diffusivity: float
    kind: str = "metabolite"
    charge: int = 0
    n_electrons: int = 1
    direct_oxidation_potential: float | None = None
    molar_mass: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ChemistryError("species name must be non-empty")
        ensure_positive(self.diffusivity, f"diffusivity of {self.name}")
        if self.n_electrons < 1:
            raise ChemistryError(
                f"species {self.name!r}: n_electrons must be >= 1, "
                f"got {self.n_electrons}"
            )

    @property
    def is_direct_oxidizer(self) -> bool:
        """True when the molecule oxidises on a bare electrode (CDS caveat)."""
        return self.direct_oxidation_potential is not None

    def with_diffusivity(self, diffusivity: float) -> "Species":
        """Return a copy with a different diffusion coefficient.

        Useful to model transport through membranes or gels where the
        effective diffusivity is lower than in free solution.
        """
        return replace(self, diffusivity=ensure_positive(diffusivity, "diffusivity"))


_REGISTRY: dict[str, Species] = {}


def register_species(species: Species, overwrite: bool = False) -> Species:
    """Add a species to the registry and return it.

    Raises :class:`~repro.errors.ChemistryError` when the name is already
    taken and ``overwrite`` is false.
    """
    if species.name in _REGISTRY and not overwrite:
        raise ChemistryError(
            f"species {species.name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REGISTRY[species.name] = species
    return species


def get_species(name: str) -> Species:
    """Look up a species by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownSpeciesError(name, tuple(_REGISTRY)) from None


def has_species(name: str) -> bool:
    """Return True when ``name`` is registered."""
    return name in _REGISTRY


def species_names() -> tuple[str, ...]:
    """Return all registered species names, sorted."""
    return tuple(sorted(_REGISTRY))


# ---------------------------------------------------------------------------
# Built-in species: every molecule named in the paper.
# ---------------------------------------------------------------------------

# Endogenous metabolites (Sec. I-A, Table I).
register_species(Species(
    name="glucose",
    display_name="Glucose",
    diffusivity=C.DIFFUSIVITY_GLUCOSE,
    kind="metabolite",
    molar_mass=180.16,
    description="Metabolic compound as energy source; diabetes marker",
))
register_species(Species(
    name="lactate",
    display_name="Lactate",
    diffusivity=C.DIFFUSIVITY_LACTATE,
    kind="metabolite",
    charge=-1,
    molar_mass=90.08,
    description="Metabolic compound as marker of cell suffering",
))
register_species(Species(
    name="glutamate",
    display_name="Glutamate",
    diffusivity=C.DIFFUSIVITY_GLUTAMATE,
    kind="neurotransmitter",
    charge=-1,
    molar_mass=147.13,
    description="Excitatory neurotransmitter",
))
register_species(Species(
    name="cholesterol",
    display_name="Cholesterol",
    diffusivity=C.DIFFUSIVITY_CHOLESTEROL,
    kind="metabolite",
    molar_mass=386.65,
    description="Establishes proper membrane permeability and fluidity",
))

# Reaction intermediates (Sec. I-B).
register_species(Species(
    name="h2o2",
    display_name="Hydrogen peroxide",
    diffusivity=C.DIFFUSIVITY_H2O2,
    kind="reactive",
    n_electrons=C.ELECTRONS_PER_H2O2,
    molar_mass=34.01,
    description="Common oxidase product, oxidised at the WE (reaction 3)",
))
register_species(Species(
    name="o2",
    display_name="Oxygen",
    diffusivity=C.DIFFUSIVITY_O2,
    kind="reactive",
    n_electrons=4,
    molar_mass=32.00,
    description="Electron acceptor of the oxidase catalytic cycle",
))

# Exogenous drug compounds (Table II).
_DRUGS = [
    ("clozapine", "Clozapine", 326.8,
     "Antipsychotic used in the treatment of schizophrenia"),
    ("erythromycin", "Erythromycin", 733.9,
     "Broad-spectrum antibiotic"),
    ("indinavir", "Indinavir", 613.8,
     "Used in the treatment of HIV infection and AIDS"),
    ("benzphetamine", "Benzphetamine", 239.4,
     "Used in the treatment of obesity"),
    ("aminopyrine", "Aminopyrine", 231.3,
     "Analgesic, anti-inflammatory, and antipyretic drug"),
    ("bupropion", "Bupropion", 239.7,
     "Antidepressant"),
    ("lidocaine", "Lidocaine", 234.3,
     "Anesthetic and antiarrhythmic"),
    ("torsemide", "Torsemide", 348.4,
     "Diuretic"),
    ("diclofenac", "Diclofenac", 296.1,
     "Anti-inflammatory (spelled 'diclofecan' in the paper table)"),
    ("p_nitrophenol", "p-Nitrophenol", 139.1,
     "Intermediate in the synthesis of paracetamol"),
]
for _name, _display, _mass, _desc in _DRUGS:
    register_species(Species(
        name=_name,
        display_name=_display,
        diffusivity=C.DIFFUSIVITY_DRUG_SMALL,
        kind="drug",
        n_electrons=1,
        molar_mass=_mass,
        description=_desc,
    ))

# Chemotherapy compounds named in Sec. I-A (not in the evaluation tables,
# but users of the library may target them).
for _name, _display, _mass in [
    ("ftorafur", "Ftorafur", 200.2),
    ("cyclophosphamide", "Cyclophosphamide", 261.1),
    ("ifosfamide", "Ifosfamide", 261.1),
]:
    register_species(Species(
        name=_name,
        display_name=_display,
        diffusivity=C.DIFFUSIVITY_DRUG_SMALL,
        kind="drug",
        molar_mass=_mass,
        description="Chemotherapy compound (Sec. I-A)",
    ))

# Direct oxidisers: the paper warns (Sec. II-C) that dopamine and etoposide
# oxidise at a bare WE without any enzyme, so an enzyme-free reference WE
# (CDS blank) still responds to them.
register_species(Species(
    name="dopamine",
    display_name="Dopamine",
    diffusivity=6.0e-10,
    kind="neurotransmitter",
    n_electrons=2,
    direct_oxidation_potential=0.20,
    molar_mass=153.2,
    description="Oxidises directly on a bare electrode (CDS caveat)",
))
register_species(Species(
    name="etoposide",
    display_name="Etoposide",
    diffusivity=4.0e-10,
    kind="drug",
    n_electrons=2,
    direct_oxidation_potential=0.25,
    molar_mass=588.6,
    description="Chemotherapy drug; oxidises directly on a bare electrode",
))

#: Names of the endogenous metabolites the paper singles out (Sec. I-A).
ENDOGENOUS_METABOLITES = ("glucose", "lactate", "glutamate", "cholesterol")

#: Names of the drug compounds listed in Table II.
EXOGENOUS_DRUGS = (
    "clozapine", "erythromycin", "indinavir", "benzphetamine",
    "aminopyrine", "bupropion", "lidocaine", "torsemide",
    "diclofenac", "p_nitrophenol",
)
