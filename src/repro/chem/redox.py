"""Redox thermodynamics and electrode-kinetics laws.

Implements the three relations every electrochemical model in the library is
built from:

- the **Nernst equation** for the equilibrium potential of a redox couple,
- a **sigmoidal oxidation-efficiency** curve ``eta(E)`` describing what
  fraction of an electroactive product (H2O2 for oxidases) is collected at
  a given applied potential — this is what makes the Table I "applied
  potential" column measurable in simulation, and
- the **Butler-Volmer** current-overpotential law used by the cyclic
  voltammetry simulator for cytochrome P450 films.

All potentials are volts vs. the Ag/AgCl reference, matching the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem import constants as C
from repro.errors import ChemistryError
from repro.units import ensure_finite, ensure_positive

__all__ = [
    "nernst_potential",
    "nernst_ratio",
    "RedoxCouple",
    "OxidationEfficiency",
    "butler_volmer_current_density",
    "ButlerVolmerKinetics",
]


def nernst_potential(e_standard: float, n: int, ratio_ox_red: float,
                     temperature_k: float = C.STANDARD_TEMPERATURE) -> float:
    """Equilibrium potential E = E0 + (RT/nF) ln([Ox]/[Red])."""
    ensure_finite(e_standard, "e_standard")
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    ensure_positive(ratio_ox_red, "ratio_ox_red")
    return e_standard + math.log(ratio_ox_red) / (n * C.f_over_rt(temperature_k))


def nernst_ratio(e_applied: float, e_standard: float, n: int,
                 temperature_k: float = C.STANDARD_TEMPERATURE) -> float:
    """Equilibrium [Ox]/[Red] ratio at an applied potential (inverse Nernst)."""
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    exponent = n * C.f_over_rt(temperature_k) * (
        ensure_finite(e_applied, "e_applied") - ensure_finite(e_standard, "e_standard")
    )
    # Clamp to avoid overflow for potentials far from E0; the ratio is then
    # effectively infinite/zero anyway.
    return math.exp(min(max(exponent, -500.0), 500.0))


@dataclass(frozen=True)
class RedoxCouple:
    """A redox couple Ox + n e- <-> Red with formal potential ``e_formal``.

    ``e_formal`` is the formal (conditional) potential vs Ag/AgCl in volts.
    For the cytochrome sensors of Table II this is the tabulated reduction
    potential of the CYP/drug pair.
    """

    name: str
    e_formal: float
    n_electrons: int = 1

    def __post_init__(self) -> None:
        ensure_finite(self.e_formal, "e_formal")
        if self.n_electrons < 1:
            raise ChemistryError(
                f"redox couple {self.name!r}: n_electrons must be >= 1"
            )

    def equilibrium_ratio(self, e_applied: float,
                          temperature_k: float = C.STANDARD_TEMPERATURE) -> float:
        """[Ox]/[Red] in equilibrium with the electrode at ``e_applied``."""
        return nernst_ratio(e_applied, self.e_formal, self.n_electrons,
                            temperature_k)

    def reduced_fraction(self, e_applied: float,
                         temperature_k: float = C.STANDARD_TEMPERATURE) -> float:
        """Equilibrium fraction of the couple in the reduced form."""
        ratio = self.equilibrium_ratio(e_applied, temperature_k)
        return 1.0 / (1.0 + ratio)


@dataclass(frozen=True)
class OxidationEfficiency:
    """Sigmoidal collection efficiency eta(E) of an oxidisable product.

    The fraction of H2O2 (or other product) oxidised at the working
    electrode rises sigmoidally with applied potential around a half-wave
    potential ``e_half`` with slope ``slope`` (volts per e-fold at the
    midpoint; a Nernstian one-electron wave has slope RT/F ~ 25.7 mV):

        eta(E) = eta_max / (1 + exp(-(E - e_half)/slope))

    Table I's "applied potential" for each oxidase is the potential at
    which the wave has effectively saturated; the T1 bench recovers it by
    sweeping E and locating the 95 %-of-plateau point.  Electrode materials
    shift ``e_half`` (carbon nanotubes lower the H2O2 overpotential).
    """

    e_half: float
    slope: float = 0.0257
    eta_max: float = 1.0

    def __post_init__(self) -> None:
        ensure_finite(self.e_half, "e_half")
        ensure_positive(self.slope, "slope")
        if not 0.0 < self.eta_max <= 1.0:
            raise ChemistryError(
                f"eta_max must be in (0, 1], got {self.eta_max!r}"
            )

    def at(self, e_applied):
        """Efficiency at one or many applied potentials (scalar or array)."""
        e = np.asarray(e_applied, dtype=float)
        x = np.clip((e - self.e_half) / self.slope, -500.0, 500.0)
        eta = self.eta_max / (1.0 + np.exp(-x))
        if e.ndim == 0:
            return float(eta)
        return eta

    def potential_for_efficiency(self, fraction: float) -> float:
        """Potential where eta reaches ``fraction`` of ``eta_max``.

        The T1 experiment uses ``fraction=0.95``: the paper's tabulated
        applied potentials sit where the oxidation wave has saturated.
        """
        if not 0.0 < fraction < 1.0:
            raise ChemistryError(f"fraction must be in (0, 1), got {fraction!r}")
        return self.e_half + self.slope * math.log(fraction / (1.0 - fraction))

    def shifted(self, delta_volts: float) -> "OxidationEfficiency":
        """Return a copy with ``e_half`` shifted by ``delta_volts``.

        Used by electrode materials that catalyse (negative shift) or
        hinder (positive shift) the product oxidation.
        """
        return OxidationEfficiency(
            e_half=self.e_half + ensure_finite(delta_volts, "delta_volts"),
            slope=self.slope, eta_max=self.eta_max,
        )


def butler_volmer_current_density(
    eta_overpotential, k0: float, c_ox, c_red,
    n: int = 1, alpha: float = 0.5,
    temperature_k: float = C.STANDARD_TEMPERATURE,
):
    """Butler-Volmer current density for Ox + n e- <-> Red, A/m^2.

    Cathodic (reduction) current is **negative** by the IUPAC convention
    used throughout the library:

        j = n*F*k0 * (c_red * exp((1-alpha)*n*f*eta) - c_ox * exp(-alpha*n*f*eta))

    where ``eta = E - E_formal`` and ``f = F/RT``.  ``k0`` is the standard
    heterogeneous rate constant (m/s); ``c_ox``/``c_red`` the *surface*
    concentrations (mol/m^3).  Accepts scalars or numpy arrays.
    """
    ensure_positive(k0, "k0")
    if n < 1:
        raise ChemistryError(f"n must be >= 1, got {n}")
    if not 0.0 < alpha < 1.0:
        raise ChemistryError(f"alpha must be in (0, 1), got {alpha!r}")
    f = C.f_over_rt(temperature_k)
    eta = np.asarray(eta_overpotential, dtype=float)
    ox = np.clip(np.asarray(c_ox, dtype=float), 0.0, None)
    red = np.clip(np.asarray(c_red, dtype=float), 0.0, None)
    anodic = np.exp(np.clip((1.0 - alpha) * n * f * eta, -500.0, 500.0))
    cathodic = np.exp(np.clip(-alpha * n * f * eta, -500.0, 500.0))
    j = n * C.FARADAY * k0 * (red * anodic - ox * cathodic)
    if eta.ndim == 0 and np.ndim(c_ox) == 0 and np.ndim(c_red) == 0:
        return float(j)
    return j


@dataclass(frozen=True)
class ButlerVolmerKinetics:
    """Electrode kinetics of a redox couple: (couple, k0, alpha).

    ``k0`` in m/s classifies the couple as reversible (large k0),
    quasi-reversible, or irreversible (small k0); immobilised CYP films
    are quasi-reversible, which broadens and separates the CV peaks.
    """

    couple: RedoxCouple
    k0: float = 1.0e-5
    alpha: float = 0.5

    def __post_init__(self) -> None:
        ensure_positive(self.k0, "k0")
        if not 0.0 < self.alpha < 1.0:
            raise ChemistryError(f"alpha must be in (0, 1), got {self.alpha!r}")

    def current_density(self, e_applied, c_ox, c_red,
                        temperature_k: float = C.STANDARD_TEMPERATURE):
        """Current density at applied potential(s) ``e_applied``, A/m^2."""
        eta = np.asarray(e_applied, dtype=float) - self.couple.e_formal
        return butler_volmer_current_density(
            eta, self.k0, c_ox, c_red,
            n=self.couple.n_electrons, alpha=self.alpha,
            temperature_k=temperature_k,
        )

    def rate_constants(self, e_applied: float,
                       temperature_k: float = C.STANDARD_TEMPERATURE,
                       ) -> tuple[float, float]:
        """Forward (reduction) and backward (oxidation) rate constants, m/s.

        kf = k0*exp(-alpha*n*f*(E-E0)), kb = k0*exp((1-alpha)*n*f*(E-E0)).
        These feed the boundary condition of the CV diffusion solver.
        """
        f = C.f_over_rt(temperature_k)
        n = self.couple.n_electrons
        x = n * f * (ensure_finite(e_applied, "e_applied") - self.couple.e_formal)
        x = min(max(x, -500.0), 500.0)
        kf = self.k0 * math.exp(-self.alpha * x)
        kb = self.k0 * math.exp((1.0 - self.alpha) * x)
        return kf, kb
