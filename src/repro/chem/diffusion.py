"""One-dimensional diffusion solver for electrode problems.

Chronoamperometry and cyclic voltammetry are both diffusion problems on the
half-line: the electrode sits at ``x = 0``, the bulk solution at large
``x``.  This module implements:

- :class:`Grid1D` — uniform or exponentially expanding node placement
  (fine at the electrode where gradients are steep, coarse in the bulk),
- :func:`thomas_solve` — the O(N) tridiagonal solver (kept as the
  scalar reference implementation; the stepper itself holds a
  :class:`~repro.engine.tridiag.TridiagonalFactorization` and reuses the
  forward-elimination coefficients on every step),
- :class:`CrankNicolsonDiffusion` — an unconditionally stable
  Crank-Nicolson stepper in conservative finite-volume form, with a
  reactive electrode boundary that can be applied explicitly
  (``J = const``), semi-implicitly (``J = a + b*c0`` absorbed into the
  matrix), or via a Schur complement for problems where two species couple
  through one surface reaction (the CV simulator uses this).

Steppers expose their tridiagonal coefficients
(:attr:`~CrankNicolsonDiffusion.implicit_coefficients` /
:attr:`~CrankNicolsonDiffusion.explicit_coefficients`) so
:class:`repro.engine.batch.BatchCrankNicolson` can stack many of them
into one batched solve per time step — the platform's hot path.

Sign convention: ``surface_flux`` is the rate at which the electrode
reaction **removes** the species from solution, mol/(m^2 s); a negative
value injects the species (e.g. H2O2 produced by an oxidase film).

Validation: property tests check mass conservation with sealed boundaries
and convergence to the Cottrell current for a diffusion-limited step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.engine.tridiag import TridiagonalFactorization, factor_tridiagonal
from repro.errors import SimulationError
from repro.units import ensure_positive

__all__ = [
    "Grid1D",
    "thomas_solve",
    "CrankNicolsonDiffusion",
    "default_domain_length",
]


def default_domain_length(diffusivity: float, duration: float,
                          safety: float = 6.0) -> float:
    """Domain length that the diffusion layer cannot outgrow.

    The depletion layer reaches about ``sqrt(D*t)`` after time ``t``; a
    domain of ``safety`` times that is effectively semi-infinite.
    """
    ensure_positive(diffusivity, "diffusivity")
    ensure_positive(duration, "duration")
    return safety * math.sqrt(diffusivity * duration)


@dataclass(frozen=True)
class Grid1D:
    """Node positions for the 1-D domain, ``x[0] == 0`` at the electrode."""

    x: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        if x.ndim != 1 or x.size < 3:
            raise SimulationError("grid needs at least 3 nodes")
        if x[0] != 0.0:
            raise SimulationError("grid must start at the electrode, x[0] == 0")
        if np.any(np.diff(x) <= 0.0):
            raise SimulationError("grid nodes must be strictly increasing")
        object.__setattr__(self, "x", x)

    @classmethod
    def uniform(cls, length: float, n_nodes: int) -> "Grid1D":
        """Evenly spaced nodes over ``[0, length]``."""
        ensure_positive(length, "length")
        if n_nodes < 3:
            raise SimulationError("n_nodes must be >= 3")
        return cls(np.linspace(0.0, length, n_nodes))

    @classmethod
    def expanding(cls, first_step: float, length: float,
                  growth: float = 1.08) -> "Grid1D":
        """Exponentially expanding spacing from ``first_step`` at the surface.

        Node spacing grows by the factor ``growth`` per interval until the
        accumulated length covers ``length``.  This is the standard grid
        for voltammetry simulation: resolution where the concentration
        profile bends, economy in the bulk.
        """
        ensure_positive(first_step, "first_step")
        ensure_positive(length, "length")
        if growth < 1.0:
            raise SimulationError(f"growth must be >= 1, got {growth!r}")
        if first_step >= length:
            raise SimulationError("first_step must be smaller than length")
        nodes = [0.0]
        step = first_step
        while nodes[-1] < length:
            nodes.append(nodes[-1] + step)
            step *= growth
        return cls(np.asarray(nodes))

    @property
    def n_nodes(self) -> int:
        return int(self.x.size)

    @property
    def length(self) -> float:
        return float(self.x[-1])

    @property
    def spacings(self) -> np.ndarray:
        """Interval widths ``h[i] = x[i+1] - x[i]`` (length N-1)."""
        return np.diff(self.x)

    @property
    def cell_volumes(self) -> np.ndarray:
        """Finite-volume cell widths (per unit electrode area), length N.

        Cell ``i`` spans from the midpoint below to the midpoint above;
        the boundary cells are half-cells.  Volumes sum to the domain
        length, which is what makes the discretisation conservative.
        """
        h = self.spacings
        v = np.empty(self.n_nodes)
        v[0] = 0.5 * h[0]
        v[1:-1] = 0.5 * (h[:-1] + h[1:])
        v[-1] = 0.5 * h[-1]
        return v


#: Shared implicit-matrix factorizations, keyed by everything the matrix
#: depends on: (bulk boundary, dt, diffusivity, grid nodes).  A panel's
#: working electrodes routinely build dozens of steppers over identical
#: (grid, D, dt) triples — one mechanism per WE — and each used to
#: re-run the same forward elimination.  Factorizations are read-only
#: after construction, so sharing one instance is safe and bit-identical.
_FACTOR_CACHE: dict[tuple, TridiagonalFactorization] = {}
_FACTOR_CACHE_MAX = 256


def _shared_factorization(key: tuple, lower: np.ndarray, diag: np.ndarray,
                          upper: np.ndarray) -> TridiagonalFactorization:
    factor = _FACTOR_CACHE.get(key)
    if factor is None:
        factor = factor_tridiagonal(lower, diag, upper)
        if len(_FACTOR_CACHE) >= _FACTOR_CACHE_MAX:
            _FACTOR_CACHE.pop(next(iter(_FACTOR_CACHE)))
        _FACTOR_CACHE[key] = factor
    return factor


def thomas_solve(lower: np.ndarray, diag: np.ndarray, upper: np.ndarray,
                 rhs: np.ndarray) -> np.ndarray:
    """Solve a tridiagonal system in O(N).

    ``lower`` has length N-1 (sub-diagonal), ``diag`` length N,
    ``upper`` length N-1 (super-diagonal).  The input arrays are not
    modified.  Raises :class:`~repro.errors.SimulationError` on a zero
    pivot (the Crank-Nicolson matrices used here are strictly diagonally
    dominant, so this indicates a configuration bug).
    """
    n = diag.size
    if lower.size != n - 1 or upper.size != n - 1 or rhs.size != n:
        raise SimulationError("tridiagonal system arrays have inconsistent sizes")
    c_prime = np.empty(n - 1)
    d_prime = np.empty(n)
    denom = diag[0]
    if denom == 0.0:
        raise SimulationError("zero pivot in tridiagonal solve (row 0)")
    c_prime[0] = upper[0] / denom
    d_prime[0] = rhs[0] / denom
    for i in range(1, n):
        denom = diag[i] - lower[i - 1] * c_prime[i - 1]
        if denom == 0.0:
            raise SimulationError(f"zero pivot in tridiagonal solve (row {i})")
        if i < n - 1:
            c_prime[i] = upper[i] / denom
        d_prime[i] = (rhs[i] - lower[i - 1] * d_prime[i - 1]) / denom
    out = np.empty(n)
    out[-1] = d_prime[-1]
    for i in range(n - 2, -1, -1):
        out[i] = d_prime[i] - c_prime[i] * out[i + 1]
    return out


class CrankNicolsonDiffusion:
    """Crank-Nicolson stepper for one species on a :class:`Grid1D`.

    Parameters
    ----------
    grid:
        Node placement.
    diffusivity:
        D in m^2/s.
    dt:
        Time step in seconds (fixed per stepper; build a new stepper to
        change it — the matrices are pre-factored for speed).
    bulk_boundary:
        ``"dirichlet"`` pins the far node to its initial value (semi-
        infinite bulk); ``"noflux"`` seals the far end (thin-layer cell /
        mass-conservation tests).
    """

    def __init__(self, grid: Grid1D, diffusivity: float, dt: float,
                 bulk_boundary: str = "dirichlet") -> None:
        if bulk_boundary not in ("dirichlet", "noflux"):
            raise SimulationError(
                f"bulk_boundary must be 'dirichlet' or 'noflux', got {bulk_boundary!r}"
            )
        self.grid = grid
        self.diffusivity = ensure_positive(diffusivity, "diffusivity")
        self.dt = ensure_positive(dt, "dt")
        self.bulk_boundary = bulk_boundary
        self._volumes = grid.cell_volumes
        self._build_matrices()

    def _build_matrices(self) -> None:
        """Assemble the tridiagonal operator A with dc/dt = A c + sources."""
        n = self.grid.n_nodes
        h = self.grid.spacings
        v = self._volumes
        d = self.diffusivity
        lower = np.zeros(n - 1)
        diag = np.zeros(n)
        upper = np.zeros(n - 1)
        # Row 0 (electrode surface): exchange with node 1 only; the surface
        # reaction enters as a source term or implicit diagonal correction.
        diag[0] = -d / (h[0] * v[0])
        upper[0] = d / (h[0] * v[0])
        for i in range(1, n - 1):
            lower[i - 1] = d / (h[i - 1] * v[i])
            diag[i] = -d / (h[i - 1] * v[i]) - d / (h[i] * v[i])
            upper[i] = d / (h[i] * v[i])
        if self.bulk_boundary == "noflux":
            lower[n - 2] = d / (h[n - 2] * v[n - 1])
            diag[n - 1] = -d / (h[n - 2] * v[n - 1])
        # Dirichlet: last row of A stays zero; we additionally pin the node
        # in the implicit matrix below so (I - 0.5 dt A) keeps it fixed.
        self._a_lower, self._a_diag, self._a_upper = lower, diag, upper
        half = 0.5 * self.dt
        self._implicit_lower = -half * lower
        self._implicit_diag = 1.0 - half * diag
        self._implicit_upper = -half * upper
        self._explicit_lower = half * lower
        self._explicit_diag = 1.0 + half * diag
        self._explicit_upper = half * upper
        if self.bulk_boundary == "dirichlet":
            # Keep the bulk node exactly constant.
            self._implicit_lower[n - 2] = 0.0
            self._implicit_diag[n - 1] = 1.0
            self._explicit_lower[n - 2] = 0.0
            self._explicit_diag[n - 1] = 1.0
        # The implicit matrix never changes, so eliminate it once; every
        # step then runs only the two substitution sweeps.  Steppers over
        # the same (grid, D, dt, boundary) share one factorization.
        self._implicit_factor = _shared_factorization(
            (self.bulk_boundary, self.dt, self.diffusivity,
             self.grid.x.tobytes()),
            self._implicit_lower, self._implicit_diag, self._implicit_upper)

    # -- matrix access (batched engine contract) -------------------------------

    @property
    def implicit_coefficients(self) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
        """(lower, diag, upper) of (I - dt/2 A); treat as read-only."""
        return (self._implicit_lower, self._implicit_diag,
                self._implicit_upper)

    @property
    def explicit_coefficients(self) -> tuple[np.ndarray, np.ndarray,
                                             np.ndarray]:
        """(lower, diag, upper) of (I + dt/2 A); treat as read-only."""
        return (self._explicit_lower, self._explicit_diag,
                self._explicit_upper)

    @property
    def surface_volume(self) -> float:
        """Finite-volume width of the electrode-surface cell, metres."""
        return float(self._volumes[0])

    # -- public stepping API -------------------------------------------------

    def step(self, c: np.ndarray, surface_flux: float = 0.0) -> np.ndarray:
        """Advance one dt with a constant (explicit) surface removal flux.

        The scheme is strictly conservative, so the output is *not*
        clipped: Crank-Nicolson can undershoot slightly below zero near
        non-smooth data, and clipping would silently create mass.
        Physical consumers (the enzyme rate laws) clip on their side.
        """
        rhs = self._explicit_rhs(c)
        rhs[0] -= self.dt * surface_flux / self._volumes[0]
        return self._implicit_factor.solve(rhs)

    def step_linear_surface(self, c: np.ndarray, a: float,
                            b: float) -> np.ndarray:
        """Advance one dt with an implicit linearised surface flux.

        The electrode removes the species at ``J = a + b * c0_new``
        (mol/(m^2 s)); ``b >= 0`` keeps the problem well posed.  Used
        for Michaelis-Menten films, Newton-linearised around the current
        surface concentration.

        The slope only perturbs the matrix at the surface entry — a
        rank-one update — so instead of refactoring per step the solve
        uses the prefactored base matrix plus a Sherman-Morrison
        correction through the cached :meth:`surface_response` (the same
        Schur-complement structure the CV boundary uses).
        """
        if b < 0.0:
            raise SimulationError(
                f"linearised surface-rate slope must be >= 0, got {b!r}"
            )
        rhs = self._explicit_rhs(c)
        rhs[0] -= self.dt * a / self._volumes[0]
        u = self._implicit_factor.solve(rhs)
        w = self.surface_response()
        sb = self.dt * b / self._volumes[0]
        c0 = float(u[0]) / (1.0 + sb * float(w[0]))
        return u - (sb * c0) * w

    def solve_implicit(self, rhs: np.ndarray) -> np.ndarray:
        """Solve (I - dt/2 A) x = rhs (building block for coupled problems)."""
        return self._implicit_factor.solve(np.asarray(rhs, dtype=float))

    def explicit_rhs(self, c: np.ndarray) -> np.ndarray:
        """Return (I + dt/2 A) c — the Crank-Nicolson right-hand side."""
        return self._explicit_rhs(c)

    def surface_response(self) -> np.ndarray:
        """Solve (I - dt/2 A) w = e0 (unit source at the surface node).

        The CV simulator composes this with the Schur complement of the
        shared Butler-Volmer boundary: the new profile under a surface
        source ``s`` is ``solve_implicit(rhs) + s * surface_response()``.
        The result is cached (the matrix never changes).
        """
        if not hasattr(self, "_surface_response"):
            e0 = np.zeros(self.grid.n_nodes)
            e0[0] = 1.0
            self._surface_response = self._implicit_factor.solve(e0)
        return self._surface_response

    @property
    def surface_source_scale(self) -> float:
        """Factor mapping a surface flux J to its source-term magnitude.

        A removal flux J (mol/m^2/s) contributes ``-J * scale`` to the
        surface node's right-hand side, with ``scale = dt / V0``.
        """
        return self.dt / self._volumes[0]

    def total_mass(self, c: np.ndarray) -> float:
        """Mass per unit area, mol/m^2 (conserved when sealed)."""
        return float(np.dot(self._volumes, np.asarray(c, dtype=float)))

    def surface_gradient_flux(self, c: np.ndarray) -> float:
        """Diffusive flux toward the electrode from the profile, mol/(m^2 s).

        ``J = D * (c1 - c0) / h0`` — positive when material flows toward
        the surface.  At steady state it equals the consumption flux.
        """
        h0 = self.grid.spacings[0]
        return self.diffusivity * (float(c[1]) - float(c[0])) / h0

    # -- internals -----------------------------------------------------------

    def _explicit_rhs(self, c: np.ndarray) -> np.ndarray:
        c = np.asarray(c, dtype=float)
        if c.size != self.grid.n_nodes:
            raise SimulationError(
                f"profile has {c.size} nodes, grid has {self.grid.n_nodes}"
            )
        rhs = self._explicit_diag * c
        rhs[:-1] += self._explicit_upper * c[1:]
        rhs[1:] += self._explicit_lower * c[:-1]
        return rhs
