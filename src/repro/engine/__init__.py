"""Batch-vectorized simulation engine — the platform's shared compute core.

Why this subsystem exists
=========================

Every measurement protocol in this library (cyclic voltammetry,
differential pulse voltammetry, chronoamperometry, and the multiplexed
multi-target panel built on them) bottoms out in the same numerical
kernel: advance a handful of independent 1-D Crank-Nicolson diffusion
systems by one time step and read each one's surface flux.  The seed
implementation ran that kernel as nested pure-Python loops — per sample,
per channel, per grid node — with the tridiagonal solver re-deriving its
forward-elimination coefficients on every call.  A production platform
serving many concurrent assays lives or dies on exactly this path, so
the engine restructures it in five layers:

1. **Prefactored Thomas solves** (:mod:`repro.engine.tridiag`).  The
   elimination coefficients depend only on the matrix, never on the
   right-hand side; :func:`~repro.engine.tridiag.factor_tridiagonal`
   runs the elimination once and
   :meth:`~repro.engine.tridiag.TridiagonalFactorization.solve` reuses
   it for every step of a run.

2. **Batched tridiagonal sweeps** (same module).  M independent systems
   stack into ``(M, N)`` arrays and the forward/backward recurrences
   vectorise across the batch: one numpy operation per grid node
   advances *every* channel, instead of one Python iteration per node
   per channel.

3. **Batch steppers and the protocol facade**
   (:mod:`repro.engine.batch`, :mod:`repro.engine.redox`,
   :mod:`repro.engine.mechanisms`, :mod:`repro.engine.simulation`).
   :class:`~repro.engine.batch.BatchCrankNicolson` stacks whole
   Crank-Nicolson steppers (padding unequal grids with decoupled
   identity rows); :class:`~repro.engine.redox.RedoxChannelBatch` fuses
   the oxidised + reduced fields of all CV/DPV channels into one
   ``(2M, N)`` solve per sample;
   :class:`~repro.engine.mechanisms.MechanismBatch` does the same for
   chronoamperometric surface mechanisms; and
   :class:`~repro.engine.simulation.SimulationEngine` is the single
   front door the protocols call.  Identical matrices inside a batch
   (WEs sharing a grid/diffusivity/dt) are eliminated once and the sweep
   coefficients shared
   (:func:`~repro.engine.tridiag.factor_tridiagonal_shared`), and
   scalar steppers over the same (grid, D, dt, boundary) share one
   cached factorization outright.

4. **Cross-electrode dwell fusion** (:mod:`repro.engine.scheduler`).
   A panel's chronoamperometric dwells — one mechanism set per working
   electrode, heterogeneous grids included — stack into a single
   :class:`~repro.engine.scheduler.DwellBatch`:
   :class:`~repro.measurement.panel.PanelProtocol` advances *every*
   electrode of a cell with one fused solve per time step (injection
   schedules drain the batch back, refresh the affected dwell, and
   rebuild), then digitises per WE in the original electrode order so
   the RNG stream — and every result — matches the sequential path bit
   for bit.

5. **Multi-assay fleet scheduling** (same module).
   :class:`~repro.engine.scheduler.AssayScheduler` accepts N
   ``(cell, chain)`` jobs (:class:`~repro.engine.scheduler.AssayJob`),
   groups compatible dwells *across cells* into fused
   :class:`~repro.engine.scheduler.DwellBatch` solves, interleaves the
   CV sweeps in job order, and assembles one per-job
   :class:`~repro.measurement.panel.PanelResult` each
   (:class:`~repro.engine.scheduler.FleetResult`) — the many-concurrent-
   assays workload of the ROADMAP served by one shared compute core.
   :meth:`~repro.engine.scheduler.AssayScheduler.run_iter` is the
   streaming form: dwell groups are simulated lazily and one
   :class:`~repro.engine.scheduler.FleetItem` is yielded per job, in
   job order, as each assay's dwells drain from the fused batches —
   ``run_many`` is this stream drained into a ``FleetResult``.

6. **The declarative spec/run front door** (:mod:`repro.api`, one layer
   above this package).  Versioned, JSON-round-trippable
   :class:`~repro.api.specs.AssaySpec` / :class:`~repro.api.specs.
   FleetSpec` (plus calibration / platform / explore kinds) describe
   work; one :func:`~repro.api.runner.run` entry point dispatches to the
   protocol, scheduler, calibration and platform paths and returns
   :class:`~repro.api.records.RunRecord` objects carrying the result
   plus provenance — spec hash, schema version, seed, wall time, and
   this engine's fusion statistics.  :func:`~repro.api.runner.
   iter_results` exposes layer 5's ``run_iter`` stream as per-job
   records.  The CLI and examples describe all work as specs; the
   class-level protocol entry points below remain the documented escape
   hatch, pinned bit-identical to the spec paths.

7. **Pluggable execution backends and the run store**
   (:mod:`repro.api.executors`, :mod:`repro.api.store`).  *How* a fleet
   executes is an :class:`~repro.api.executors.Executor` plugged in
   behind the front door: :class:`~repro.api.executors.InlineExecutor`
   is layer 5's fused pass in-process (the bit-identical reference) and
   :class:`~repro.api.executors.ProcessExecutor` shards the fleet's
   jobs across worker processes — each worker rebuilds its shard from
   canonical assay payloads and runs its own fused ``run_iter``, and
   the parent re-merges completions in job order, so results are
   bit-identical to inline on every backend (only wall time and fusion
   statistics reflect the sharding).  Backends are declared in the
   fleet spec's ``execution`` block or passed as ``run(spec,
   backend=...)``.  Orthogonally, :class:`~repro.api.store.RunStore`
   memoises whole runs content-addressed by spec hash — a repeated
   ``run(spec, store=...)`` returns the stored record (``cached=True``)
   without touching this engine at all — and the ``sweep`` spec kind
   compiles parameter grids into fleets so parameter studies flow
   through the same backends and store.

8. **Job-level caching** (:mod:`repro.api.jobs`, threaded through the
   runner, both executors and the store).  The cacheable unit of work
   is the individual assay *job*: :class:`~repro.api.jobs.JobKey`
   content-addresses each job by SHA-256 over its canonical assay
   payload (seed and injection schedules included), and
   :class:`~repro.api.jobs.JobPlan` splits a fleet into warm store
   hits and engine misses *before* anything is scheduled or sharded.
   Per-job store records persist every sample array, so a hit
   rehydrates a live, bit-identical
   :class:`~repro.measurement.panel.PanelResult`
   (:class:`~repro.api.records.CachedAssayRecord`); only the miss
   fleet reaches layer 5's ``run_iter`` — on any backend — and cached
   + fresh records are re-merged in job order, bit-identical to the
   uncached stream.  A sweep sharing 90 of 100 grid points with an
   earlier study therefore simulates only the 10 new points, and a
   fully warm re-run performs **zero** engine solves — observable, and
   pinned in tests, via ``EngineStats.n_solve_steps`` (this package
   counts its fused dwell solves in
   :attr:`~repro.engine.scheduler.DwellBatch.n_solve_steps` /
   :class:`~repro.engine.scheduler.FleetItem`).  The store adds
   LRU eviction (``max_count``/``max_bytes``, an ``index.json`` clock)
   and :class:`~repro.api.store.StoreStats` hit/miss/eviction counters
   surfaced in record provenance and the CLI ``cache stats``
   subcommand.

9. **Precompiled step programs and cross-cell CV fusion** (round 2 of
   :mod:`repro.engine.scheduler` and the batch steppers).  The per-step
   Python branching of layers 3-5 is compiled away before the time
   loop: :class:`~repro.engine.mechanisms.MechanismBatch` precomputes
   its film/sink index arrays and kinetic constants once and steps as a
   handful of vectorised array expressions;
   :class:`~repro.engine.scheduler.DwellBatch` compiles each fused
   group's injection schedule into a step→events program and assembles
   current rows segment-at-a-time from precomputed per-mechanism
   coefficients (:meth:`~repro.measurement.chronoamperometry.
   ChronoDwell.current_coefficients`) instead of calling back into
   Python per sample.  CV sweeps, previously simulated per WE inside
   each job, now fuse *across cells* exactly like dwells:
   :meth:`~repro.measurement.panel.PanelProtocol.plan_sweeps` compiles
   each CYP WE into a :class:`~repro.measurement.voltammetry.CvSweep`
   (potential program, background currents, faradaic coefficients),
   and :class:`~repro.engine.scheduler.SweepBatch` stacks every
   compatible sweep's redox channels into one
   :class:`~repro.engine.redox.RedoxChannelBatch` driven by a
   per-system potential matrix — one fused solve per sample for the
   whole group.  Digitisation is fused too: the scheduler pre-draws
   each job's noise streams in electrode order off the job's own RNG
   (preserving the sequential draw sequence bit for bit), then calls
   :meth:`~repro.electronics.chain.AcquisitionChain.digitize_batch`
   once per (TIA, ADC) cluster of a fused group.  An opt-in
   *screening* profile (``PanelProtocol(screening=True)``, surfaced as
   ``AssaySpec.screening`` / ``run(spec, screening=True)`` /
   ``--screening``) trades grid resolution for throughput on the same
   fused paths; it is provenance-flagged and content-addressed apart
   from full-fidelity runs, and never the default.

10. **Fault-tolerant supervision** (:mod:`repro.api.resilience`, above
    this package).  The execution layer assumes workers can die: a
    :class:`~repro.api.resilience.RetryPolicy` (attempt budget,
    per-shard timeout, seeded exponential backoff) arms a supervisor
    that detects crashed, hung and failing shards and re-dispatches
    their surviving jobs at finer granularity, while
    ``on_error="partial"`` degrades exhausted jobs to
    :class:`~repro.api.records.FailedAssayRecord` entries instead of
    aborting the fleet.  Nothing in *this* package changes: every
    retry rebuilds its jobs from canonical assay payloads and re-runs
    layer 5's fused ``run_iter`` with fresh seeded RNGs, so a
    supervised (even deliberately faulted) run is bit-identical to a
    fault-free one — the equivalence guarantee below extends through
    worker death.  The run store seals records with integrity
    checksums and quarantines corrupt files as misses, and a seeded
    :class:`~repro.api.resilience.FaultInjector` (``REPRO_FAULTS``)
    drives worker crashes, hangs, transient errors and store
    corruption deterministically in CI.

11. **Correctness tooling** (:mod:`repro.devtools`, above this
    package).  The invariants the layers above rely on — randomness
    only from explicitly seeded generators (layer 5's bit-identical
    replay), the closed :class:`~repro.errors.ReproError` taxonomy,
    lock-guarded shared state in the store and service registries,
    and the versioned round-trippable spec surface — are enforced
    *statically* by a stdlib-``ast`` lint pass (``repro lint``,
    rules REP001–REP006) that runs over every source file in CI.
    Runtime tests prove the contracts hold on exercised paths; the
    linter proves new code cannot quietly opt out of them.

12. **Distributed execution over a shared store**
    (:mod:`repro.api.distributed`, :mod:`repro.api.store` round 2,
    above this package).  The third executor,
    :class:`~repro.api.distributed.DistributedExecutor`, decouples
    submission from capacity: it publishes each shard as a claimable
    task file in a queue directory, and any number of independent
    ``repro worker`` processes — started before or after the run, on
    any host sharing the file system — claim shards atomically
    (``os.O_EXCL``), run layer 5's fused ``run_iter``, and write
    results back for the submitter to re-merge in job order,
    bit-identical to inline.  A claim's mtime is a per-job progress
    heartbeat, so a crashed or wedged worker is detected by
    staleness and its shard republished under the layer-10 retry
    budget.  Workers share one :class:`~repro.api.store.RunStore`
    (its persistence seam is now a pluggable
    :class:`~repro.api.store.StorageDriver`), so a job any worker has
    ever solved is a cluster-wide cache hit — a fully warm fleet
    performs zero engine solves no matter which workers serve it —
    and idle workers speculatively prefetch the next grid point of
    the last sweep axis (opt-in ``execution: {"prefetch": true}``),
    warming the store for the widened re-sweep a parameter study
    runs next.

Equivalence guarantee
=====================

The batched path is not an approximation.  Per-row arithmetic keeps the
exact operation order of the scalar solver, the O(M) surface couplings
(Butler-Volmer rate constants, Michaelis-Menten relinearisation) are
computed with the same scalar ``math`` calls the reference simulators
use, and padded nodes are provably decoupled — so an engine built from
scalar channel objects reproduces their trajectories bit for bit, and
the acceptance bar of 1e-12 relative agreement holds trivially.  The
scalar classes remain in place as the reference implementation;
``tests/test_engine.py`` pins the equivalence and
``benchmarks/bench_engine_throughput.py`` tracks the speedup.

Sign conventions
================

The engine inherits the library-wide conventions unchanged:

- *Surface flux* is the rate at which the electrode reaction **removes**
  a species from solution, mol/(m^2 s); negative values inject it
  (:mod:`repro.chem.diffusion`).
- *Redox channel flux* (:class:`~repro.engine.redox.RedoxChannelBatch`)
  is the net **reduction** flux J, positive when the oxidised form is
  consumed; the faradaic current contribution of channel j is
  ``-n_j * F * area * J_j`` (cathodic currents negative).
- *Mechanism fluxes* (:class:`~repro.engine.mechanisms.MechanismBatch`)
  are consumption rates in each mechanism's own convention; pair them
  with ``mechanism.current(area, flux)``, which applies the anodic (+1)
  or cathodic (-1) sign.

Import order note: :mod:`repro.chem.diffusion` imports
:mod:`repro.engine.tridiag`, and :mod:`repro.engine.redox` imports
:mod:`repro.chem.constants` — keep the dependency-free numerical modules
(tridiag, batch) imported before the chemistry-aware ones below so both
import directions resolve cleanly.
"""

from repro.engine.tridiag import (
    TridiagonalFactorization,
    batch_thomas_solve,
    factor_tridiagonal,
    factor_tridiagonal_shared,
)
from repro.engine.batch import BatchCrankNicolson
from repro.engine.mechanisms import MechanismBatch
from repro.engine.redox import RedoxChannelBatch
from repro.engine.simulation import SimulationEngine
from repro.engine.scheduler import (
    AssayJob,
    AssayScheduler,
    DwellBatch,
    FleetItem,
    FleetResult,
    SweepBatch,
)

__all__ = [
    "TridiagonalFactorization",
    "factor_tridiagonal",
    "factor_tridiagonal_shared",
    "batch_thomas_solve",
    "BatchCrankNicolson",
    "RedoxChannelBatch",
    "MechanismBatch",
    "SimulationEngine",
    "DwellBatch",
    "SweepBatch",
    "AssayJob",
    "AssayScheduler",
    "FleetItem",
    "FleetResult",
]
