"""Prefactored and batched Thomas (tridiagonal) solves.

The Crank-Nicolson diffusion matrices of this library never change after
construction, yet the seed's :func:`repro.chem.diffusion.thomas_solve`
re-derived the forward-elimination coefficients on every call.  This
module splits the solve into its two natural halves:

- :func:`factor_tridiagonal` — run the forward elimination *once* and
  keep the sweep coefficients (``c_prime`` and the pivoted denominators
  depend only on the matrix, never on the right-hand side);
- :meth:`TridiagonalFactorization.solve` — per right-hand side, only the
  forward substitution and the back substitution remain.

Both halves accept **stacked systems**: arrays of shape ``(..., N)`` /
``(..., N-1)`` are treated as independent tridiagonal systems sharing a
node count, and every sweep is one numpy recurrence across the whole
batch.  The per-row arithmetic is kept in exactly the order of the
scalar ``thomas_solve`` — ``(rhs[i] - lower[i-1]*d[i-1]) / denom[i]`` —
so a batched solve reproduces the scalar solution bit for bit, which is
what lets the protocols switch to the batched engine without moving any
existing bench result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

__all__ = [
    "TridiagonalFactorization",
    "factor_tridiagonal",
    "factor_tridiagonal_shared",
    "batch_thomas_solve",
]


#: Batches at or below this many stacked systems solve through the
#: scalar (Python-float) sweeps; larger batches amortise numpy's
#: per-operation overhead across the batch axis and switch to the
#: node-major vectorised sweeps.  Both paths perform the identical IEEE
#: operation per element, so the dispatch never changes a result bit.
SMALL_BATCH = 4


class TridiagonalFactorization:
    """The reusable half of a Thomas solve, for one or many systems.

    Holds the sub-diagonal, the pivoted denominators and the eliminated
    super-diagonal (``c_prime``) of ``shape[:-1]`` independent systems.
    Instances are produced by :func:`factor_tridiagonal`; every pivot is
    guaranteed nonzero, so :meth:`solve` runs without checks.
    """

    __slots__ = ("lower", "denom", "c_prime", "_scalar", "_node_major")

    def __init__(self, lower: np.ndarray, denom: np.ndarray,
                 c_prime: np.ndarray) -> None:
        self.lower = lower
        self.denom = denom
        self.c_prime = c_prime
        # The batch shape is fixed, so only one solve path can ever
        # run; build only that representation.
        if denom.ndim == 1 or (denom.ndim == 2
                               and denom.shape[0] <= SMALL_BATCH):
            # Python-float coefficient rows for the small-batch sweeps
            # (a Python float multiply is several times cheaper than
            # the same op on a 0-d numpy scalar, and bit-identical).
            if denom.ndim == 1:
                self._scalar = [(lower.tolist(), denom.tolist(),
                                 c_prime.tolist())]
            else:
                self._scalar = [(lower[j].tolist(), denom[j].tolist(),
                                 c_prime[j].tolist())
                                for j in range(denom.shape[0])]
            self._node_major = None
        else:
            # Node-major (contiguous per-node rows) copies for the
            # vectorised sweeps over large batches, pre-split into row
            # views so the hot loop never re-slices coefficient arrays.
            self._scalar = None
            self._node_major = (
                list(np.ascontiguousarray(np.moveaxis(lower, -1, 0))),
                list(np.ascontiguousarray(np.moveaxis(denom, -1, 0))),
                list(np.ascontiguousarray(np.moveaxis(c_prime, -1, 0))))

    @property
    def n(self) -> int:
        """Nodes per system."""
        return int(self.denom.shape[-1])

    @property
    def batch_shape(self) -> tuple[int, ...]:
        """Leading (stacked-system) dimensions; ``()`` for one system."""
        return self.denom.shape[:-1]

    def tile(self, repeats: int) -> "TridiagonalFactorization":
        """Stack ``repeats`` copies of the batch along the leading axis.

        Lets one factorization serve several state fields per system
        (e.g. the oxidised and reduced fields of a redox couple) in a
        single fused sweep.
        """
        if repeats < 1:
            raise SimulationError("tile repeats must be >= 1")

        def _stack(a: np.ndarray) -> np.ndarray:
            rows = a if a.ndim > 1 else a[None, :]
            return np.concatenate([rows] * repeats, axis=0)

        return TridiagonalFactorization(
            _stack(self.lower), _stack(self.denom), _stack(self.c_prime))

    def solve(self, rhs: np.ndarray) -> np.ndarray:
        """Solve every stacked system for its right-hand side.

        ``rhs`` must have the factorization's full shape ``(..., N)``.
        Large batches run node-major vectorised sweeps (one numpy
        operation per grid node advances the whole batch); small ones
        run Python-float sweeps per system.  Every path performs the
        same IEEE operation sequence per element, so results are
        identical bit for bit whichever is taken.
        """
        rhs = np.asarray(rhs, dtype=float)
        if rhs.shape != self.denom.shape:
            raise SimulationError(
                f"rhs shape {rhs.shape} does not match the factorization "
                f"shape {self.denom.shape}")
        if rhs.ndim == 1:
            return np.asarray(self._solve_scalar(0, rhs.tolist()))
        if rhs.ndim == 2 and rhs.shape[0] <= SMALL_BATCH:
            return np.asarray([self._solve_scalar(j, rhs[j].tolist())
                               for j in range(rhs.shape[0])])
        return self._solve_vectorised(rhs)

    def _solve_scalar(self, system: int, rhs: list) -> list:
        lower, denom, c_prime = self._scalar[system]
        n = len(rhs)
        d = [0.0] * n
        d[0] = rhs[0] / denom[0]
        for i in range(1, n):
            d[i] = (rhs[i] - lower[i - 1] * d[i - 1]) / denom[i]
        for i in range(n - 2, -1, -1):
            d[i] = d[i] - c_prime[i] * d[i + 1]
        return d

    def _solve_vectorised(self, rhs: np.ndarray) -> np.ndarray:
        lower, denom, c_prime = self._node_major
        n = self.n
        # Work node-major: row i is the batch's node-i values, contiguous.
        d = np.ascontiguousarray(rhs.T if rhs.ndim == 2
                                 else np.moveaxis(rhs, -1, 0))
        rows = list(d)
        buf = np.empty_like(rows[0])
        mul, sub, div = np.multiply, np.subtract, np.divide
        prev = rows[0]
        div(prev, denom[0], out=prev)
        for i in range(1, n):
            row = rows[i]
            mul(lower[i - 1], prev, out=buf)
            sub(row, buf, out=row)
            div(row, denom[i], out=row)
            prev = row
        for i in range(n - 2, -1, -1):
            row = rows[i]
            mul(c_prime[i], rows[i + 1], out=buf)
            sub(row, buf, out=row)
        return np.ascontiguousarray(d.T if rhs.ndim == 2
                                    else np.moveaxis(d, 0, -1))


def factor_tridiagonal(lower: np.ndarray, diag: np.ndarray,
                       upper: np.ndarray) -> TridiagonalFactorization:
    """Forward-eliminate one or many tridiagonal systems.

    ``lower``/``upper`` have shape ``(..., N-1)`` and ``diag`` shape
    ``(..., N)``; leading dimensions index independent systems.  Raises
    :class:`~repro.errors.SimulationError` on any zero pivot (the
    Crank-Nicolson matrices used here are strictly diagonally dominant,
    so a zero pivot indicates a configuration bug).  Inputs are not
    modified; the factorization keeps its own copy of ``lower``.
    """
    lower = np.asarray(lower, dtype=float)
    diag = np.asarray(diag, dtype=float)
    upper = np.asarray(upper, dtype=float)
    n = diag.shape[-1]
    band_shape = diag.shape[:-1] + (n - 1,)
    if n < 2 or lower.shape != band_shape or upper.shape != band_shape:
        raise SimulationError(
            "tridiagonal system arrays have inconsistent sizes")
    c_prime = np.empty_like(upper)
    denom = np.empty_like(diag)
    denom[..., 0] = diag[..., 0]
    # A zero pivot poisons the rest of its own system with inf/nan but
    # cannot touch neighbours; divisions run silenced and the pivots are
    # audited once at the end, which keeps the hot loop branch-free.
    with np.errstate(divide="ignore", invalid="ignore"):
        c_prime[..., 0] = upper[..., 0] / denom[..., 0]
        for i in range(1, n):
            denom[..., i] = (diag[..., i]
                             - lower[..., i - 1] * c_prime[..., i - 1])
            if i < n - 1:
                c_prime[..., i] = upper[..., i] / denom[..., i]
    if not np.all(denom):
        row = int(np.argwhere(denom == 0.0)[0][-1])
        raise SimulationError(
            f"zero pivot in tridiagonal solve (row {row})")
    return TridiagonalFactorization(lower.copy(), denom, c_prime)


def factor_tridiagonal_shared(lower: np.ndarray, diag: np.ndarray,
                              upper: np.ndarray) -> TridiagonalFactorization:
    """Factor stacked systems, eliminating each *distinct* matrix once.

    Panel batches stack one diffusion system per (WE, species) pair, and
    electrodes sharing a grid, diffusivity and time step contribute
    byte-identical bands — a 16-cell glucose fleet re-eliminates the
    same matrix dozens of times.  This wrapper keys rows by their band
    bytes, runs :func:`factor_tridiagonal` over the unique rows only and
    broadcasts the sweep coefficients back to the full batch.  The
    elimination is independent per row, so the expanded factorization is
    bit-identical to factoring every row directly.
    """
    lower = np.asarray(lower, dtype=float)
    diag = np.asarray(diag, dtype=float)
    upper = np.asarray(upper, dtype=float)
    if diag.ndim != 2:
        return factor_tridiagonal(lower, diag, upper)
    n = diag.shape[-1]
    band_shape = diag.shape[:-1] + (n - 1,)
    if n < 2 or lower.shape != band_shape or upper.shape != band_shape:
        raise SimulationError(
            "tridiagonal system arrays have inconsistent sizes")
    first: dict[bytes, int] = {}
    unique: list[int] = []
    inverse = np.empty(diag.shape[0], dtype=int)
    for j in range(diag.shape[0]):
        key = (lower[j].tobytes() + diag[j].tobytes() + upper[j].tobytes())
        slot = first.get(key)
        if slot is None:
            slot = len(unique)
            first[key] = slot
            unique.append(j)
        inverse[j] = slot
    if len(unique) == diag.shape[0]:
        return factor_tridiagonal(lower, diag, upper)
    base = factor_tridiagonal(lower[unique], diag[unique], upper[unique])
    return TridiagonalFactorization(
        lower.copy(), base.denom[inverse], base.c_prime[inverse])


def batch_thomas_solve(lower: np.ndarray, diag: np.ndarray,
                       upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """One-shot factor-and-solve over stacked systems.

    Convenience wrapper for callers whose matrix is not reused; steppers
    should hold a :class:`TridiagonalFactorization` instead.
    """
    return factor_tridiagonal(lower, diag, upper).solve(rhs)
