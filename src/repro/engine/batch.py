"""Batched Crank-Nicolson stepping over stacked diffusion systems.

:class:`BatchCrankNicolson` takes M independent
:class:`~repro.chem.diffusion.CrankNicolsonDiffusion` steppers — all the
channels of one sweep, or all the surface mechanisms of one dwell — and
advances them together: the M concentration profiles live in one
``(M, N)`` array and every implicit solve is a single batched
:class:`~repro.engine.tridiag.TridiagonalFactorization` sweep.

Systems may have different node counts (the expanding voltammetry grids
depend on each species' diffusivity): shorter systems are padded with
decoupled identity rows (``diag = 1``, zero off-diagonals, zero explicit
coefficients), so the padded tail of a row solves to zero and never
couples back into the physical nodes.  The padded arithmetic on the real
nodes is element-for-element the same as the scalar steppers', so the
batch reproduces each stepper bit for bit.

The stepper contract is duck-typed: anything exposing ``dt``, ``grid``,
``implicit_coefficients``, ``explicit_coefficients``, ``surface_volume``
and ``surface_response()`` can join a batch.
"""

from __future__ import annotations

import numpy as np

from repro.engine.tridiag import factor_tridiagonal_shared
from repro.errors import SimulationError

__all__ = ["BatchCrankNicolson"]


class BatchCrankNicolson:
    """M Crank-Nicolson steppers advanced as one stacked system.

    ``replicas`` stacks several independent state fields per stepper
    (e.g. the oxidised and reduced fields of a redox couple) onto one
    shared factorization: the elimination runs once over the M distinct
    matrices and is tiled, so the batch advances ``replicas * M``
    profiles with rows ordered replica-major (all first-copy systems,
    then all second-copy systems, ...).
    """

    def __init__(self, steppers, replicas: int = 1) -> None:
        steppers = tuple(steppers)
        if not steppers:
            raise SimulationError("a batch needs at least one stepper")
        if replicas < 1:
            raise SimulationError("replicas must be >= 1")
        dts = {float(st.dt) for st in steppers}
        if len(dts) != 1:
            raise SimulationError(
                "batched steppers must share one time step; got "
                f"{sorted(dts)}")
        self.steppers = steppers
        self.dt = dts.pop()
        m = len(steppers)
        sizes = np.asarray([st.grid.n_nodes for st in steppers], dtype=int)
        n = int(sizes.max())
        # Implicit matrix, padded with decoupled identity rows.
        ilower = np.zeros((m, n - 1))
        idiag = np.ones((m, n))
        iupper = np.zeros((m, n - 1))
        # Explicit operator, padded with zeros (padding contributes
        # nothing to the right-hand side).
        elower = np.zeros((m, n - 1))
        ediag = np.zeros((m, n))
        eupper = np.zeros((m, n - 1))
        v0 = np.empty(m)
        for j, st in enumerate(steppers):
            k = int(sizes[j])
            lo, dg, up = st.implicit_coefficients
            ilower[j, :k - 1] = lo
            idiag[j, :k] = dg
            iupper[j, :k - 1] = up
            lo, dg, up = st.explicit_coefficients
            elower[j, :k - 1] = lo
            ediag[j, :k] = dg
            eupper[j, :k - 1] = up
            v0[j] = st.surface_volume
        # Cross-electrode batches stack many identical matrices (WEs
        # sharing grid/diffusivity/dt); eliminate each distinct one once.
        factor = factor_tridiagonal_shared(ilower, idiag, iupper)
        if replicas > 1:
            factor = factor.tile(replicas)
            elower, ediag, eupper, v0, sizes = (
                np.concatenate([a] * replicas, axis=0)
                for a in (elower, ediag, eupper, v0, sizes))
            self.steppers = steppers * replicas
        self.sizes = sizes
        self.n_systems = m * replicas
        self.n_nodes = n
        self._v0 = v0
        self._elower, self._ediag, self._eupper = elower, ediag, eupper
        self._factor = factor
        self._responses: np.ndarray | None = None
        self._volumes: np.ndarray | None = None

    # -- state packing -------------------------------------------------------

    def stack_states(self, fields) -> np.ndarray:
        """Pack per-system profiles into one zero-padded (M, N) array."""
        fields = [np.asarray(field, dtype=float) for field in fields]
        if len(fields) != self.n_systems:
            raise SimulationError(
                f"got {len(fields)} profiles for {self.n_systems} systems")
        lengths = np.asarray([field.size for field in fields], dtype=int)
        bad = np.flatnonzero(lengths != self.sizes)
        if bad.size:
            j = int(bad[0])
            raise SimulationError(
                f"profile {j} has {fields[j].size} nodes, grid has "
                f"{self.sizes[j]}")
        state = np.zeros((self.n_systems, self.n_nodes))
        # One masked assignment packs every profile: the mask walks the
        # rows in order and np.concatenate supplies the values in the
        # same row-major order.
        mask = np.arange(self.n_nodes) < self.sizes[:, None]
        state[mask] = np.concatenate(fields)
        return state

    def unstack(self, state: np.ndarray) -> list[np.ndarray]:
        """Split a stacked state back into per-system profiles (copies)."""
        return [state[j, :self.sizes[j]].copy()
                for j in range(self.n_systems)]

    # -- batched stepping ------------------------------------------------------

    def explicit_rhs(self, state: np.ndarray) -> np.ndarray:
        """(I + dt/2 A) applied to every stacked profile at once."""
        rhs = self._ediag * state
        rhs[:, :-1] += self._eupper * state[:, 1:]
        rhs[:, 1:] += self._elower * state[:, :-1]
        return rhs

    def solve_implicit(self, rhs: np.ndarray) -> np.ndarray:
        """(I - dt/2 A) x = rhs for every stacked system (prefactored)."""
        return self._factor.solve(rhs)

    def step(self, state: np.ndarray,
             surface_flux: np.ndarray | None = None) -> np.ndarray:
        """Advance every system one dt with explicit surface removal.

        ``surface_flux`` is one removal flux per system, mol/(m^2 s)
        (sign convention of :class:`~repro.chem.diffusion.
        CrankNicolsonDiffusion`); ``None`` means sealed surfaces.
        """
        rhs = self.explicit_rhs(state)
        if surface_flux is not None:
            flux = np.asarray(surface_flux, dtype=float)
            rhs[:, 0] -= self.dt * flux / self._v0
        return self.solve_implicit(rhs)

    def step_linear_surface(self, state: np.ndarray, a: np.ndarray,
                            b: np.ndarray) -> np.ndarray:
        """Advance with per-system implicit surface rates ``J = a + b*c0``.

        Mirrors :meth:`~repro.chem.diffusion.CrankNicolsonDiffusion.
        step_linear_surface` element for element: the slope is a
        rank-one matrix update at the surface node, resolved through the
        cached surface responses (Sherman-Morrison) so no system is ever
        refactored, however the slopes move between steps.
        """
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.shape != (self.n_systems,) or b.shape != (self.n_systems,):
            raise SimulationError(
                "linear-surface coefficients must be one (a, b) per system")
        if np.any(b < 0.0):
            raise SimulationError(
                "linearised surface-rate slopes must be >= 0")
        rhs = self.explicit_rhs(state)
        rhs[:, 0] -= self.dt * a / self._v0
        u = self.solve_implicit(rhs)
        w = self.surface_responses()
        sb = self.dt * b / self._v0
        c0 = u[:, 0] / (1.0 + sb * w[:, 0])
        return u - (sb * c0)[:, None] * w

    # -- shared-boundary helpers ---------------------------------------------

    def surface_responses(self) -> np.ndarray:
        """(M, N) matrix of every system's unit-surface-source response.

        Row j is the stepper's own cached
        :meth:`~repro.chem.diffusion.CrankNicolsonDiffusion.
        surface_response`, zero-padded, so Schur-complement couplings
        built on the batch agree exactly with the scalar path.
        """
        if self._responses is None:
            self._responses = self.stack_states(
                [st.surface_response() for st in self.steppers])
        return self._responses

    @property
    def surface_volumes(self) -> np.ndarray:
        """Surface finite-volume cell widths, one per system."""
        return self._v0

    def total_mass(self, state: np.ndarray) -> np.ndarray:
        """Per-system mass per unit area, mol/m^2 (padding excluded)."""
        if self._volumes is None:
            self._volumes = self.stack_states(
                [st.grid.cell_volumes for st in self.steppers])
        return (self._volumes * state).sum(axis=1)
