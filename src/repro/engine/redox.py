"""Batched coupled ox/red Butler-Volmer channels — the voltammetry hot path.

The scalar CV/DPV simulators advance one
:class:`~repro.measurement.voltammetry._RedoxChannelSimulator` at a time:
per sample, per channel, two explicit applications and two tridiagonal
solves, each an O(N) pure-Python recurrence.  :class:`RedoxChannelBatch`
stacks all 2M fields (oxidised and reduced, every channel) into one
``(2M, N)`` state and advances the whole sweep with **one** batched
solve per time step.

Only the O(M) Butler-Volmer surface coupling stays scalar — ``math.exp``
per channel, exactly as the scalar path computes it — so the batched
currents match the per-channel simulators bit for bit.

Channel contract (duck-typed, satisfied by ``_RedoxChannelSimulator``):
``solver`` (a :class:`~repro.chem.diffusion.CrankNicolsonDiffusion`),
initial ``c_ox``/``c_red`` profiles, and the scalars ``n`` (electrons),
``k0``, ``alpha``, ``e_formal``.  Flux sign convention follows the
scalar simulator: positive flux = net reduction (ox consumed at the
surface, red produced).
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem import constants as C
from repro.engine.batch import BatchCrankNicolson
from repro.errors import SimulationError

__all__ = ["RedoxChannelBatch"]


class RedoxChannelBatch:
    """Advance every coupled ox/red channel of one sweep in lockstep."""

    def __init__(self, channels) -> None:
        channels = tuple(channels)
        if not channels:
            raise SimulationError("a redox batch needs at least one channel")
        self.channels = channels
        m = len(channels)
        self._m = m
        # One stacked operator over 2M systems: rows [0, M) hold the
        # oxidised fields, rows [M, 2M) the reduced fields, so both
        # solves of the scalar path fuse into one sweep on a single
        # tiled factorization (each matrix is eliminated only once).
        self._cn = BatchCrankNicolson([ch.solver for ch in channels],
                                      replicas=2)
        self._state = self._cn.stack_states(
            [ch.c_ox for ch in channels] + [ch.c_red for ch in channels])
        self._n_electrons = [int(ch.n) for ch in channels]
        self._k0 = [float(ch.k0) for ch in channels]
        self._alpha = [float(ch.alpha) for ch in channels]
        self._e_formal = [float(ch.e_formal) for ch in channels]
        self._s = [float(ch.solver.surface_source_scale) for ch in channels]
        w0 = [float(ch.solver.surface_response()[0]) for ch in channels]
        self._sw0 = [self._s[j] * w0[j] for j in range(m)]
        self._w = self._cn.surface_responses()  # (2M, N), rows duplicated

    @property
    def batch_size(self) -> int:
        """Channels advanced per step (fluxes returned per call)."""
        return self._m

    @property
    def n_electrons(self) -> list[int]:
        return list(self._n_electrons)

    def step(self, e_applied) -> np.ndarray:
        """Advance all channels one dt at ``e_applied``; return fluxes.

        ``e_applied`` is one shared potential (a scalar) or a per-channel
        potential *program* of shape ``(M,)`` — what lets sweeps with
        different waveforms fuse into one batch.  The returned array
        holds each channel's current-defining reduction flux J,
        mol/(m^2 s), positive = reduction — the same quantity the scalar
        simulator's ``step`` returns.
        """
        m = self._m
        e = np.asarray(e_applied, dtype=float)
        if e.ndim == 0:
            potentials = [float(e)] * m
        elif e.shape == (m,):
            potentials = [float(v) for v in e]
        else:
            raise SimulationError(
                f"per-channel potentials must be a scalar or have shape "
                f"({m},); got shape {e.shape}")
        u = self._cn.solve_implicit(self._cn.explicit_rhs(self._state))
        f = C.F_OVER_RT
        fluxes = np.empty(m)
        source = np.empty(2 * m)
        for j in range(m):
            x = self._n_electrons[j] * f * (potentials[j]
                                            - self._e_formal[j])
            x = min(max(x, -500.0), 500.0)
            kf = self._k0[j] * math.exp(-self._alpha[j] * x)
            kb = self._k0[j] * math.exp((1.0 - self._alpha[j]) * x)
            denominator = 1.0 + self._sw0[j] * (kf + kb)
            flux = (kf * float(u[j, 0]) - kb * float(u[j + m, 0])) \
                / denominator
            fluxes[j] = flux
            scaled = flux * self._s[j]
            source[j] = -scaled        # ox field loses the reduced amount
            source[j + m] = scaled     # red field gains it
        self._state = np.clip(u + source[:, None] * self._w, 0.0, None)
        return fluxes

    def sync_back(self) -> None:
        """Write the batched profiles back onto the channel objects."""
        profiles = self._cn.unstack(self._state)
        for j, ch in enumerate(self.channels):
            ch.c_ox = profiles[j]
            ch.c_red = profiles[j + self._m]
