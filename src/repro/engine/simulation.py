"""SimulationEngine: the batch-stepping front door for protocols.

Every measurement protocol bottoms out in the same inner loop — "advance
all diffusion systems one dt, collect one flux per channel" — and this
facade is the single entry point for it.  Cyclic voltammetry,
differential pulse voltammetry, chronoamperometry and (through them) the
multiplexed panel construct an engine around their scalar channel or
mechanism objects and call :meth:`step` once per sample; the engine
advances every system in one batched tridiagonal solve.

The scalar objects remain the reference implementation: an engine built
from them reproduces their trajectories bit for bit (see
``tests/test_engine.py``), which is the guarantee that let the protocols
adopt the batched path without moving any bench result.
"""

from __future__ import annotations

import numpy as np

from repro.engine.mechanisms import MechanismBatch
from repro.engine.redox import RedoxChannelBatch

__all__ = ["SimulationEngine"]


class SimulationEngine:
    """Facade over the batched steppers the protocols route through."""

    def __init__(self, stepper) -> None:
        self._stepper = stepper

    @classmethod
    def for_redox_channels(cls, channels) -> "SimulationEngine":
        """Batch the coupled ox/red channels of one CV/DPV sweep."""
        return cls(RedoxChannelBatch(channels))

    @classmethod
    def for_mechanisms(cls, mechanisms) -> "SimulationEngine":
        """Batch the surface mechanisms of one chronoamperometric dwell."""
        return cls(MechanismBatch(mechanisms))

    @property
    def stepper(self):
        """The underlying batch stepper (redox or mechanism batch)."""
        return self._stepper

    @property
    def batch_size(self) -> int:
        """Channels/mechanisms advanced per step."""
        return self._stepper.batch_size

    def step(self, e_applied=None) -> np.ndarray:
        """Advance every system one dt; return one flux per channel.

        Potential-programmed batches (redox channels) require
        ``e_applied`` — one shared scalar, or a per-channel array for
        batches fusing sweeps with different potential programs;
        autonomous batches (chronoamperometric mechanisms) take none.
        """
        if e_applied is None:
            return self._stepper.step()
        if np.ndim(e_applied) == 0:
            return self._stepper.step(float(e_applied))
        return self._stepper.step(np.asarray(e_applied, dtype=float))

    def run_sweep(self, potentials: np.ndarray) -> np.ndarray:
        """Drive a whole potential program; return (n_samples, M) fluxes.

        Convenience for benchmarks and analyses that only need the flux
        matrix; protocols keep their own per-sample loop so they can mix
        in quasi-static and charging contributions as they go.
        """
        potentials = np.asarray(potentials, dtype=float)
        fluxes = np.empty((potentials.size, self.batch_size))
        for k in range(potentials.size):
            fluxes[k] = self._stepper.step(float(potentials[k]))
        return fluxes

    def sync_back(self) -> None:
        """Write batched state back onto the scalar channel objects."""
        self._stepper.sync_back()
