"""Batched surface mechanisms — the chronoamperometry hot path.

A chronoamperometric dwell carries one diffusion field per electroactive
species (oxidase substrate, CYP channels at fixed potential, direct
oxidisers), each consumed at the surface by a linearised rate
``J = a + b*c0``.  The scalar protocol steps these mechanisms one at a
time; :class:`MechanismBatch` stacks every field into one
:class:`~repro.engine.batch.BatchCrankNicolson` state and advances the
whole dwell with one batched linear-surface solve per sample.

Mechanism contract (duck-typed, satisfied by the protocol's
``_MichaelisMentenMechanism`` and ``_LinearSinkMechanism``): every
mechanism exposes ``solver`` and ``field``; Michaelis-Menten films
additionally expose ``film`` (with ``rate``, ``vmax``, ``km``) and are
Newton-relinearised around the surface concentration each step, while
first-order sinks expose a constant ``rate_constant``.  The rate laws
are *precompiled* at construction: the film ``(vmax, km)`` and sink
rate constants are gathered into flat arrays once, so each step is a
handful of elementwise numpy operations over the surface row with no
per-mechanism Python dispatch.  Every operation applies the scalar
arithmetic in the same left-to-right order the mechanisms' own ``step``
methods use, so batched fluxes still match the scalar path bit for
bit.  The surface slopes enter as rank-one Sherman-Morrison corrections
(:meth:`BatchCrankNicolson.step_linear_surface`), so no matrix is ever
refactored, however the Newton relinearisation moves.
"""

from __future__ import annotations

import numpy as np

from repro.engine.batch import BatchCrankNicolson
from repro.errors import SimulationError

__all__ = ["MechanismBatch"]


class MechanismBatch:
    """Advance every surface mechanism of one dwell in lockstep."""

    def __init__(self, mechanisms) -> None:
        if hasattr(mechanisms, "values"):
            mechanisms = mechanisms.values()
        mechanisms = tuple(mechanisms)
        if not mechanisms:
            raise SimulationError(
                "a mechanism batch needs at least one mechanism")
        for mech in mechanisms:
            if not (hasattr(mech, "film") or hasattr(mech, "rate_constant")):
                raise SimulationError(
                    "mechanisms must expose 'film' (Michaelis-Menten) or "
                    "'rate_constant' (first-order sink)")
        self.mechanisms = mechanisms
        self._m = len(mechanisms)
        is_film = np.asarray([hasattr(mech, "film") for mech in mechanisms])
        # Precompiled step program: the rate-law parameters, gathered by
        # kind into flat arrays once, so step() never touches a
        # mechanism object again.
        self._film_idx = np.flatnonzero(is_film)
        self._sink_idx = np.flatnonzero(~is_film)
        self._vmax = np.asarray([mechanisms[j].film.vmax
                                 for j in self._film_idx], dtype=float)
        self._km = np.asarray([mechanisms[j].film.km
                               for j in self._film_idx], dtype=float)
        self._rate_constants = np.asarray([mechanisms[j].rate_constant
                                           for j in self._sink_idx],
                                          dtype=float)
        self._cn = BatchCrankNicolson([mech.solver for mech in mechanisms])
        self._state = self._cn.stack_states(
            [mech.field for mech in mechanisms])

    @property
    def batch_size(self) -> int:
        """Mechanisms advanced per step (fluxes returned per call)."""
        return self._m

    def step(self) -> np.ndarray:
        """Advance all mechanisms one dt; return their reaction fluxes.

        Fluxes are mol/(m^2 s) in each mechanism's own convention (the
        value its scalar ``step`` would have returned); pair them with
        ``mechanism.current(area, flux)`` for signed currents.
        """
        a = np.zeros(self._m)
        b = np.zeros(self._m)
        c0 = self._state[:, 0]
        if self._film_idx.size:
            cf = c0[self._film_idx]
            cpos = np.maximum(cf, 0.0)
            rate = self._vmax * cpos / (self._km + cpos)
            # d(rate)/dc at c0 — always >= 0, keeps the matrix dominant.
            slope = self._vmax * self._km / (self._km + cpos) ** 2
            a[self._film_idx] = rate - slope * cf
            b[self._film_idx] = slope
        if self._sink_idx.size:
            b[self._sink_idx] = self._rate_constants
        self._state = self._cn.step_linear_surface(self._state, a, b)
        c0 = self._state[:, 0]
        fluxes = np.empty(self._m)
        if self._film_idx.size:
            cpos = np.maximum(c0[self._film_idx], 0.0)
            fluxes[self._film_idx] = self._vmax * cpos / (self._km + cpos)
        if self._sink_idx.size:
            fluxes[self._sink_idx] = (self._rate_constants
                                      * c0[self._sink_idx])
        return fluxes

    def sync_back(self) -> None:
        """Write the batched profiles back onto the mechanism objects.

        Call before mutating mechanisms externally (e.g. an injection
        lifting bulk boundaries) and rebuild the batch afterwards.
        """
        for mech, field in zip(self.mechanisms,
                               self._cn.unstack(self._state)):
            mech.field = field
