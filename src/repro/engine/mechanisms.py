"""Batched surface mechanisms — the chronoamperometry hot path.

A chronoamperometric dwell carries one diffusion field per electroactive
species (oxidase substrate, CYP channels at fixed potential, direct
oxidisers), each consumed at the surface by a linearised rate
``J = a + b*c0``.  The scalar protocol steps these mechanisms one at a
time; :class:`MechanismBatch` stacks every field into one
:class:`~repro.engine.batch.BatchCrankNicolson` state and advances the
whole dwell with one batched linear-surface solve per sample.

Mechanism contract (duck-typed, satisfied by the protocol's
``_MichaelisMentenMechanism`` and ``_LinearSinkMechanism``): every
mechanism exposes ``solver`` and ``field``; Michaelis-Menten films
additionally expose ``film`` (with ``rate``, ``vmax``, ``km``) and are
Newton-relinearised around the surface concentration each step, while
first-order sinks expose a constant ``rate_constant``.  The O(M) rate
laws stay scalar — identical arithmetic to the mechanisms' own ``step``
methods — so batched fluxes match the scalar path bit for bit.  The
surface slopes enter as rank-one Sherman-Morrison corrections
(:meth:`BatchCrankNicolson.step_linear_surface`), so no matrix is ever
refactored, however the Newton relinearisation moves.
"""

from __future__ import annotations

import numpy as np

from repro.engine.batch import BatchCrankNicolson
from repro.errors import SimulationError

__all__ = ["MechanismBatch"]


class MechanismBatch:
    """Advance every surface mechanism of one dwell in lockstep."""

    def __init__(self, mechanisms) -> None:
        if hasattr(mechanisms, "values"):
            mechanisms = mechanisms.values()
        mechanisms = tuple(mechanisms)
        if not mechanisms:
            raise SimulationError(
                "a mechanism batch needs at least one mechanism")
        for mech in mechanisms:
            if not (hasattr(mech, "film") or hasattr(mech, "rate_constant")):
                raise SimulationError(
                    "mechanisms must expose 'film' (Michaelis-Menten) or "
                    "'rate_constant' (first-order sink)")
        self.mechanisms = mechanisms
        self._m = len(mechanisms)
        self._is_film = [hasattr(mech, "film") for mech in mechanisms]
        self._cn = BatchCrankNicolson([mech.solver for mech in mechanisms])
        self._state = self._cn.stack_states(
            [mech.field for mech in mechanisms])

    @property
    def batch_size(self) -> int:
        """Mechanisms advanced per step (fluxes returned per call)."""
        return self._m

    def step(self) -> np.ndarray:
        """Advance all mechanisms one dt; return their reaction fluxes.

        Fluxes are mol/(m^2 s) in each mechanism's own convention (the
        value its scalar ``step`` would have returned); pair them with
        ``mechanism.current(area, flux)`` for signed currents.
        """
        a = np.empty(self._m)
        b = np.empty(self._m)
        for j, mech in enumerate(self.mechanisms):
            if self._is_film[j]:
                c0 = float(self._state[j, 0])
                film = mech.film
                rate = film.rate(c0)
                # d(rate)/dc at c0 — always >= 0, keeps the matrix dominant.
                slope = film.vmax * film.km / (film.km + max(c0, 0.0)) ** 2
                a[j] = rate - slope * c0
                b[j] = slope
            else:
                a[j] = 0.0
                b[j] = mech.rate_constant
        self._state = self._cn.step_linear_surface(self._state, a, b)
        fluxes = np.empty(self._m)
        for j, mech in enumerate(self.mechanisms):
            c0 = float(self._state[j, 0])
            if self._is_film[j]:
                fluxes[j] = mech.film.rate(c0)
            else:
                fluxes[j] = mech.rate_constant * c0
        return fluxes

    def sync_back(self) -> None:
        """Write the batched profiles back onto the mechanism objects.

        Call before mutating mechanisms externally (e.g. an injection
        lifting bulk boundaries) and rebuild the batch afterwards.
        """
        for mech, field in zip(self.mechanisms,
                               self._cn.unstack(self._state)):
            mech.field = field
