"""Multi-assay fleet scheduling on the shared batched engine.

The platform's north star is many concurrent assays through one compute
core.  PR 1 batched the systems *within* one protocol run; this module
lifts batching two levels higher:

- :class:`DwellBatch` advances the surface mechanisms of **many**
  chronoamperometric dwells — different working electrodes, different
  cells — in lockstep through one :class:`~repro.engine.simulation.
  SimulationEngine` solve per time step.  Dwells are duck-typed (see
  :class:`~repro.measurement.chronoamperometry.ChronoDwell`): anything
  exposing ``mechanisms``/``injections``/``initial_current``/
  ``apply_injection_events``/``current_from_fluxes`` can join.  Because
  every per-system operation of the batched solver is element-for-element
  identical however many rows are stacked, a fused group reproduces each
  dwell's standalone trajectory bit for bit.

- :class:`AssayScheduler` accepts N ``(cell, chain)`` assay jobs
  (:class:`AssayJob`), plans every panel's dwells up front, groups
  compatible dwells (same record length and time step) across cells into
  fused :class:`DwellBatch` solves, interleaves the CV sweeps in job
  order, and assembles one per-job
  :class:`~repro.measurement.panel.PanelResult` each — bit-identical to
  running :class:`~repro.measurement.panel.PanelProtocol` per cell,
  because chemistry consumes no randomness and each job's RNG stream is
  drawn in its original per-electrode order.

- :meth:`AssayScheduler.run_iter` is the *streaming* form of the same
  pass: it yields one :class:`FleetItem` per job, in job order, as each
  assay's dwells drain from the fused batches.  Dwell groups are
  simulated lazily — a group runs the first time a job that contributed
  dwells to it is assembled — so a consumer digests job ``k``'s result
  while jobs ``k+1..N`` are still waiting on digitisation, and a fleet
  never has to materialise a full :class:`FleetResult` to be consumed.
  :meth:`AssayScheduler.run_many` is now simply ``run_iter`` drained
  into a :class:`FleetResult`, so the two paths cannot diverge.

CV sweeps fuse across cells too: :class:`SweepBatch` stacks the redox
channels of many planned sweeps (:class:`~repro.measurement.voltammetry.
CvSweep`) into one engine with a per-channel potential *program*, so
sweeps with different waveforms advance together as long as they share
one time axis.  Digitisation is group-level as well: each job's per-WE
noise streams are pre-drawn from its own generator in electrode order
(the exact draws the sequential path makes), and every fused group then
runs through one vectorised
:meth:`~repro.electronics.chain.AcquisitionChain.digitize_batch` call
per transform-compatible chain cluster.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.simulation import SimulationEngine
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.electronics.chain import AcquisitionChain
    from repro.measurement.panel import PanelProtocol, PanelResult
    from repro.sensors.cell import ElectrochemicalCell

__all__ = ["DwellBatch", "SweepBatch", "AssayJob", "FleetItem",
           "FleetResult", "AssayScheduler"]

_NO_FLUXES = np.empty(0)


class DwellBatch:
    """Advance many chronoamperometric dwells through one fused engine.

    Parameters
    ----------
    dwells:
        Dwell objects (duck-typed, e.g. :class:`~repro.measurement.
        chronoamperometry.ChronoDwell`); their mechanisms are stacked in
        dwell order into one :class:`~repro.engine.mechanisms.
        MechanismBatch`.
    times:
        The shared uniform sample times, seconds; every dwell must have
        been built for this time step.
    """

    def __init__(self, dwells, times: np.ndarray) -> None:
        self.dwells = tuple(dwells)
        if not self.dwells:
            raise SimulationError("a dwell batch needs at least one dwell")
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise SimulationError("a dwell batch needs at least two samples")
        spacing = float(times[1] - times[0])
        for dwell in self.dwells:
            if not np.isclose(spacing, dwell.dt, rtol=1e-9, atol=0.0):
                raise SimulationError(
                    f"dwell {getattr(dwell, 'we_name', '?')!r} was built "
                    f"for dt={dwell.dt!r} but the batch time axis is "
                    f"spaced {spacing!r}")
        self.times = times
        # Injection checks are per step; only dwells that actually carry
        # a schedule need scanning.
        self._scheduled = tuple(d for d in self.dwells
                                if d.injections.injections)
        #: Fused engine steps actually solved; set by :meth:`simulate`.
        self.n_solve_steps = 0

    @property
    def n_dwells(self) -> int:
        return len(self.dwells)

    @property
    def batch_size(self) -> int:
        """Diffusion systems fused per solve (sum over dwells)."""
        return sum(len(d.mechanisms) for d in self.dwells)

    def _build_engine(self):
        """One engine over every dwell's mechanisms, plus per-dwell spans."""
        mechanisms: list = []
        spans: list[tuple[int, int]] = []
        for dwell in self.dwells:
            start = len(mechanisms)
            mechanisms.extend(dwell.mechanisms.values())
            spans.append((start, len(mechanisms)))
        engine = (SimulationEngine.for_mechanisms(mechanisms)
                  if mechanisms else None)
        return engine, spans

    def _compile_injection_program(self, n: int) -> dict:
        """Map step index -> [(dwell, events)] for every scheduled event.

        The schedules are static, so the per-step window scan the
        sequential loop performed can run once, up front; the hot loop
        then only probes a dict.
        """
        program: dict[int, list] = {}
        if not self._scheduled:
            return program
        t_prev = 0.0
        for k in range(1, n):
            t_now = float(self.times[k])
            for dwell in self._scheduled:
                events = dwell.injections.events_between(t_prev, t_now)
                if events:
                    program.setdefault(k, []).append((dwell, events))
            t_prev = t_now
        return program

    def _flush_segment(self, currents: np.ndarray,
                       flux_hist: np.ndarray | None, spans,
                       lo: int, hi: int) -> None:
        """Assemble currents for steps [lo, hi) from the flux history.

        Within an injection-free segment each dwell's mechanism set is
        fixed, so ``static + sum(coef * flux)`` vectorises over the
        whole segment.  Each elementwise add runs in the same
        left-to-right order ``current_from_fluxes`` accumulates, which
        keeps the assembled rows bit-identical to the per-step scalar
        sum (no reductions that would reassociate the terms).
        """
        if hi <= lo:
            return
        for i, dwell in enumerate(self.dwells):
            start, stop = spans[i]
            row = currents[i]
            coefficients = getattr(dwell, "current_coefficients", None)
            if coefficients is None or flux_hist is None:
                # Duck-typed dwells without the compiled form keep the
                # per-sample reference path.
                for k in range(lo, hi):
                    fluxes = (flux_hist[start:stop, k]
                              if flux_hist is not None else _NO_FLUXES)
                    row[k] = dwell.current_from_fluxes(fluxes)
                continue
            row[lo:hi] = dwell.static
            for p, coef in enumerate(coefficients()):
                row[lo:hi] += coef * flux_hist[start + p, lo:hi]

    def simulate(self) -> np.ndarray:
        """Integrate every dwell; return (n_dwells, n_samples) currents.

        Row ``i`` is dwell ``i``'s true (pre-chain) cell current — the
        exact array its standalone
        :meth:`~repro.measurement.chronoamperometry.Chronoamperometry.
        simulate_true_current` loop would produce.  The schedule is
        compiled before stepping: injection windows are resolved into a
        step-indexed program, the engine's fluxes are recorded into one
        history matrix, and currents assemble per injection-free
        segment as vectorised ``static + coef * flux`` rows.
        """
        n = self.times.size
        currents = np.empty((self.n_dwells, n))
        for i, dwell in enumerate(self.dwells):
            currents[i, 0] = dwell.initial_current()
        program = self._compile_injection_program(n)
        engine, spans = self._build_engine()
        flux_hist = (np.empty((engine.batch_size, n))
                     if engine is not None else None)
        seg_start = 1
        steps = 0
        for k in range(1, n):
            pending = program.get(k)
            if pending:
                # Injections mutate mechanism objects: flush the closed
                # segment, drain the batched state back, refresh the
                # affected dwells, rebuild.
                self._flush_segment(currents, flux_hist, spans,
                                    seg_start, k)
                if engine is not None:
                    engine.sync_back()
                for dwell, events in pending:
                    dwell.apply_injection_events(events)
                engine, spans = self._build_engine()
                flux_hist = (np.empty((engine.batch_size, n))
                             if engine is not None else None)
                seg_start = k
            if engine is not None:
                flux_hist[:, k] = engine.step()
                steps += 1
        self._flush_segment(currents, flux_hist, spans, seg_start, n)
        self.n_solve_steps = steps
        return currents


class SweepBatch:
    """Advance many planned CV sweeps through one fused engine.

    Parameters
    ----------
    sweeps:
        Planned sweep objects (duck-typed, e.g.
        :class:`~repro.measurement.voltammetry.CvSweep`): each exposes
        ``times``, ``channels``, ``potentials`` and
        ``row_from_fluxes``.  All sweeps must share one time axis (same
        record duration and sample rate); each keeps its *own*
        potential program, so sweeps over different windows fuse.

    Every channel of every sweep becomes one row of a shared
    :class:`~repro.engine.redox.RedoxChannelBatch`; one step per sample
    advances the whole group, driving each row with its sweep's
    potential at that sample.  Because the batched solver's per-system
    arithmetic is element-for-element independent of how many rows are
    stacked, each sweep's assembled current row is bit-identical to its
    standalone run.
    """

    def __init__(self, sweeps) -> None:
        self.sweeps = tuple(sweeps)
        if not self.sweeps:
            raise SimulationError("a sweep batch needs at least one sweep")
        times = np.asarray(self.sweeps[0].times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise SimulationError("a sweep batch needs at least two samples")
        for sweep in self.sweeps[1:]:
            other = np.asarray(sweep.times, dtype=float)
            if other.shape != times.shape or not np.array_equal(other,
                                                                times):
                raise SimulationError(
                    f"sweep {getattr(sweep, 'we_name', '?')!r} does not "
                    f"share the batch time axis")
        self.times = times
        channels: list = []
        spans: list[tuple[int, int]] = []
        for sweep in self.sweeps:
            start = len(channels)
            channels.extend(sweep.channels)
            spans.append((start, len(channels)))
        self._spans = spans
        self._engine = (SimulationEngine.for_redox_channels(channels)
                        if channels else None)
        if channels:
            # The compiled potential program: row j is the potential of
            # channel j's own sweep at every sample.
            programs = np.empty((len(channels), times.size))
            for (start, stop), sweep in zip(spans, self.sweeps):
                programs[start:stop, :] = np.asarray(sweep.potentials,
                                                     dtype=float)
            self._programs = programs
        else:
            self._programs = None
        #: Fused engine steps actually solved; set by :meth:`simulate`.
        self.n_solve_steps = 0

    @property
    def n_sweeps(self) -> int:
        return len(self.sweeps)

    @property
    def batch_size(self) -> int:
        """Redox channels fused per solve (sum over sweeps)."""
        return sum(len(sweep.channels) for sweep in self.sweeps)

    def simulate(self) -> list[np.ndarray]:
        """Integrate every sweep; return one true-current row per sweep.

        Row ``i`` is sweep ``i``'s pre-chain cell current — the exact
        array its standalone :meth:`~repro.measurement.voltammetry.
        CyclicVoltammetry.simulate_true_current` loop would produce.
        """
        n = self.times.size
        if self._engine is not None:
            flux_hist = np.empty((self._engine.batch_size, n))
            for k in range(n):
                flux_hist[:, k] = self._engine.step(self._programs[:, k])
            self.n_solve_steps = n
        else:
            flux_hist = None
        rows = []
        for (start, stop), sweep in zip(self._spans, self.sweeps):
            if flux_hist is not None:
                rows.append(sweep.row_from_fluxes(flux_hist[start:stop]))
            else:
                rows.append(sweep.row_from_fluxes(
                    np.empty((0, n))))
        return rows


@dataclass(frozen=True)
class AssayJob:
    """One assay the fleet scheduler should run: a cell through a chain.

    ``rng`` seeds the job's acquisition noise (defaults to the panel
    protocol's default stream); ``protocol`` overrides the scheduler's
    shared protocol for this job (dwells only fuse across jobs whose
    protocols agree on record length and sample rate).
    """

    cell: "ElectrochemicalCell"
    chain: "AcquisitionChain"
    name: str = ""
    rng: np.random.Generator | None = None
    protocol: "PanelProtocol | None" = None


@dataclass(frozen=True)
class FleetItem:
    """One streamed fleet completion, yielded by
    :meth:`AssayScheduler.run_iter` in job order.

    ``n_fused_dwells``/``n_dwell_groups``/``n_solve_steps`` are
    cumulative over the dwell groups simulated *so far*; on the last
    item they equal the totals a :class:`FleetResult` of the same jobs
    would report.  ``n_fused_sweeps``/``n_sweep_groups`` count the CV
    sweeps fused so far and the sweep groups they drained through.
    ``n_solve_steps`` counts the fused engine steps actually solved
    (dwell and sweep engines alike) — the observable a job-level cache
    uses to prove a warm re-run never touched the engine.
    """

    index: int
    name: str
    result: "PanelResult"
    n_jobs: int
    n_fused_dwells: int
    n_dwell_groups: int
    n_solve_steps: int = 0
    n_fused_sweeps: int = 0
    n_sweep_groups: int = 0


@dataclass(frozen=True)
class FleetResult:
    """Everything one scheduler pass over N assay jobs produced."""

    results: tuple["PanelResult", ...]
    names: tuple[str, ...]
    n_fused_dwells: int
    n_dwell_groups: int
    n_solve_steps: int = 0
    n_fused_sweeps: int = 0
    n_sweep_groups: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def by_name(self) -> dict[str, "PanelResult"]:
        return dict(zip(self.names, self.results))

    def result_for(self, name: str) -> "PanelResult":
        """The panel result of the named job; raises when unknown."""
        for job_name, result in zip(self.names, self.results):
            if job_name == name:
                return result
        raise SimulationError(
            f"no job named {name!r} in this fleet "
            f"(have: {', '.join(self.names)})")


@dataclass
class _JobPlan:
    """One job's planned execution: dwells, sweeps and, later, their
    simulated rows, pre-drawn noise streams and digitised readings."""

    job: AssayJob
    protocol: "PanelProtocol"
    dwells: list = field(default_factory=list)
    sweeps: list = field(default_factory=list)
    rows: dict = field(default_factory=dict)
    cv_rows: dict = field(default_factory=dict)
    noise: dict = field(default_factory=dict)
    readings: dict = field(default_factory=dict)
    generator: "np.random.Generator | None" = None
    #: Whether the protocol supports the fused planning/IO contract
    #: (plan_sweeps + assemble(..., cv_rows=, readings=)).  Duck-typed
    #: protocols without it keep the legacy per-job path.
    fused_io: bool = True


class AssayScheduler:
    """Run many panel assays through one shared batched compute core.

    The scheduler is the fleet-level counterpart of
    :class:`~repro.measurement.panel.PanelProtocol`'s cross-electrode
    batching: it plans every job's chronoamperometric dwells, fuses all
    compatible dwells — across electrodes *and* cells — into single
    :class:`DwellBatch` solves, then digitises and assembles each job in
    its original electrode order so every
    :class:`~repro.measurement.panel.PanelResult` is bit-identical to a
    sequential per-cell run.
    """

    def __init__(self, protocol: "PanelProtocol | None" = None) -> None:
        self.protocol = protocol

    def _default_protocol(self) -> "PanelProtocol":
        from repro.measurement.panel import PanelProtocol

        return self.protocol if self.protocol is not None else PanelProtocol()

    @staticmethod
    def _coerce_job(job) -> AssayJob:
        if isinstance(job, AssayJob):
            return job
        # (cell, chain[, name[, rng]]) tuples for sweep-style callers.
        return AssayJob(*job)

    def run_iter(self, jobs) -> Iterator[FleetItem]:
        """Stream every job's panel result as its dwells drain.

        ``jobs`` is an iterable of :class:`AssayJob` (or ``(cell,
        chain, ...)`` tuples).  Planning and cross-job grouping are
        identical to :meth:`run_many`; dwell groups are then simulated
        *lazily* — a fused :class:`DwellBatch` runs the first time a job
        that contributed dwells to it is assembled — and one
        :class:`FleetItem` is yielded per job, in job order.  Because
        dwell chemistry consumes no randomness and each group's fused
        solve is independent of when it runs, every streamed result is
        bit-identical to its :meth:`run_many` counterpart.
        """
        from repro.electronics.waveform import uniform_sample_times

        default = self._default_protocol()
        plans: list[_JobPlan] = []
        for job in map(self._coerce_job, jobs):
            protocol = job.protocol if job.protocol is not None else default
            fused_io = hasattr(protocol, "plan_sweeps")
            plans.append(_JobPlan(
                job=job, protocol=protocol,
                dwells=protocol.plan_dwells(job.cell, job.chain),
                sweeps=(protocol.plan_sweeps(job.cell, job.chain)
                        if fused_io else []),
                fused_io=fused_io))

        # Silent shadowing in by_name would lose results; fail loudly
        # at scheduling time, before any chemistry runs.
        names = [plan.job.name if plan.job.name else f"job{index}"
                 for index, plan in enumerate(plans)]
        duplicates = sorted(name for name, count in Counter(names).items()
                            if count > 1)
        if duplicates:
            raise SimulationError(
                f"duplicate job names in fleet: {', '.join(duplicates)}")

        # Group compatible work across jobs: one fused solve per
        # distinct (mode, record length, time step).  CA dwells key on
        # the protocol's dwell settings; CV sweeps key on their waveform
        # duration and sample rate — equal values mean an identical
        # time axis, which is all the fused engines need (each sweep
        # carries its own potential program).
        groups: dict[tuple, list[tuple[_JobPlan, object]]] = {}
        plan_keys: list[list[tuple]] = []
        for plan in plans:
            keys: list[tuple] = []
            if plan.dwells:
                key = ("ca", float(plan.protocol.ca_dwell),
                       float(plan.protocol.sample_rate))
                for dwell in plan.dwells:
                    groups.setdefault(key, []).append((plan, dwell))
                keys.append(key)
            for sweep in plan.sweeps:
                key = ("cv", float(sweep.waveform.duration),
                       float(sweep.sample_rate))
                groups.setdefault(key, []).append((plan, sweep))
                if key not in keys:
                    keys.append(key)
            plan_keys.append(keys)

        # Pre-draw every job's acquisition noise from its own generator
        # in electrode order — the exact per-WE model.sample calls the
        # sequential path makes — so fused groups can digitise in one
        # vectorised pass without reordering any RNG stream.
        for plan in plans:
            job = plan.job
            plan.generator = (job.rng if job.rng is not None
                              else np.random.default_rng(2011))
            if plan.fused_io:
                self._predraw_noise(plan, uniform_sample_times)

        simulated: set[tuple] = set()
        n_fused = 0
        n_ca_groups = 0
        n_steps = 0
        n_fused_sweeps = 0
        n_sweep_groups = 0
        try:
            for index, plan in enumerate(plans):
                for key in plan_keys[index]:
                    if key in simulated:
                        continue
                    simulated.add(key)
                    members = groups[key]
                    if key[0] == "ca":
                        times = uniform_sample_times(key[1], key[2])
                        batch = DwellBatch(
                            [dwell for _, dwell in members], times)
                        n_fused += batch.batch_size
                        n_ca_groups += 1
                        rows = batch.simulate()
                        n_steps += batch.n_solve_steps
                        for i, (member, dwell) in enumerate(members):
                            member.rows[dwell.we_name] = (dwell, times,
                                                          rows[i])
                    else:
                        batch = SweepBatch([sweep for _, sweep in members])
                        n_fused_sweeps += batch.n_sweeps
                        n_sweep_groups += 1
                        times = batch.times
                        rows = batch.simulate()
                        n_steps += batch.n_solve_steps
                        for i, (member, sweep) in enumerate(members):
                            member.cv_rows[sweep.we_name] = (sweep, rows[i])
                    self._digitize_group(times, members, rows)
                job = plan.job
                if plan.fused_io:
                    result = plan.protocol.assemble(
                        job.cell, job.chain, plan.generator, plan.rows,
                        cv_rows=plan.cv_rows, readings=plan.readings)
                else:
                    result = plan.protocol.assemble(job.cell, job.chain,
                                                    plan.generator,
                                                    plan.rows)
                yield FleetItem(index=index, name=names[index],
                                result=result, n_jobs=len(plans),
                                n_fused_dwells=n_fused,
                                n_dwell_groups=n_ca_groups,
                                n_solve_steps=n_steps,
                                n_fused_sweeps=n_fused_sweeps,
                                n_sweep_groups=n_sweep_groups)
        finally:
            # A consumer may abandon the stream mid-fleet (close() or a
            # partial iteration — see repro.api.iter_results).  Drop all
            # planned dwell and simulated-row references immediately so
            # a still-referenced generator object does not pin N cells
            # of per-fleet state; every run_iter call re-plans from its
            # jobs, so a fresh stream is unaffected and bit-identical.
            groups.clear()
            for plan in plans:
                plan.dwells.clear()
                plan.sweeps.clear()
                plan.rows.clear()
                plan.cv_rows.clear()
                plan.noise.clear()
                plan.readings.clear()
            plans.clear()

    def _predraw_noise(self, plan: _JobPlan, uniform_sample_times) -> None:
        """Draw the job's per-WE noise streams in electrode order.

        One ``model.sample(generator, n, fs)`` call per working
        electrode — the same single call ``digitize`` makes, at the
        same arguments (``fs`` reconstructed from the time axis exactly
        as ``digitize`` does), so the generator state after pre-drawing
        matches the sequential path sample for sample.
        """
        chain = plan.job.chain
        sweeps_by_we = {sweep.we_name: sweep for sweep in plan.sweeps}
        ca_times = None
        for we in plan.job.cell.working_electrodes:
            sweep = sweeps_by_we.get(we.name)
            if sweep is not None:
                times = sweep.times
            else:
                if ca_times is None:
                    ca_times = uniform_sample_times(
                        float(plan.protocol.ca_dwell),
                        float(plan.protocol.sample_rate))
                times = ca_times
            fs = 1.0 / float(times[1] - times[0])
            plan.noise[we.name] = chain.noise_model_for(we).sample(
                plan.generator, times.size, fs)

    @staticmethod
    def _digitize_group(times: np.ndarray, members, rows) -> None:
        """Digitise one fused group's rows in vectorised batch calls.

        Members are clustered by their chains' (TIA, ADC) transform —
        the only chain state the noise-supplied ``digitize_batch`` path
        reads — so one call covers every compatible row however many
        jobs contributed.  Noise was pre-drawn per job, which is what
        makes the clustering free of RNG-ordering concerns.
        """
        clusters: dict = {}
        order: list = []
        for i, (plan, unit) in enumerate(members):
            if not plan.fused_io:
                continue
            chain = plan.job.chain
            key = (chain.tia, chain.adc)
            if key not in clusters:
                clusters[key] = []
                order.append(key)
            clusters[key].append(i)
        for key in order:
            indices = clusters[key]
            chain = members[indices[0]][0].job.chain
            stacked = np.asarray([np.asarray(rows[i], dtype=float)
                                  for i in indices])
            wes = [members[i][1].we for i in indices]
            noise = np.asarray([members[i][0].noise[members[i][1].we_name]
                                for i in indices])
            readings = chain.digitize_batch(times, stacked, wes=wes,
                                            noise=noise)
            for reading, i in zip(readings, indices):
                plan, unit = members[i]
                plan.readings[unit.we_name] = reading

    def run_many(self, jobs) -> FleetResult:
        """Advance every job's panel through the shared engine.

        Drains :meth:`run_iter` into a :class:`FleetResult`; dwell
        chemistry is fused across jobs per compatibility group, and
        acquisition noise is drawn per job from its own generator, in
        the job's electrode order.
        """
        results: list["PanelResult"] = []
        names: list[str] = []
        n_fused = 0
        n_groups = 0
        n_steps = 0
        n_fused_sweeps = 0
        n_sweep_groups = 0
        for item in self.run_iter(jobs):
            results.append(item.result)
            names.append(item.name)
            n_fused = item.n_fused_dwells
            n_groups = item.n_dwell_groups
            n_steps = item.n_solve_steps
            n_fused_sweeps = item.n_fused_sweeps
            n_sweep_groups = item.n_sweep_groups
        return FleetResult(results=tuple(results), names=tuple(names),
                           n_fused_dwells=n_fused,
                           n_dwell_groups=n_groups,
                           n_solve_steps=n_steps,
                           n_fused_sweeps=n_fused_sweeps,
                           n_sweep_groups=n_sweep_groups)
