"""Multi-assay fleet scheduling on the shared batched engine.

The platform's north star is many concurrent assays through one compute
core.  PR 1 batched the systems *within* one protocol run; this module
lifts batching two levels higher:

- :class:`DwellBatch` advances the surface mechanisms of **many**
  chronoamperometric dwells — different working electrodes, different
  cells — in lockstep through one :class:`~repro.engine.simulation.
  SimulationEngine` solve per time step.  Dwells are duck-typed (see
  :class:`~repro.measurement.chronoamperometry.ChronoDwell`): anything
  exposing ``mechanisms``/``injections``/``initial_current``/
  ``apply_injection_events``/``current_from_fluxes`` can join.  Because
  every per-system operation of the batched solver is element-for-element
  identical however many rows are stacked, a fused group reproduces each
  dwell's standalone trajectory bit for bit.

- :class:`AssayScheduler` accepts N ``(cell, chain)`` assay jobs
  (:class:`AssayJob`), plans every panel's dwells up front, groups
  compatible dwells (same record length and time step) across cells into
  fused :class:`DwellBatch` solves, interleaves the CV sweeps in job
  order, and assembles one per-job
  :class:`~repro.measurement.panel.PanelResult` each — bit-identical to
  running :class:`~repro.measurement.panel.PanelProtocol` per cell,
  because chemistry consumes no randomness and each job's RNG stream is
  drawn in its original per-electrode order.

- :meth:`AssayScheduler.run_iter` is the *streaming* form of the same
  pass: it yields one :class:`FleetItem` per job, in job order, as each
  assay's dwells drain from the fused batches.  Dwell groups are
  simulated lazily — a group runs the first time a job that contributed
  dwells to it is assembled — so a consumer digests job ``k``'s result
  while jobs ``k+1..N`` are still waiting on digitisation, and a fleet
  never has to materialise a full :class:`FleetResult` to be consumed.
  :meth:`AssayScheduler.run_many` is now simply ``run_iter`` drained
  into a :class:`FleetResult`, so the two paths cannot diverge.

Only the chronoamperometric dwells fuse across cells: they share a
potential-free autonomous stepping contract.  CV sweeps keep their
per-sweep batched engine (all substrate channels of a sweep advance in
one solve) and are simply scheduled between dwell groups.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.simulation import SimulationEngine
from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.electronics.chain import AcquisitionChain
    from repro.measurement.panel import PanelProtocol, PanelResult
    from repro.sensors.cell import ElectrochemicalCell

__all__ = ["DwellBatch", "AssayJob", "FleetItem", "FleetResult",
           "AssayScheduler"]

_NO_FLUXES = np.empty(0)


class DwellBatch:
    """Advance many chronoamperometric dwells through one fused engine.

    Parameters
    ----------
    dwells:
        Dwell objects (duck-typed, e.g. :class:`~repro.measurement.
        chronoamperometry.ChronoDwell`); their mechanisms are stacked in
        dwell order into one :class:`~repro.engine.mechanisms.
        MechanismBatch`.
    times:
        The shared uniform sample times, seconds; every dwell must have
        been built for this time step.
    """

    def __init__(self, dwells, times: np.ndarray) -> None:
        self.dwells = tuple(dwells)
        if not self.dwells:
            raise SimulationError("a dwell batch needs at least one dwell")
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise SimulationError("a dwell batch needs at least two samples")
        spacing = float(times[1] - times[0])
        for dwell in self.dwells:
            if not np.isclose(spacing, dwell.dt, rtol=1e-9, atol=0.0):
                raise SimulationError(
                    f"dwell {getattr(dwell, 'we_name', '?')!r} was built "
                    f"for dt={dwell.dt!r} but the batch time axis is "
                    f"spaced {spacing!r}")
        self.times = times
        # Injection checks are per step; only dwells that actually carry
        # a schedule need scanning.
        self._scheduled = tuple(d for d in self.dwells
                                if d.injections.injections)
        #: Fused engine steps actually solved; set by :meth:`simulate`.
        self.n_solve_steps = 0

    @property
    def n_dwells(self) -> int:
        return len(self.dwells)

    @property
    def batch_size(self) -> int:
        """Diffusion systems fused per solve (sum over dwells)."""
        return sum(len(d.mechanisms) for d in self.dwells)

    def _build_engine(self):
        """One engine over every dwell's mechanisms, plus per-dwell spans."""
        mechanisms: list = []
        spans: list[tuple[int, int]] = []
        for dwell in self.dwells:
            start = len(mechanisms)
            mechanisms.extend(dwell.mechanisms.values())
            spans.append((start, len(mechanisms)))
        engine = (SimulationEngine.for_mechanisms(mechanisms)
                  if mechanisms else None)
        return engine, spans

    def simulate(self) -> np.ndarray:
        """Integrate every dwell; return (n_dwells, n_samples) currents.

        Row ``i`` is dwell ``i``'s true (pre-chain) cell current — the
        exact array its standalone
        :meth:`~repro.measurement.chronoamperometry.Chronoamperometry.
        simulate_true_current` loop would produce.
        """
        n = self.times.size
        currents = np.empty((self.n_dwells, n))
        for i, dwell in enumerate(self.dwells):
            currents[i, 0] = dwell.initial_current()
        engine, spans = self._build_engine()
        t_prev = 0.0
        steps = 0
        for k in range(1, n):
            t_now = float(self.times[k])
            pending = [(d, d.injections.events_between(t_prev, t_now))
                       for d in self._scheduled]
            pending = [(d, events) for d, events in pending if events]
            if pending:
                # Injections mutate mechanism objects: drain the batched
                # state back, refresh the affected dwells, rebuild.
                if engine is not None:
                    engine.sync_back()
                for dwell, events in pending:
                    dwell.apply_injection_events(events)
                engine, spans = self._build_engine()
            if engine is not None:
                fluxes = engine.step()
                steps += 1
            else:
                fluxes = _NO_FLUXES
            for i, dwell in enumerate(self.dwells):
                start, stop = spans[i]
                currents[i, k] = dwell.current_from_fluxes(
                    fluxes[start:stop])
            t_prev = t_now
        self.n_solve_steps = steps
        return currents


@dataclass(frozen=True)
class AssayJob:
    """One assay the fleet scheduler should run: a cell through a chain.

    ``rng`` seeds the job's acquisition noise (defaults to the panel
    protocol's default stream); ``protocol`` overrides the scheduler's
    shared protocol for this job (dwells only fuse across jobs whose
    protocols agree on record length and sample rate).
    """

    cell: "ElectrochemicalCell"
    chain: "AcquisitionChain"
    name: str = ""
    rng: np.random.Generator | None = None
    protocol: "PanelProtocol | None" = None


@dataclass(frozen=True)
class FleetItem:
    """One streamed fleet completion, yielded by
    :meth:`AssayScheduler.run_iter` in job order.

    ``n_fused_dwells``/``n_dwell_groups``/``n_solve_steps`` are
    cumulative over the dwell groups simulated *so far*; on the last
    item they equal the totals a :class:`FleetResult` of the same jobs
    would report.  ``n_solve_steps`` counts the fused dwell-engine steps
    actually solved — the observable a job-level cache uses to prove a
    warm re-run never touched the engine.
    """

    index: int
    name: str
    result: "PanelResult"
    n_jobs: int
    n_fused_dwells: int
    n_dwell_groups: int
    n_solve_steps: int = 0


@dataclass(frozen=True)
class FleetResult:
    """Everything one scheduler pass over N assay jobs produced."""

    results: tuple["PanelResult", ...]
    names: tuple[str, ...]
    n_fused_dwells: int
    n_dwell_groups: int
    n_solve_steps: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def by_name(self) -> dict[str, "PanelResult"]:
        return dict(zip(self.names, self.results))

    def result_for(self, name: str) -> "PanelResult":
        """The panel result of the named job; raises when unknown."""
        for job_name, result in zip(self.names, self.results):
            if job_name == name:
                return result
        raise SimulationError(
            f"no job named {name!r} in this fleet "
            f"(have: {', '.join(self.names)})")


@dataclass
class _JobPlan:
    """One job's planned execution: its dwells and, later, their rows."""

    job: AssayJob
    protocol: "PanelProtocol"
    dwells: list = field(default_factory=list)
    rows: dict = field(default_factory=dict)


class AssayScheduler:
    """Run many panel assays through one shared batched compute core.

    The scheduler is the fleet-level counterpart of
    :class:`~repro.measurement.panel.PanelProtocol`'s cross-electrode
    batching: it plans every job's chronoamperometric dwells, fuses all
    compatible dwells — across electrodes *and* cells — into single
    :class:`DwellBatch` solves, then digitises and assembles each job in
    its original electrode order so every
    :class:`~repro.measurement.panel.PanelResult` is bit-identical to a
    sequential per-cell run.
    """

    def __init__(self, protocol: "PanelProtocol | None" = None) -> None:
        self.protocol = protocol

    def _default_protocol(self) -> "PanelProtocol":
        from repro.measurement.panel import PanelProtocol

        return self.protocol if self.protocol is not None else PanelProtocol()

    @staticmethod
    def _coerce_job(job) -> AssayJob:
        if isinstance(job, AssayJob):
            return job
        # (cell, chain[, name[, rng]]) tuples for sweep-style callers.
        return AssayJob(*job)

    def run_iter(self, jobs) -> Iterator[FleetItem]:
        """Stream every job's panel result as its dwells drain.

        ``jobs`` is an iterable of :class:`AssayJob` (or ``(cell,
        chain, ...)`` tuples).  Planning and cross-job grouping are
        identical to :meth:`run_many`; dwell groups are then simulated
        *lazily* — a fused :class:`DwellBatch` runs the first time a job
        that contributed dwells to it is assembled — and one
        :class:`FleetItem` is yielded per job, in job order.  Because
        dwell chemistry consumes no randomness and each group's fused
        solve is independent of when it runs, every streamed result is
        bit-identical to its :meth:`run_many` counterpart.
        """
        from repro.electronics.waveform import uniform_sample_times

        default = self._default_protocol()
        plans: list[_JobPlan] = []
        for job in map(self._coerce_job, jobs):
            protocol = job.protocol if job.protocol is not None else default
            plans.append(_JobPlan(
                job=job, protocol=protocol,
                dwells=protocol.plan_dwells(job.cell, job.chain)))

        # Group compatible dwells across jobs: one fused solve per
        # distinct (record length, time step).
        groups: dict[tuple[float, float], list[tuple[_JobPlan, object]]] = {}
        plan_keys: list[tuple[float, float] | None] = []
        for plan in plans:
            key = (float(plan.protocol.ca_dwell),
                   float(plan.protocol.sample_rate))
            for dwell in plan.dwells:
                groups.setdefault(key, []).append((plan, dwell))
            plan_keys.append(key if plan.dwells else None)

        simulated: set[tuple[float, float]] = set()
        n_fused = 0
        n_steps = 0
        try:
            for index, plan in enumerate(plans):
                key = plan_keys[index]
                if key is not None and key not in simulated:
                    simulated.add(key)
                    dwell_time, sample_rate = key
                    members = groups[key]
                    times = uniform_sample_times(dwell_time, sample_rate)
                    batch = DwellBatch([dwell for _, dwell in members],
                                       times)
                    n_fused += batch.batch_size
                    rows = batch.simulate()
                    n_steps += batch.n_solve_steps
                    for i, (member, dwell) in enumerate(members):
                        member.rows[dwell.we_name] = (dwell, times, rows[i])
                job = plan.job
                generator = (job.rng if job.rng is not None
                             else np.random.default_rng(2011))
                result = plan.protocol.assemble(job.cell, job.chain,
                                                generator, plan.rows)
                yield FleetItem(index=index,
                                name=job.name if job.name else f"job{index}",
                                result=result, n_jobs=len(plans),
                                n_fused_dwells=n_fused,
                                n_dwell_groups=len(simulated),
                                n_solve_steps=n_steps)
        finally:
            # A consumer may abandon the stream mid-fleet (close() or a
            # partial iteration — see repro.api.iter_results).  Drop all
            # planned dwell and simulated-row references immediately so
            # a still-referenced generator object does not pin N cells
            # of per-fleet state; every run_iter call re-plans from its
            # jobs, so a fresh stream is unaffected and bit-identical.
            groups.clear()
            for plan in plans:
                plan.dwells.clear()
                plan.rows.clear()
            plans.clear()

    def run_many(self, jobs) -> FleetResult:
        """Advance every job's panel through the shared engine.

        Drains :meth:`run_iter` into a :class:`FleetResult`; dwell
        chemistry is fused across jobs per compatibility group, and
        acquisition noise is drawn per job from its own generator, in
        the job's electrode order.
        """
        results: list["PanelResult"] = []
        names: list[str] = []
        n_fused = 0
        n_groups = 0
        n_steps = 0
        for item in self.run_iter(jobs):
            results.append(item.result)
            names.append(item.name)
            n_fused = item.n_fused_dwells
            n_groups = item.n_dwell_groups
            n_steps = item.n_solve_steps
        return FleetResult(results=tuple(results), names=tuple(names),
                           n_fused_dwells=n_fused,
                           n_dwell_groups=n_groups,
                           n_solve_steps=n_steps)
