"""The paper's contribution: platform-based design-space exploration."""

from repro.core.architecture import (
    PlatformDesign,
    WeAssignment,
    design_from_choices,
)
from repro.core.costs import PlatformCost, cost_of
from repro.core.estimates import DesignEstimates, TargetEstimate, estimate_design
from repro.core.explorer import DesignPoint, ExplorationResult, explore
from repro.core.library import (
    AREA_OPTIONS_M2,
    NANO_OPTIONS,
    NOISE_OPTIONS,
    READOUT_OPTIONS,
    SCAN_RATE_OPTIONS,
    STRUCTURE_OPTIONS,
    ProbeOption,
    probe_options,
)
from repro.core.pareto import dominates, pareto_front, pareto_indices
from repro.core.platform import BiosensingPlatform, PlatformRunResult
from repro.core.report import design_point_report, exploration_report
from repro.core.rules import check_design
from repro.core.spec import (
    design_from_dict,
    design_to_dict,
    load_design,
    load_panel,
    panel_from_dict,
    panel_to_dict,
    save_design,
    save_panel,
)
from repro.core.targets import PanelSpec, TargetSpec, paper_panel_spec

__all__ = [
    "TargetSpec", "PanelSpec", "paper_panel_spec",
    "ProbeOption", "probe_options",
    "AREA_OPTIONS_M2", "NANO_OPTIONS", "STRUCTURE_OPTIONS",
    "READOUT_OPTIONS", "NOISE_OPTIONS", "SCAN_RATE_OPTIONS",
    "WeAssignment", "PlatformDesign", "design_from_choices",
    "TargetEstimate", "DesignEstimates", "estimate_design",
    "PlatformCost", "cost_of",
    "check_design",
    "dominates", "pareto_front", "pareto_indices",
    "DesignPoint", "ExplorationResult", "explore",
    "BiosensingPlatform", "PlatformRunResult",
    "exploration_report", "design_point_report",
    "panel_to_dict", "panel_from_dict", "design_to_dict",
    "design_from_dict", "save_panel", "load_panel", "save_design",
    "load_design",
]
