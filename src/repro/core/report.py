"""Design reports: readable summaries of explorations and platforms."""

from __future__ import annotations

from repro.core.explorer import DesignPoint, ExplorationResult
from repro.io.tables import render_table
from repro.units import si_to_um_conc

__all__ = ["exploration_report", "design_point_report"]


def exploration_report(result: ExplorationResult,
                       max_front_rows: int = 12) -> str:
    """Summarise an exploration: counts, violations, and the front."""
    lines = [
        f"Design-space exploration for panel {result.panel_name!r}",
        f"  candidates evaluated : {result.n_candidates}",
        f"  feasible             : {result.n_feasible}",
        f"  Pareto-optimal       : {len(result.front)}",
    ]
    summary = result.violation_summary()
    if summary:
        lines.append("  most common violations:")
        for head, count in sorted(summary.items(), key=lambda kv: -kv[1])[:5]:
            lines.append(f"    {count:4d} x {head}")
    if result.front:
        rows = []
        for point in sorted(result.front,
                            key=lambda p: p.cost.fabrication_cost)[:max_front_rows]:
            d = point.design
            worst_lod = max(e.lod for e in point.estimates.per_target.values())
            rows.append([
                d.name, d.structure, d.readout, d.noise,
                d.nanostructure or "none",
                f"{d.we_area * 1e6:.2f}",
                f"{point.cost.die_area_mm2:.1f}",
                f"{point.cost.power_w * 1e6:.0f}",
                f"{point.cost.fabrication_cost:.1f}",
                f"{point.cost.assay_time_s:.0f}",
                f"{si_to_um_conc(worst_lod):.0f}",
            ])
        lines.append(render_table(
            ["design", "structure", "readout", "noise", "nano",
             "WE mm^2", "die mm^2", "uW", "cost", "assay s", "worst LOD uM"],
            rows, title="Pareto front (sorted by fabrication cost):"))
    return "\n".join(lines)


def design_point_report(point: DesignPoint) -> str:
    """Full per-target report for one evaluated candidate."""
    d = point.design
    lines = [
        f"Design {d.name!r}: structure={d.structure}, readout={d.readout}, "
        f"noise={d.noise}, nano={d.nanostructure or 'none'}, "
        f"WE={d.we_area * 1e6:.2f} mm^2, scan={d.scan_rate * 1e3:.0f} mV/s",
        f"  electrodes: {d.n_working} WE + {2 * d.n_chambers} RE/CE "
        f"({d.electrode_count} pads), chambers: {d.n_chambers}, "
        f"chains: {d.n_chains}",
        f"  cost: die {point.cost.die_area_mm2:.1f} mm^2, "
        f"power {point.cost.power_w * 1e6:.0f} uW, "
        f"fabrication {point.cost.fabrication_cost:.1f}, "
        f"assay {point.cost.assay_time_s:.0f} s",
    ]
    rows = []
    for target, est in sorted(point.estimates.per_target.items()):
        rows.append([
            target, est.we_name, est.method,
            f"{est.i_max * 1e6:.3f}",
            f"{est.noise_rms * 1e9:.2f}",
            f"{si_to_um_conc(est.lod):.1f}",
            f"{est.response_time:.0f}",
        ])
    lines.append(render_table(
        ["target", "WE", "method", "i_max uA", "noise nA",
         "LOD uM", "t_resp s"],
        rows, title="  per-target estimates:"))
    if point.violations:
        lines.append("  VIOLATIONS:")
        for violation in point.violations:
            lines.append(f"    - {violation}")
    else:
        lines.append("  feasible: yes")
    return "\n".join(lines)
