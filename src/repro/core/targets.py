"""Target and panel specifications — the *requirements* side of the DSE.

The paper's design problem (Sec. I): given a set of target molecules,
find "the most cost-effective solution (e.g., small, low energy
consumption, low-cost)".  A :class:`TargetSpec` states what must be
measured and how well; a :class:`PanelSpec` bundles targets with
platform-level budgets.  The explorer consumes these and nothing else —
requirements never leak into the component models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.species import get_species
from repro.errors import DesignError
from repro.units import ensure_positive

__all__ = ["TargetSpec", "PanelSpec", "paper_panel_spec"]


@dataclass(frozen=True)
class TargetSpec:
    """One molecule the platform must quantify.

    Parameters
    ----------
    species:
        Registry name of the molecule.
    c_min, c_max:
        Concentration range of clinical interest, mol/m^3 (== mM); the
        platform must resolve values across this window.
    required_lod:
        Largest acceptable limit of detection, mol/m^3; ``None`` accepts
        whatever the chemistry gives.
    max_response_time:
        Largest acceptable steady-state response time, seconds.
    """

    species: str
    c_min: float
    c_max: float
    required_lod: float | None = None
    max_response_time: float | None = None

    def __post_init__(self) -> None:
        get_species(self.species)
        ensure_positive(self.c_min, "c_min")
        ensure_positive(self.c_max, "c_max")
        if self.c_max <= self.c_min:
            raise DesignError(
                f"target {self.species!r}: c_max must exceed c_min")
        if self.required_lod is not None:
            ensure_positive(self.required_lod, "required_lod")
        if self.max_response_time is not None:
            ensure_positive(self.max_response_time, "max_response_time")

    @property
    def mid_concentration(self) -> float:
        """Geometric mid-point of the range (panel demo loading)."""
        return (self.c_min * self.c_max) ** 0.5


@dataclass(frozen=True)
class PanelSpec:
    """A multi-target measurement problem with platform budgets.

    Budgets are optional; ``None`` disables the corresponding rule.
    ``max_assay_time`` bounds one full multiplexed scan (which is what
    bounds the paper's *sample throughput*).
    """

    name: str
    targets: tuple[TargetSpec, ...]
    max_die_area_mm2: float | None = None
    max_power: float | None = None
    max_assay_time: float | None = None
    max_cost: float | None = None

    def __post_init__(self) -> None:
        if not self.targets:
            raise DesignError("a panel needs at least one target")
        names = [t.species for t in self.targets]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate targets in panel: {names}")
        for label, value in (("max_die_area_mm2", self.max_die_area_mm2),
                             ("max_power", self.max_power),
                             ("max_assay_time", self.max_assay_time),
                             ("max_cost", self.max_cost)):
            if value is not None:
                ensure_positive(value, label)

    def target(self, species: str) -> TargetSpec:
        for t in self.targets:
            if t.species == species:
                return t
        known = ", ".join(t.species for t in self.targets)
        raise DesignError(f"no target {species!r} in panel (have: {known})")

    def species_names(self) -> tuple[str, ...]:
        return tuple(t.species for t in self.targets)


def paper_panel_spec() -> PanelSpec:
    """The Sec. III panel as a specification.

    Ranges are the Table III linear ranges; LOD requirements are relaxed
    to 1.5x the Table III LODs (a platform *reproducing* the cited
    sensors should meet them with margin).
    """
    return PanelSpec(
        name="paper_sec3_panel",
        targets=(
            TargetSpec("glucose", 0.5, 4.0, required_lod=0.9),
            TargetSpec("lactate", 0.5, 2.5, required_lod=0.6),
            TargetSpec("glutamate", 0.5, 2.0, required_lod=2.4),
            TargetSpec("benzphetamine", 0.2, 1.2, required_lod=0.3),
            TargetSpec("aminopyrine", 0.8, 8.0, required_lod=0.6),
            TargetSpec("cholesterol", 0.01, 0.08),
        ),
        max_assay_time=600.0,
    )
