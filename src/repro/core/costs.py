"""Cost models: silicon area, power, fabrication cost, assay time.

The paper's goal is "the most cost-effective solution (e.g., small, low
energy consumption, low-cost)" (Sec. I).  The model is deliberately
simple and *monotone* — every added electrode, chamber, chain or
nanostructure costs something — because the explorer only needs ordering,
not absolute euros:

- **die area**: electrode row + per-chamber RE/CE strips + pads +
  electronics blocks,
- **power**: electronics chains (shared mux amortises the chain; per-WE
  readout multiplies it),
- **fabrication cost**: material cost per electrode area,
  functionalization cost, a per-chamber microfluidics premium, and a
  per-chain assembly premium.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.architecture import PlatformDesign
from repro.core.estimates import DesignEstimates
from repro.data.catalog import integrated_chain
from repro.electronics.noise import CdsStrategy, ChoppingStrategy, NoStrategy
from repro.sensors.functionalization import CARBON_NANOTUBES
from repro.sensors.materials import get_material
from repro.units import m2_to_mm2

__all__ = ["PlatformCost", "cost_of"]

#: Fabrication premium per isolated chamber (microfluidic walls, ports).
_CHAMBER_COST = 4.0

#: Assembly premium per readout chain.
_CHAIN_COST = 2.0

#: Pad + routing cost per electrode.
_ELECTRODE_OVERHEAD_COST = 0.3

#: Die area per pad (bond pad + routing), mm^2.
_PAD_AREA_MM2 = 0.18

#: Die area per isolated chamber (walls, seal ring), mm^2.
_CHAMBER_AREA_MM2 = 1.5


@dataclass(frozen=True)
class PlatformCost:
    """The cost vector the Pareto front is drawn over."""

    die_area_mm2: float
    power_w: float
    fabrication_cost: float
    assay_time_s: float

    def as_tuple(self) -> tuple[float, float, float, float]:
        """(area, power, cost, time) — all minimised."""
        return (self.die_area_mm2, self.power_w,
                self.fabrication_cost, self.assay_time_s)


def _strategy_for(design: PlatformDesign):
    if design.noise == "chopping":
        return ChoppingStrategy()
    if design.noise == "cds":
        return CdsStrategy()
    return NoStrategy()


def cost_of(design: PlatformDesign,
            estimates: DesignEstimates) -> PlatformCost:
    """Evaluate the cost vector of a candidate."""
    gold = get_material("gold")
    silver = get_material("silver")
    nano = (CARBON_NANOTUBES if design.nanostructure == "carbon_nanotubes"
            else None)
    area_mm2_per_we = m2_to_mm2(design.we_area)

    # --- die area --------------------------------------------------------
    electrode_area = design.n_working * area_mm2_per_we
    # Each chamber carries its own RE (1x WE area) and CE (2x WE area).
    electrode_area += design.n_chambers * 3.0 * area_mm2_per_we
    pads = design.electrode_count * _PAD_AREA_MM2
    chambers = design.n_chambers * _CHAMBER_AREA_MM2
    strategy = _strategy_for(design)
    needs_cyp_chain = any(a.family == "cytochrome"
                          for a in design.assignments)
    chain = integrated_chain("cyp" if needs_cyp_chain else "oxidase",
                             n_channels=design.n_working,
                             noise_strategy=strategy)
    electronics_area = design.n_chains * chain.total_area_mm2()
    die_area = 1.3 * (electrode_area + pads + chambers) + electronics_area

    # --- power ------------------------------------------------------------
    power = design.n_chains * chain.total_power()

    # --- fabrication cost ---------------------------------------------------
    cost = 0.0
    cost += design.n_working * area_mm2_per_we * gold.cost_per_mm2
    cost += design.n_chambers * area_mm2_per_we * silver.cost_per_mm2
    cost += design.n_chambers * 2.0 * area_mm2_per_we * gold.cost_per_mm2
    if nano is not None:
        cost += design.n_working * area_mm2_per_we * nano.cost_per_mm2
    cost += design.n_chambers * _CHAMBER_COST
    cost += design.n_chains * _CHAIN_COST
    cost += design.electrode_count * _ELECTRODE_OVERHEAD_COST

    return PlatformCost(
        die_area_mm2=die_area,
        power_w=power,
        fabrication_cost=cost,
        assay_time_s=estimates.assay_time,
    )
