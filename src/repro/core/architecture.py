"""Platform design representation: what the explorer enumerates.

A :class:`PlatformDesign` pins every free choice of the paper's design
space (Sec. II-A: probe, sensor structure, readout circuitry — plus the
electronics options of Sec. II-C).  It is a pure value object: cheap to
create, hash and compare, so the explorer can enumerate hundreds of them;
:mod:`repro.core.platform` turns the chosen one into runnable hardware
models.

Working-electrode grouping follows the paper's multi-target argument:
targets sensed by the *same CYP isoform* share one electrode (their peaks
separate by position); every oxidase target gets its own electrode; a
blank electrode is appended when the CDS noise strategy is selected.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.core.library import ProbeOption
from repro.core.targets import PanelSpec
from repro.errors import DesignError
from repro.units import ensure_positive

__all__ = ["WeAssignment", "PlatformDesign", "design_from_choices"]


@dataclass(frozen=True)
class WeAssignment:
    """One working electrode: its probe option and the targets it serves.

    ``option`` is ``None`` for a blank (CDS reference) electrode.
    """

    we_name: str
    option: ProbeOption | None
    targets: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.option is None and self.targets:
            raise DesignError(
                f"blank electrode {self.we_name!r} cannot serve targets")
        if self.option is not None and not self.targets:
            raise DesignError(
                f"electrode {self.we_name!r} has a probe but no targets")

    @property
    def is_blank(self) -> bool:
        return self.option is None

    @property
    def family(self) -> str:
        return self.option.family if self.option else "blank"

    @property
    def method(self) -> str:
        """Detection mode: CA for oxidases/blanks, CV for cytochromes."""
        if self.option is not None and self.option.family == "cytochrome":
            return "cyclic_voltammetry"
        return "chronoamperometry"


@dataclass(frozen=True)
class PlatformDesign:
    """A fully pinned platform candidate.

    Parameters
    ----------
    name:
        Candidate identifier (the explorer numbers them).
    assignments:
        Working electrodes in layout order (blank last, when present).
    structure:
        ``"shared_chamber"`` (the Fig. 4 n+2 arrangement) or
        ``"chambered_array"`` (one chamber per sensor).
    readout:
        ``"mux_shared"`` (one chain, sequential WEs — Fig. 4) or
        ``"per_we"`` (a chain per electrode, parallel).
    noise:
        ``"raw"``, ``"chopping"`` or ``"cds"`` (Sec. II-C).
    nanostructure:
        Chip-wide nanostructuring: ``None`` or ``"carbon_nanotubes"``.
    we_area:
        Working-electrode area, m^2.
    scan_rate:
        CV scan rate for cytochrome electrodes, V/s.
    """

    name: str
    assignments: tuple[WeAssignment, ...]
    structure: str
    readout: str
    noise: str
    nanostructure: str | None
    we_area: float
    scan_rate: float

    def __post_init__(self) -> None:
        if not self.assignments:
            raise DesignError("a design needs at least one working electrode")
        names = [a.we_name for a in self.assignments]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate WE names in design: {names}")
        if self.structure not in ("shared_chamber", "chambered_array"):
            raise DesignError(f"unknown structure {self.structure!r}")
        if self.readout not in ("mux_shared", "per_we"):
            raise DesignError(f"unknown readout {self.readout!r}")
        if self.noise not in ("raw", "chopping", "cds"):
            raise DesignError(f"unknown noise strategy {self.noise!r}")
        ensure_positive(self.we_area, "we_area")
        ensure_positive(self.scan_rate, "scan_rate")

    # -- structure queries -------------------------------------------------------

    @property
    def n_working(self) -> int:
        return len(self.assignments)

    @property
    def n_chambers(self) -> int:
        """Shared structure: 1; array: one per (non-blank) electrode."""
        if self.structure == "shared_chamber":
            return 1
        return self.n_working

    @property
    def electrode_count(self) -> int:
        """Total pads: each chamber needs its own RE and CE.

        The shared chamber realises the paper's n+2 structure; the array
        pays 3 pads per sensor.
        """
        return self.n_working + 2 * self.n_chambers

    @property
    def n_chains(self) -> int:
        """Readout chains: one (muxed) or one per WE."""
        return 1 if self.readout == "mux_shared" else self.n_working

    @property
    def we_pitch(self) -> float:
        """Centre-to-centre WE spacing scaled with pad size, m."""
        return 2.2 * math.sqrt(self.we_area)

    def targets(self) -> tuple[str, ...]:
        out: list[str] = []
        for a in self.assignments:
            out.extend(a.targets)
        return tuple(out)

    def assignment_for(self, target: str) -> WeAssignment:
        for a in self.assignments:
            if target in a.targets:
                return a
        raise DesignError(f"no electrode serves target {target!r}")

    def cytochrome_assignments(self) -> tuple[WeAssignment, ...]:
        return tuple(a for a in self.assignments
                     if a.family == "cytochrome")

    def has_blank(self) -> bool:
        return any(a.is_blank for a in self.assignments)

    def with_name(self, name: str) -> "PlatformDesign":
        return replace(self, name=name)


def design_from_choices(panel: PanelSpec,
                        probe_choices: dict[str, ProbeOption],
                        structure: str, readout: str, noise: str,
                        nanostructure: str | None, we_area: float,
                        scan_rate: float,
                        name: str = "candidate") -> PlatformDesign:
    """Assemble a design from per-axis choices.

    Groups targets sharing a CYP isoform onto one electrode, orders
    electrodes oxidases-first (matching the paper's Fig. 4 layout), and
    appends a blank electrode when CDS is selected.
    """
    missing = [t.species for t in panel.targets if t.species not in probe_choices]
    if missing:
        raise DesignError(f"no probe chosen for: {', '.join(missing)}")
    groups: dict[tuple[str, str], list[str]] = {}
    for target in panel.species_names():
        option = probe_choices[target]
        if option.target != target:
            raise DesignError(
                f"probe option for {target!r} actually senses "
                f"{option.target!r}")
        if option.family == "cytochrome":
            key = ("cytochrome", option.probe_name)
        else:
            key = ("oxidase", f"{option.probe_name}:{target}")
        groups.setdefault(key, []).append(target)
    ordered = sorted(groups.items(),
                     key=lambda kv: (kv[0][0] != "oxidase", kv[0][1]))
    assignments: list[WeAssignment] = []
    for index, ((family, _), targets) in enumerate(ordered, start=1):
        option = probe_choices[targets[0]]
        assignments.append(WeAssignment(
            we_name=f"WE{index}", option=option, targets=tuple(targets)))
    if noise == "cds":
        assignments.append(WeAssignment(
            we_name=f"WE{len(assignments) + 1}", option=None, targets=()))
    return PlatformDesign(
        name=name, assignments=tuple(assignments), structure=structure,
        readout=readout, noise=noise, nanostructure=nanostructure,
        we_area=we_area, scan_rate=scan_rate)
