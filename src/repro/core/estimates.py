"""Analytic performance estimates for design candidates.

The explorer scores hundreds of candidates, so estimation must be closed
form: no transient simulation, only the steady-state/Randles-Sevcik
relations the chemistry layer validates elsewhere.  The final chosen
design is then *measured* end-to-end by :mod:`repro.core.platform`, which
is the honesty check on these estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.chem import constants as C
from repro.chem.analytic import planar_response_time, randles_sevcik_peak_current
from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.chem.kinetics import steady_state_turnover_flux
from repro.chem.species import get_species
from repro.core.architecture import PlatformDesign, WeAssignment
from repro.core.targets import PanelSpec, TargetSpec
from repro.data.catalog import integrated_chain, select_readout_class
from repro.electronics.noise import CdsStrategy, ChoppingStrategy, NoStrategy
from repro.errors import DesignError
from repro.sensors.functionalization import CARBON_NANOTUBES

__all__ = ["TargetEstimate", "DesignEstimates", "estimate_design"]

#: Settling dwell for a chronoamperometric slot: wait this many response
#: times before reading the steady current.
_CA_DWELL_RESPONSE_TIMES = 2.0

#: Extra per-switch settling of the shared mux, seconds.
_MUX_SWITCH_OVERHEAD = 1.0


@dataclass(frozen=True)
class TargetEstimate:
    """Analytic per-target figures for one candidate design."""

    target: str
    we_name: str
    method: str
    sensitivity_si: float     # A*m/mol (signed magnitude)
    i_max: float              # A at the top of the clinical range
    noise_rms: float          # A, chain + sensor, strategy applied
    lod: float                # mol/m^3
    response_time: float      # s (CA settling or one CV sweep)


@dataclass(frozen=True)
class DesignEstimates:
    """Whole-design figures assembled from the per-target ones."""

    per_target: dict[str, TargetEstimate]
    assay_time: float         # s for one full panel scan
    worst_lod_margin: float   # min over targets of required_lod / lod
    peak_current: float       # A, largest expected channel current

    def estimate(self, target: str) -> TargetEstimate:
        if target not in self.per_target:
            raise DesignError(f"no estimate for target {target!r}")
        return self.per_target[target]


def _nano_for(design: PlatformDesign):
    return CARBON_NANOTUBES if design.nanostructure == "carbon_nanotubes" else None


def _strategy_for(design: PlatformDesign):
    if design.noise == "chopping":
        return ChoppingStrategy()
    if design.noise == "cds":
        return CdsStrategy()
    return NoStrategy()


def _effective_delta(design: PlatformDesign) -> float:
    radius = math.sqrt(design.we_area / math.pi)
    delta_disk = math.pi * radius / 4.0
    return 1.0 / (1.0 / C.NERNST_LAYER_QUIESCENT + 1.0 / delta_disk)


def _oxidase_estimate(design: PlatformDesign, assignment: WeAssignment,
                      spec: TargetSpec, noise_rms: float) -> TargetEstimate:
    probe = assignment.option.build()
    assert isinstance(probe, Oxidase)
    nano = _nano_for(design)
    gain = nano.signal_gain if nano else 1.0
    film = probe.film.scaled(gain)
    species = get_species(spec.species)
    delta = _effective_delta(design)
    m = species.diffusivity / delta
    eta = 0.95  # the operating point of the Table I applied potential
    n = probe.electrons_per_substrate
    flux_max = steady_state_turnover_flux(spec.c_max, film, m)
    flux_min = steady_state_turnover_flux(spec.c_min, film, m)
    i_max = n * C.FARADAY * design.we_area * eta * flux_max
    slope = (n * C.FARADAY * design.we_area * eta
             * (flux_max - flux_min) / (spec.c_max - spec.c_min))
    sensitivity = slope / 1.0  # A per (mol/m^3)
    lod = (3.0 * noise_rms / sensitivity if sensitivity > 0 and noise_rms > 0
           else float("inf"))
    t90 = planar_response_time(delta, species.diffusivity)
    return TargetEstimate(
        target=spec.species, we_name=assignment.we_name,
        method="chronoamperometry",
        sensitivity_si=sensitivity / design.we_area,
        i_max=i_max, noise_rms=noise_rms, lod=lod,
        response_time=_CA_DWELL_RESPONSE_TIMES * t90)


def _cyp_estimate(design: PlatformDesign, assignment: WeAssignment,
                  spec: TargetSpec, noise_rms: float) -> TargetEstimate:
    probe = assignment.option.build()
    assert isinstance(probe, CytochromeP450)
    channel = probe.channel_for(spec.species)
    species = get_species(spec.species)
    n = channel.kinetics.couple.n_electrons
    nano = _nano_for(design)
    gain = nano.signal_gain if nano else 1.0
    # Peak height per effective concentration (reversible R-S form).
    def height(c_bulk: float) -> float:
        saturation = channel.km / (channel.km + c_bulk)
        c_eff = c_bulk * channel.efficiency * saturation * gain
        if c_eff <= 0.0:
            return 0.0
        return randles_sevcik_peak_current(
            n, design.we_area, c_eff, species.diffusivity, design.scan_rate)
    h_max = height(spec.c_max)
    slope = (h_max - height(spec.c_min)) / (spec.c_max - spec.c_min)
    lod = (3.0 * noise_rms / slope if slope > 0 and noise_rms > 0
           else float("inf"))
    potentials = [ch.reduction_potential for ch in probe.channels]
    window = (max(potentials) - min(potentials)) + 0.5
    sweep_time = 2.0 * window / design.scan_rate
    return TargetEstimate(
        target=spec.species, we_name=assignment.we_name,
        method="cyclic_voltammetry",
        sensitivity_si=slope / design.we_area,
        i_max=h_max + 2.0e-7,  # peak plus charging background headroom
        noise_rms=noise_rms, lod=lod, response_time=sweep_time)


def estimate_design(design: PlatformDesign,
                    panel: PanelSpec) -> DesignEstimates:
    """Closed-form performance figures for one candidate.

    Readout classes are auto-selected per chain (the finest class whose
    full scale covers the chain's largest expected current) and the LOD
    uses the chain's *effective* noise — analog floor plus ADC
    quantization, which is what actually limits the micro platform.
    """
    strategy = _strategy_for(design)

    # Pass 1: chemistry-only figures (noise filled in below).
    provisional: dict[str, TargetEstimate] = {}
    for assignment in design.assignments:
        if assignment.is_blank:
            continue
        for target in assignment.targets:
            spec = panel.target(target)
            if assignment.family == "oxidase":
                provisional[target] = _oxidase_estimate(
                    design, assignment, spec, 0.0)
            else:
                provisional[target] = _cyp_estimate(
                    design, assignment, spec, 0.0)

    # Pass 2: pick readout classes per chain and recompute LODs.
    def chain_peak(we_names: set[str]) -> float:
        return max((est.i_max for est in provisional.values()
                    if est.we_name in we_names), default=1.0e-9)

    per_target: dict[str, TargetEstimate] = {}
    if design.readout == "mux_shared":
        all_wes = {a.we_name for a in design.assignments}
        shared_class = select_readout_class(chain_peak(all_wes))
        chains = {a.we_name: integrated_chain(
            shared_class, n_channels=design.n_working,
            noise_strategy=strategy) for a in design.assignments}
    else:
        chains = {}
        for assignment in design.assignments:
            cls = select_readout_class(chain_peak({assignment.we_name}))
            chains[assignment.we_name] = integrated_chain(
                cls, n_channels=1, noise_strategy=strategy)
    for target, est in provisional.items():
        chain = chains[est.we_name]
        noise = chain.effective_input_noise()
        slope = est.sensitivity_si * design.we_area
        lod = 3.0 * noise / slope if slope > 0 else float("inf")
        per_target[target] = TargetEstimate(
            target=est.target, we_name=est.we_name, method=est.method,
            sensitivity_si=est.sensitivity_si, i_max=est.i_max,
            noise_rms=noise, lod=lod, response_time=est.response_time)

    # Assay time: mux-shared chains scan WEs sequentially; per-WE chains
    # run in parallel and the panel takes as long as its slowest slot.
    slot_times: list[float] = []
    for assignment in design.assignments:
        if assignment.is_blank:
            slot = 10.0  # a short blank acquisition
        else:
            slot = max(per_target[t].response_time
                       for t in assignment.targets)
        slot_times.append(slot + _MUX_SWITCH_OVERHEAD)
    if design.readout == "mux_shared":
        assay_time = sum(slot_times)
    else:
        assay_time = max(slot_times)

    margins = []
    for target, est in per_target.items():
        required = panel.target(target).required_lod
        if required is not None and est.lod > 0:
            margins.append(required / est.lod)
    worst_margin = min(margins) if margins else float("inf")
    peak_current = max(est.i_max for est in per_target.values())
    return DesignEstimates(per_target=per_target, assay_time=assay_time,
                           worst_lod_margin=worst_margin,
                           peak_current=peak_current)
