"""The parametrized component library — the *platform* of the paper.

"In this paper we propose the use of a platform, i.e., a restriction of
the design space to the use of a small number of parametrized components,
to cope with the design of integrated multiple-target biosensors."
(Sec. I.)

The library enumerates, for every axis the paper discusses jointly
(Sec. II-A: probe, sensor structure, readout):

- **probe options** per target (oxidase and/or CYP isoform, from the
  calibrated catalog),
- **electrode options** (area ladder around the paper's 0.23 mm^2,
  nanostructure on/off),
- **structure options** (shared chamber vs chamber-per-sensor array),
- **readout options** (mux-shared chain vs per-WE chains; TIA/ADC class
  per probe family; noise strategy raw/chopping/CDS),
- **waveform options** (CV scan rates at and below the 20 mV/s limit).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.data.catalog import build_cytochrome, build_oxidase
from repro.data.cytochromes import TABLE_II
from repro.data.oxidases import TABLE_I
from repro.errors import DesignError
from repro.sensors.electrode import PAPER_ELECTRODE_AREA

__all__ = [
    "ProbeOption",
    "probe_options",
    "AREA_OPTIONS_M2",
    "NANO_OPTIONS",
    "STRUCTURE_OPTIONS",
    "READOUT_OPTIONS",
    "NOISE_OPTIONS",
    "SCAN_RATE_OPTIONS",
]


@dataclass(frozen=True)
class ProbeOption:
    """One way to sense a target: a probe family plus its catalog name."""

    target: str
    family: str        # "oxidase" | "cytochrome"
    probe_name: str    # enzyme name or isoform

    def build(self) -> Oxidase | CytochromeP450:
        """Materialise the calibrated probe."""
        if self.family == "oxidase":
            return build_oxidase(self.target)
        return build_cytochrome(self.probe_name)


def probe_options(target: str) -> tuple[ProbeOption, ...]:
    """Every probe in the paper's tables that senses ``target``.

    Cholesterol has two (cholesterol oxidase from Table I, CYP11A1 from
    Table II) — the design-space exploration chooses.
    """
    options: list[ProbeOption] = []
    for record in TABLE_I:
        if record.target == target:
            options.append(ProbeOption(target=target, family="oxidase",
                                       probe_name=record.enzyme))
    for record in TABLE_II:
        if record.target == target:
            options.append(ProbeOption(target=target, family="cytochrome",
                                       probe_name=record.isoform))
    if not options:
        raise DesignError(
            f"no probe in Table I/II senses {target!r}; the platform "
            f"cannot measure it")
    return tuple(options)


#: Electrode-area ladder, m^2: half / paper / double the Fig. 4 pad.
AREA_OPTIONS_M2: tuple[float, ...] = (
    0.5 * PAPER_ELECTRODE_AREA,
    PAPER_ELECTRODE_AREA,
    2.0 * PAPER_ELECTRODE_AREA,
)

#: Nanostructuring choices applied chip-wide ("carbon_nanotubes" or None).
NANO_OPTIONS: tuple[str | None, ...] = (None, "carbon_nanotubes")

#: Sensor structures (Sec. II): one shared chamber (n+2 electrodes) or a
#: chamber-per-sensor array.
STRUCTURE_OPTIONS: tuple[str, ...] = ("shared_chamber", "chambered_array")

#: Readout sharing (Sec. II-A): one multiplexed chain or one chain per WE.
READOUT_OPTIONS: tuple[str, ...] = ("mux_shared", "per_we")

#: Noise strategies (Sec. II-C).
NOISE_OPTIONS: tuple[str, ...] = ("raw", "chopping", "cds")

#: CV scan rates, V/s; the paper's accuracy limit is 20 mV/s.
SCAN_RATE_OPTIONS: tuple[float, ...] = (0.010, 0.020)
