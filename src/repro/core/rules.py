"""Feasibility rules: what makes a platform candidate *valid*.

Each rule encodes one constraint the paper states or implies:

- **probe coverage** — every target needs a probe (Sec. II-A: "the
  choice of the probe ... is typically dictated by the target").
- **peak separation** — several targets share a CYP electrode only when
  their reduction potentials separate by more than the resolvable peak
  width (Sec. III: benzphetamine/aminopyrine work; Table II's
  torsemide/diclofenac at -19/-41 mV do not).
- **scan rate** — CV must stay at or below ~20 mV/s (Sec. II-C), or peak
  positions shift and targets become indistinguishable.
- **CDS validity** — CDS needs a blank electrode and fails for direct
  oxidisers (dopamine, etoposide) which light up the blank too.
- **cross-talk** — co-chambered oxidase electrodes must keep H2O2
  spill-over below a selectivity budget, else the design must move to
  separate chambers (Sec. II-A).
- **readout range/resolution** — expected currents must fit the chain's
  full scale, and the LOD-implied resolution must beat the chain noise
  floor (Sec. II-C's +/-10 uA @ 10 nA and +/-100 uA @ 100 nA classes).
- **budgets** — area/power/cost/assay-time limits of the panel spec.

Rules return human-readable violation strings; an empty tuple means
feasible.  The explorer records violations instead of discarding
candidates, so reports can explain *why* a corner of the space is empty.
"""

from __future__ import annotations

from repro.chem.analytic import reversible_half_peak_width
from repro.chem.species import get_species
from repro.core.architecture import PlatformDesign
from repro.core.costs import PlatformCost
from repro.core.estimates import DesignEstimates
from repro.core.targets import PanelSpec
from repro.data.catalog import build_cytochrome
from repro.electronics.waveform import MAX_ACCURATE_SCAN_RATE
from repro.sensors.cell import CrosstalkModel

__all__ = [
    "check_design",
    "rule_probe_coverage",
    "rule_peak_separation",
    "rule_scan_rate",
    "rule_cds_validity",
    "rule_crosstalk",
    "rule_readout_fit",
    "rule_budgets",
    "PEAK_RESOLUTION_FACTOR",
    "CROSSTALK_BUDGET",
]

#: Two CV peaks resolve when their formal potentials differ by at least
#: this many half-peak widths (2.20 RT/nF each).
PEAK_RESOLUTION_FACTOR = 3.0

#: Largest tolerable relative error from H2O2 cross-talk in one chamber.
CROSSTALK_BUDGET = 0.02


def rule_probe_coverage(design: PlatformDesign, panel: PanelSpec,
                        estimates: DesignEstimates,
                        cost: PlatformCost) -> tuple[str, ...]:
    """Every panel target must be served by some electrode."""
    served = set(design.targets())
    missing = [t.species for t in panel.targets if t.species not in served]
    if missing:
        return (f"targets without an electrode: {', '.join(missing)}",)
    return ()


def rule_peak_separation(design: PlatformDesign, panel: PanelSpec,
                         estimates: DesignEstimates,
                         cost: PlatformCost) -> tuple[str, ...]:
    """Multi-target CYP electrodes need resolvable peak positions."""
    violations = []
    for assignment in design.cytochrome_assignments():
        if len(assignment.targets) < 2:
            continue
        probe = build_cytochrome(assignment.option.probe_name)
        requested = [probe.channel_for(t) for t in assignment.targets]
        potentials = sorted(ch.reduction_potential for ch in requested)
        n_min = min(ch.kinetics.couple.n_electrons for ch in requested)
        needed = PEAK_RESOLUTION_FACTOR * reversible_half_peak_width(n_min)
        for a, b in zip(potentials, potentials[1:]):
            gap = b - a
            if gap < needed:
                violations.append(
                    f"{assignment.we_name} ({assignment.option.probe_name}): "
                    f"peaks {a * 1e3:+.0f} and {b * 1e3:+.0f} mV are "
                    f"{gap * 1e3:.0f} mV apart, need "
                    f">= {needed * 1e3:.0f} mV to resolve")
    return tuple(violations)


def rule_scan_rate(design: PlatformDesign, panel: PanelSpec,
                   estimates: DesignEstimates,
                   cost: PlatformCost) -> tuple[str, ...]:
    """The CV scan rate must respect the cell's ~20 mV/s accuracy limit."""
    if not design.cytochrome_assignments():
        return ()
    if design.scan_rate > MAX_ACCURATE_SCAN_RATE * (1.0 + 1e-9):
        return (f"scan rate {design.scan_rate * 1e3:.0f} mV/s exceeds the "
                f"{MAX_ACCURATE_SCAN_RATE * 1e3:.0f} mV/s accuracy limit "
                f"(peak positions shift; targets blur)",)
    return ()


def rule_cds_validity(design: PlatformDesign, panel: PanelSpec,
                      estimates: DesignEstimates,
                      cost: PlatformCost) -> tuple[str, ...]:
    """CDS needs a blank WE and no direct-oxidiser targets."""
    if design.noise != "cds":
        return ()
    violations = []
    if not design.has_blank():
        violations.append("CDS selected but no blank working electrode")
    offenders = [t.species for t in panel.targets
                 if get_species(t.species).is_direct_oxidizer]
    if offenders:
        violations.append(
            f"CDS blank is not valid: {', '.join(offenders)} oxidise "
            f"directly on a bare electrode (paper Sec. II-C)")
    return tuple(violations)


def rule_crosstalk(design: PlatformDesign, panel: PanelSpec,
                   estimates: DesignEstimates,
                   cost: PlatformCost) -> tuple[str, ...]:
    """Shared-chamber H2O2 spill-over must stay within budget."""
    if design.structure != "shared_chamber":
        return ()
    oxidase_wes = [a for a in design.assignments if a.family == "oxidase"]
    if len(oxidase_wes) < 2:
        return ()
    model = CrosstalkModel()
    kappa = model.coupling(design.we_pitch)
    # Worst case: the neighbour's signal is i_max while ours sits at its
    # LOD-scale minimum; the spill-over fraction of the *neighbour's*
    # signal must stay below the budget relative to our smallest signal.
    violations = []
    for victim in oxidase_wes:
        own = estimates.estimate(victim.targets[0])
        own_min = 3.0 * own.noise_rms / CROSSTALK_BUDGET
        for other in oxidase_wes:
            if other.we_name == victim.we_name:
                continue
            neighbour = estimates.estimate(other.targets[0])
            spill = kappa * neighbour.i_max
            if spill > max(own_min, CROSSTALK_BUDGET * own.i_max):
                violations.append(
                    f"H2O2 cross-talk {other.we_name} -> {victim.we_name} "
                    f"({spill * 1e9:.1f} nA) exceeds the "
                    f"{CROSSTALK_BUDGET:.0%} budget; use separate chambers")
    return tuple(violations)


def rule_readout_fit(design: PlatformDesign, panel: PanelSpec,
                     estimates: DesignEstimates,
                     cost: PlatformCost) -> tuple[str, ...]:
    """Currents must fit the readout class; LOD must beat the noise."""
    violations = []
    widest = 100.0e-6  # the paper's +/-100 uA CYP class
    for target, est in estimates.per_target.items():
        if est.i_max > widest:
            violations.append(
                f"{target}: expected current {est.i_max * 1e6:.1f} uA "
                f"exceeds the widest (+/-100 uA) readout class")
        required = panel.target(target).required_lod
        if required is not None and est.lod > required:
            violations.append(
                f"{target}: estimated LOD {est.lod * 1e3:.0f} uM misses "
                f"the required {required * 1e3:.0f} uM")
    return tuple(violations)


def rule_budgets(design: PlatformDesign, panel: PanelSpec,
                 estimates: DesignEstimates,
                 cost: PlatformCost) -> tuple[str, ...]:
    """Panel-level area/power/cost/time budgets."""
    violations = []
    if (panel.max_die_area_mm2 is not None
            and cost.die_area_mm2 > panel.max_die_area_mm2):
        violations.append(
            f"die area {cost.die_area_mm2:.1f} mm^2 exceeds budget "
            f"{panel.max_die_area_mm2:.1f} mm^2")
    if panel.max_power is not None and cost.power_w > panel.max_power:
        violations.append(
            f"power {cost.power_w * 1e6:.0f} uW exceeds budget "
            f"{panel.max_power * 1e6:.0f} uW")
    if (panel.max_assay_time is not None
            and cost.assay_time_s > panel.max_assay_time):
        violations.append(
            f"assay time {cost.assay_time_s:.0f} s exceeds budget "
            f"{panel.max_assay_time:.0f} s")
    if panel.max_cost is not None and cost.fabrication_cost > panel.max_cost:
        violations.append(
            f"fabrication cost {cost.fabrication_cost:.1f} exceeds budget "
            f"{panel.max_cost:.1f}")
    return tuple(violations)


_ALL_RULES = (
    rule_probe_coverage,
    rule_peak_separation,
    rule_scan_rate,
    rule_cds_validity,
    rule_crosstalk,
    rule_readout_fit,
    rule_budgets,
)


def check_design(design: PlatformDesign, panel: PanelSpec,
                 estimates: DesignEstimates,
                 cost: PlatformCost) -> tuple[str, ...]:
    """Run every rule; return all violations (empty = feasible)."""
    violations: list[str] = []
    for rule in _ALL_RULES:
        violations.extend(rule(design, panel, estimates, cost))
    return tuple(violations)
