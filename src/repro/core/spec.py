"""JSON serialisation of panel specs and platform designs.

Deployments describe their measurement problem and chosen platform as
JSON; this module round-trips both.  Schemas are flat and versioned so
files survive library evolution.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.architecture import PlatformDesign, WeAssignment
from repro.core.library import ProbeOption
from repro.core.targets import PanelSpec, TargetSpec
from repro.errors import SpecError

__all__ = [
    "panel_to_dict", "panel_from_dict",
    "design_to_dict", "design_from_dict",
    "save_panel", "load_panel", "save_design", "load_design",
]

_SCHEMA_VERSION = 1


def panel_to_dict(panel: PanelSpec) -> dict:
    """Serialise a panel spec to a JSON-ready dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "panel",
        "name": panel.name,
        "targets": [
            {
                "species": t.species,
                "c_min": t.c_min,
                "c_max": t.c_max,
                "required_lod": t.required_lod,
                "max_response_time": t.max_response_time,
            }
            for t in panel.targets
        ],
        "max_die_area_mm2": panel.max_die_area_mm2,
        "max_power": panel.max_power,
        "max_assay_time": panel.max_assay_time,
        "max_cost": panel.max_cost,
    }


def panel_from_dict(payload: dict) -> PanelSpec:
    """Rebuild a panel spec, validating shape and version."""
    _check(payload, "panel")
    try:
        targets = tuple(
            TargetSpec(
                species=t["species"], c_min=t["c_min"], c_max=t["c_max"],
                required_lod=t.get("required_lod"),
                max_response_time=t.get("max_response_time"),
            )
            for t in payload["targets"]
        )
        return PanelSpec(
            name=payload["name"], targets=targets,
            max_die_area_mm2=payload.get("max_die_area_mm2"),
            max_power=payload.get("max_power"),
            max_assay_time=payload.get("max_assay_time"),
            max_cost=payload.get("max_cost"),
        )
    except (KeyError, TypeError) as exc:
        raise SpecError(f"malformed panel spec: {exc!r}") from exc


def design_to_dict(design: PlatformDesign) -> dict:
    """Serialise a platform design to a JSON-ready dict."""
    return {
        "schema": _SCHEMA_VERSION,
        "kind": "design",
        "name": design.name,
        "assignments": [
            {
                "we_name": a.we_name,
                "family": a.family,
                "probe_name": (a.option.probe_name if a.option else None),
                "targets": list(a.targets),
            }
            for a in design.assignments
        ],
        "structure": design.structure,
        "readout": design.readout,
        "noise": design.noise,
        "nanostructure": design.nanostructure,
        "we_area": design.we_area,
        "scan_rate": design.scan_rate,
    }


def design_from_dict(payload: dict) -> PlatformDesign:
    """Rebuild a platform design, validating shape and version."""
    _check(payload, "design")
    try:
        assignments = []
        for a in payload["assignments"]:
            if a["probe_name"] is None:
                option = None
            else:
                option = ProbeOption(
                    target=a["targets"][0], family=a["family"],
                    probe_name=a["probe_name"])
            assignments.append(WeAssignment(
                we_name=a["we_name"], option=option,
                targets=tuple(a["targets"])))
        return PlatformDesign(
            name=payload["name"], assignments=tuple(assignments),
            structure=payload["structure"], readout=payload["readout"],
            noise=payload["noise"],
            nanostructure=payload.get("nanostructure"),
            we_area=payload["we_area"], scan_rate=payload["scan_rate"])
    except (KeyError, TypeError, IndexError) as exc:
        raise SpecError(f"malformed design spec: {exc!r}") from exc


def save_panel(panel: PanelSpec, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(panel_to_dict(panel), indent=2) + "\n")
    return out


def load_panel(path: str | Path) -> PanelSpec:
    return panel_from_dict(_read(path))


def save_design(design: PlatformDesign, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(design_to_dict(design), indent=2) + "\n")
    return out


def load_design(path: str | Path) -> PlatformDesign:
    return design_from_dict(_read(path))


def _read(path: str | Path) -> dict:
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SpecError(f"cannot read spec {path!s}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SpecError(f"spec {path!s} is not a JSON object")
    return payload


def _check(payload: dict, kind: str) -> None:
    if payload.get("kind") != kind:
        raise SpecError(
            f"expected a {kind!r} spec, got {payload.get('kind')!r}")
    if payload.get("schema") != _SCHEMA_VERSION:
        raise SpecError(
            f"unsupported schema version {payload.get('schema')!r} "
            f"(this library reads version {_SCHEMA_VERSION})")
