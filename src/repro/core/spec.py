"""JSON serialisation of panel specs and platform designs.

Deployments describe their measurement problem and chosen platform as
JSON; this module round-trips both.  Schemas are flat and versioned so
files survive library evolution.

The low-level helpers (:func:`read_payload`, :func:`require`,
:func:`check_kind`) are shared with the *execution* specs of
:mod:`repro.api`, so every spec-parsing failure in the library surfaces
as one :class:`~repro.errors.SpecError` naming the offending key/path.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from pathlib import Path

from repro.core.architecture import PlatformDesign, WeAssignment
from repro.core.library import ProbeOption
from repro.core.targets import PanelSpec, TargetSpec
from repro.errors import SpecError

__all__ = [
    "SCHEMA_VERSION",
    "panel_to_dict", "panel_from_dict",
    "design_to_dict", "design_from_dict",
    "save_panel", "load_panel", "save_design", "load_design",
    "read_payload", "require", "require_list", "check_kind",
]

SCHEMA_VERSION = 1


def require(payload: Mapping, key: str, path: str = "spec"):
    """``payload[key]`` or a :class:`SpecError` naming the key and path."""
    if not isinstance(payload, Mapping):
        raise SpecError(f"{path}: expected a JSON object, "
                        f"got {type(payload).__name__}")
    try:
        return payload[key]
    except KeyError as exc:
        raise SpecError(f"{path}: missing required key {key!r}") from exc


def require_list(payload: Mapping, key: str, path: str = "spec") -> list:
    """Like :func:`require`, but the value must be a JSON array."""
    value = require(payload, key, path)
    if not isinstance(value, (list, tuple)):
        raise SpecError(f"{path}.{key}: expected a list, "
                        f"got {type(value).__name__}")
    return list(value)


def panel_to_dict(panel: PanelSpec) -> dict:
    """Serialise a panel spec to a JSON-ready dict."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "panel",
        "name": panel.name,
        "targets": [
            {
                "species": t.species,
                "c_min": t.c_min,
                "c_max": t.c_max,
                "required_lod": t.required_lod,
                "max_response_time": t.max_response_time,
            }
            for t in panel.targets
        ],
        "max_die_area_mm2": panel.max_die_area_mm2,
        "max_power": panel.max_power,
        "max_assay_time": panel.max_assay_time,
        "max_cost": panel.max_cost,
    }


def panel_from_dict(payload: dict, path: str = "panel spec") -> PanelSpec:
    """Rebuild a panel spec, validating shape and version."""
    check_kind(payload, "panel", path)
    # SpecErrors from require/require_list pass through; TypeErrors from
    # value-object validation (e.g. a string-typed number reaching
    # TargetSpec's range comparison) map to SpecError here.
    try:
        targets = []
        for i, t in enumerate(require_list(payload, "targets", path)):
            at = f"{path}.targets[{i}]"
            targets.append(TargetSpec(
                species=require(t, "species", at),
                c_min=require(t, "c_min", at),
                c_max=require(t, "c_max", at),
                required_lod=t.get("required_lod"),
                max_response_time=t.get("max_response_time"),
            ))
        return PanelSpec(
            name=require(payload, "name", path), targets=tuple(targets),
            max_die_area_mm2=payload.get("max_die_area_mm2"),
            max_power=payload.get("max_power"),
            max_assay_time=payload.get("max_assay_time"),
            max_cost=payload.get("max_cost"),
        )
    except TypeError as exc:
        raise SpecError(f"malformed {path}: {exc!r}") from exc


def design_to_dict(design: PlatformDesign) -> dict:
    """Serialise a platform design to a JSON-ready dict."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "design",
        "name": design.name,
        "assignments": [
            {
                "we_name": a.we_name,
                "family": a.family,
                "probe_name": (a.option.probe_name if a.option else None),
                "targets": list(a.targets),
            }
            for a in design.assignments
        ],
        "structure": design.structure,
        "readout": design.readout,
        "noise": design.noise,
        "nanostructure": design.nanostructure,
        "we_area": design.we_area,
        "scan_rate": design.scan_rate,
    }


def design_from_dict(payload: dict, path: str = "design spec") -> PlatformDesign:
    """Rebuild a platform design, validating shape and version."""
    check_kind(payload, "design", path)
    try:
        assignments = []
        for i, a in enumerate(require_list(payload, "assignments", path)):
            at = f"{path}.assignments[{i}]"
            targets = tuple(require_list(a, "targets", at))
            if require(a, "probe_name", at) is None:
                option = None
            else:
                if not targets:
                    raise SpecError(
                        f"{at}: a probe needs at least one target")
                option = ProbeOption(
                    target=targets[0], family=require(a, "family", at),
                    probe_name=a["probe_name"])
            assignments.append(WeAssignment(
                we_name=require(a, "we_name", at), option=option,
                targets=targets))
        return PlatformDesign(
            name=require(payload, "name", path),
            assignments=tuple(assignments),
            structure=require(payload, "structure", path),
            readout=require(payload, "readout", path),
            noise=require(payload, "noise", path),
            nanostructure=payload.get("nanostructure"),
            we_area=require(payload, "we_area", path),
            scan_rate=require(payload, "scan_rate", path))
    except TypeError as exc:
        raise SpecError(f"malformed {path}: {exc!r}") from exc


def save_panel(panel: PanelSpec, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(panel_to_dict(panel), indent=2) + "\n")
    return out


def load_panel(path: str | Path) -> PanelSpec:
    return panel_from_dict(read_payload(path))


def save_design(design: PlatformDesign, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(json.dumps(design_to_dict(design), indent=2) + "\n")
    return out


def load_design(path: str | Path) -> PlatformDesign:
    return design_from_dict(read_payload(path))


def read_payload(path: str | Path) -> dict:
    """Load a JSON spec file; wrap I/O and syntax failures in SpecError."""
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as exc:
        raise SpecError(f"cannot read spec {path!s}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec {path!s} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SpecError(f"spec {path!s} is not a JSON object")
    return payload


def check_kind(payload: Mapping, kind: str, path: str = "spec",
               version: int | tuple[int, ...] = SCHEMA_VERSION) -> None:
    """Verify a payload's ``kind``/``schema`` envelope (SpecError if not).

    ``version`` is the accepted schema version, or a tuple of them —
    readers that stayed back-compatible across a bump (e.g. the
    :mod:`repro.api` execution specs) accept every version they can
    still interpret.
    """
    if not isinstance(payload, Mapping):
        raise SpecError(f"{path}: expected a JSON object, "
                        f"got {type(payload).__name__}")
    if payload.get("kind") != kind:
        raise SpecError(
            f"{path}: expected a {kind!r} spec, got {payload.get('kind')!r}")
    versions = version if isinstance(version, tuple) else (version,)
    if payload.get("schema") not in versions:
        raise SpecError(
            f"{path}: unsupported schema version {payload.get('schema')!r} "
            f"(this library reads "
            f"version{'s' if len(versions) > 1 else ''} "
            f"{', '.join(str(v) for v in versions)})")
