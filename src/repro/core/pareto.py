"""Pareto-front extraction over minimisation objectives.

The explorer scores each feasible platform with a cost vector (die area,
power, fabrication cost, assay time) and optional quality objectives; the
front contains every candidate not dominated by another.  Generic over
tuples so property tests can exercise it with random data.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

from repro.errors import DesignError

__all__ = ["dominates", "pareto_front", "pareto_indices"]

T = TypeVar("T")


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere.

    All objectives are minimised.  Vectors must have equal length.
    """
    if len(a) != len(b):
        raise DesignError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}")
    at_least_as_good = all(x <= y for x, y in zip(a, b))
    strictly_better = any(x < y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def pareto_indices(vectors: Sequence[Sequence[float]]) -> tuple[int, ...]:
    """Indices of the non-dominated vectors (stable order).

    Duplicate vectors are all kept (none dominates its copy).  O(n^2),
    fine for the few hundred candidates of this design space.
    """
    keep: list[int] = []
    for i, v in enumerate(vectors):
        dominated = False
        for j, w in enumerate(vectors):
            if i != j and dominates(w, v):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return tuple(keep)


def pareto_front(items: Sequence[T],
                 key: Callable[[T], Sequence[float]]) -> list[T]:
    """The non-dominated subset of ``items`` under ``key`` objectives."""
    vectors = [tuple(key(item)) for item in items]
    return [items[i] for i in pareto_indices(vectors)]
