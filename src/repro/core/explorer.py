"""Design-space exploration: enumerate, rule-check, score, Pareto-filter.

This is the paper's central proposition made executable: "the
proliferation of electronic monitoring techniques would benefit from a
systematic design space exploration, in the search of the most
cost-effective solution (e.g., small, low energy consumption, low-cost)
to a given problem" (Sec. I).

The space is the cross product of the library axes (probe choice per
target where alternatives exist, sensor structure, readout sharing,
noise strategy, chip-wide nanostructure, electrode area, scan rate).
Every candidate is scored analytically; infeasible ones are kept with
their violation list so reports can explain the empty corners.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.architecture import PlatformDesign, design_from_choices
from repro.core.costs import PlatformCost, cost_of
from repro.core.estimates import DesignEstimates, estimate_design
from repro.core.library import (
    AREA_OPTIONS_M2,
    NANO_OPTIONS,
    NOISE_OPTIONS,
    READOUT_OPTIONS,
    SCAN_RATE_OPTIONS,
    STRUCTURE_OPTIONS,
    ProbeOption,
    probe_options,
)
from repro.core.pareto import pareto_front
from repro.core.rules import check_design
from repro.core.targets import PanelSpec
from repro.errors import InfeasibleDesignError

__all__ = ["DesignPoint", "ExplorationResult", "explore"]


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated candidate: design + scores + feasibility verdict."""

    design: PlatformDesign
    estimates: DesignEstimates
    cost: PlatformCost
    violations: tuple[str, ...]

    @property
    def feasible(self) -> bool:
        return not self.violations

    def objectives(self) -> tuple[float, float, float, float, float]:
        """Minimised vector: area, power, cost, assay time, worst LOD.

        The LOD term is the worst estimated LOD over targets (smaller is
        better), so the front exposes the quality/cost trade-off and not
        just cost corners.
        """
        worst_lod = max((e.lod for e in self.estimates.per_target.values()),
                        default=float("inf"))
        return self.cost.as_tuple() + (worst_lod,)


@dataclass(frozen=True)
class ExplorationResult:
    """Everything the exploration produced."""

    panel_name: str
    points: tuple[DesignPoint, ...]
    front: tuple[DesignPoint, ...]

    @property
    def n_candidates(self) -> int:
        return len(self.points)

    @property
    def n_feasible(self) -> int:
        return sum(1 for p in self.points if p.feasible)

    def best_by(self, objective: str) -> DesignPoint:
        """The front point minimising one named objective."""
        index = {"area": 0, "power": 1, "cost": 2, "time": 3, "lod": 4}
        if objective not in index:
            raise InfeasibleDesignError(
                f"unknown objective {objective!r} "
                f"(use area/power/cost/time/lod)")
        if not self.front:
            raise InfeasibleDesignError(
                "no feasible design in the explored space")
        k = index[objective]
        return min(self.front, key=lambda p: p.objectives()[k])

    def violation_summary(self) -> dict[str, int]:
        """How often each violation (first line) occurred — the 'why' map."""
        counts: dict[str, int] = {}
        for point in self.points:
            for violation in point.violations:
                head = violation.split(";")[0].split(":")[0]
                counts[head] = counts.get(head, 0) + 1
        return counts


def _probe_assignments(panel: PanelSpec,
                       ) -> list[dict[str, ProbeOption]]:
    """Cross product of probe alternatives per target."""
    per_target = []
    for target in panel.species_names():
        per_target.append([(target, opt) for opt in probe_options(target)])
    assignments = []
    for combo in itertools.product(*per_target):
        assignments.append({target: opt for target, opt in combo})
    return assignments


def explore(panel: PanelSpec,
            areas: tuple[float, ...] = AREA_OPTIONS_M2,
            scan_rates: tuple[float, ...] = SCAN_RATE_OPTIONS,
            require_feasible: bool = False) -> ExplorationResult:
    """Enumerate and evaluate the full design space for ``panel``.

    Returns every candidate (feasible or not) plus the Pareto front over
    the feasible ones.  With ``require_feasible`` an
    :class:`~repro.errors.InfeasibleDesignError` is raised when nothing
    passes the rules — including the most common violations, so the
    caller knows what to relax.
    """
    points: list[DesignPoint] = []
    counter = itertools.count(1)
    for probes in _probe_assignments(panel):
        for structure, readout, noise, nano, area, rate in itertools.product(
                STRUCTURE_OPTIONS, READOUT_OPTIONS, NOISE_OPTIONS,
                NANO_OPTIONS, areas, scan_rates):
            design = design_from_choices(
                panel, probes, structure=structure, readout=readout,
                noise=noise, nanostructure=nano, we_area=area,
                scan_rate=rate, name=f"candidate_{next(counter):04d}")
            estimates = estimate_design(design, panel)
            cost = cost_of(design, estimates)
            violations = check_design(design, panel, estimates, cost)
            points.append(DesignPoint(design=design, estimates=estimates,
                                      cost=cost, violations=violations))
    feasible = [p for p in points if p.feasible]
    front = pareto_front(feasible, key=lambda p: p.objectives())
    result = ExplorationResult(panel_name=panel.name, points=tuple(points),
                               front=tuple(front))
    if require_feasible and not feasible:
        summary = ", ".join(
            f"{k} (x{v})" for k, v in sorted(
                result.violation_summary().items(),
                key=lambda kv: -kv[1])[:5])
        raise InfeasibleDesignError(
            f"no feasible platform for panel {panel.name!r}",
            (summary,) if summary else ())
    return result
