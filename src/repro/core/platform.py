"""Materialise a :class:`~repro.core.architecture.PlatformDesign` and run it.

The explorer works on value objects and closed-form estimates; this module
turns the chosen design into the *actual* simulated hardware — the Fig. 2
stack — and measures samples with it:

- working electrodes with their calibrated probes and the design's
  nanostructure/area,
- one shared-chamber cell (the Fig. 4 n+2 arrangement) or a
  chamber-per-sensor array,
- one multiplexed acquisition chain or a chain per electrode, with the
  readout class auto-selected for the electrode scale (micro pads take
  the +/-1 uA class; macro sensors the paper's +/-10/100 uA classes),
- chronoamperometry for oxidase/blank electrodes, cyclic voltammetry with
  peak assignment for cytochrome electrodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.solution import Chamber
from repro.core.architecture import PlatformDesign, WeAssignment
from repro.data.catalog import READOUT_CLASSES, integrated_chain
from repro.electronics.chain import AcquisitionChain
from repro.electronics.noise import CdsStrategy, ChoppingStrategy, NoStrategy
from repro.electronics.waveform import TriangleWaveform
from repro.errors import DesignError, ProtocolError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.panel import TargetReadout
from repro.measurement.peaks import assign_peaks, find_peaks
from repro.measurement.trace import Trace, Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import Electrode, ElectrodeRole, WorkingElectrode
from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    blank,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import get_material
from repro.units import m2_to_mm2

__all__ = ["BiosensingPlatform", "PlatformRunResult"]


@dataclass(frozen=True)
class PlatformRunResult:
    """One full assay on a materialised platform."""

    readouts: dict[str, TargetReadout]
    traces: dict[str, Trace]
    voltammograms: dict[str, Voltammogram]
    blank_current: float | None
    assay_time: float

    def signal_for(self, target: str) -> float:
        if target not in self.readouts:
            raise ProtocolError(
                f"target {target!r} was not recovered "
                f"(have: {', '.join(sorted(self.readouts))})")
        return self.readouts[target].signal


class BiosensingPlatform:
    """A runnable platform built from a design.

    Parameters
    ----------
    design:
        The pinned candidate (usually a Pareto point from the explorer).
    ca_dwell:
        Chronoamperometric dwell per oxidase electrode, seconds.
    sample_rate:
        Acquisition sampling rate, Hz.
    seed:
        Seed for the platform's reproducible RNG.
    """

    def __init__(self, design: PlatformDesign, ca_dwell: float = 60.0,
                 sample_rate: float = 10.0, seed: int = 2011,
                 readout_class: str | None = None) -> None:
        self.design = design
        self.ca_dwell = float(ca_dwell)
        self.sample_rate = float(sample_rate)
        if readout_class is not None and readout_class not in READOUT_CLASSES:
            raise DesignError(
                f"unknown readout class {readout_class!r} "
                f"(known: {', '.join(READOUT_CLASSES)})")
        self.readout_class = readout_class
        self.seed = int(seed)
        self._rng = np.random.default_rng(seed)
        self._build()

    # -- construction -------------------------------------------------------------

    def _build(self) -> None:
        design = self.design
        nano = (CARBON_NANOTUBES
                if design.nanostructure == "carbon_nanotubes" else None)
        gold = get_material("gold")
        silver = get_material("silver")
        self.working_electrodes: dict[str, WorkingElectrode] = {}
        for assignment in design.assignments:
            if assignment.is_blank:
                functionalization = blank()
            else:
                probe = assignment.option.build()
                if assignment.family == "oxidase":
                    functionalization = with_oxidase(probe, nanostructure=nano)
                else:
                    functionalization = with_cytochrome(probe,
                                                        nanostructure=nano)
            electrode = Electrode(name=assignment.we_name,
                                  role=ElectrodeRole.WORKING,
                                  material=gold, area=design.we_area)
            self.working_electrodes[assignment.we_name] = WorkingElectrode(
                electrode=electrode, functionalization=functionalization)

        def make_cell(wes: list[WorkingElectrode],
                      chamber: Chamber) -> ElectrochemicalCell:
            area = max(we.area for we in wes)
            reference = Electrode(name=f"RE_{chamber.name}",
                                  role=ElectrodeRole.REFERENCE,
                                  material=silver, area=area)
            counter = Electrode(name=f"CE_{chamber.name}",
                                role=ElectrodeRole.COUNTER,
                                material=gold, area=2.0 * area)
            return ElectrochemicalCell(
                chamber=chamber, working_electrodes=wes,
                reference=reference, counter=counter,
                we_pitch=design.we_pitch)

        self.cells: dict[str, ElectrochemicalCell] = {}
        if design.structure == "shared_chamber":
            chamber = Chamber(name="shared")
            cell = make_cell(list(self.working_electrodes.values()), chamber)
            for assignment in design.assignments:
                self.cells[assignment.we_name] = cell
        else:
            for assignment in design.assignments:
                chamber = Chamber(name=f"ch_{assignment.we_name}")
                cell = make_cell(
                    [self.working_electrodes[assignment.we_name]], chamber)
                self.cells[assignment.we_name] = cell

        strategy = self._strategy()
        self.chains: dict[str, AcquisitionChain] = {}
        if design.readout == "mux_shared":
            shared = integrated_chain(
                self._class_for(None), n_channels=design.n_working,
                noise_strategy=strategy)
            for assignment in design.assignments:
                self.chains[assignment.we_name] = shared
        else:
            for assignment in design.assignments:
                self.chains[assignment.we_name] = integrated_chain(
                    self._class_for(assignment), n_channels=1,
                    noise_strategy=strategy)

    def _strategy(self):
        if self.design.noise == "chopping":
            return ChoppingStrategy()
        if self.design.noise == "cds":
            return CdsStrategy()
        return NoStrategy()

    def _class_for(self, assignment: WeAssignment | None) -> str:
        """Readout class for one chain (or the shared chain when None).

        Explicit override wins; otherwise micro electrodes (<= 1 mm^2)
        use the scaled +/-1 uA class — their currents are ~30x below the
        macro sensors the paper's +/-10/100 uA classes were specified
        for — and larger electrodes use the paper classes by family.
        """
        if self.readout_class is not None:
            return self.readout_class
        if self.design.we_area <= 1.0e-6:
            return "cyp_micro"
        if assignment is None:
            needs_cyp = any(a.family == "cytochrome"
                            for a in self.design.assignments)
            return "cyp" if needs_cyp else "oxidase"
        return "cyp" if assignment.family == "cytochrome" else "oxidase"

    # -- sample handling ---------------------------------------------------------

    def load_sample(self, concentrations: dict[str, float]) -> None:
        """Set bulk concentrations in every chamber (stirred loading)."""
        chambers = {id(c.chamber): c.chamber for c in self.cells.values()}
        for chamber in chambers.values():
            for name, value in concentrations.items():
                chamber.set_bulk(name, value)

    # -- measurement ----------------------------------------------------------------

    def run(self, rng: np.random.Generator | None = None,
            ) -> PlatformRunResult:
        """One full assay — alias of :meth:`run_panel`.

        The uniform protocol-style entry point: this is what
        :mod:`repro.api` dispatches a platform spec to.  The class-level
        API (build a design, construct the platform, call ``run``)
        remains the documented escape hatch below the spec front door.
        """
        return self.run_panel(rng=rng)

    def run_panel(self, rng: np.random.Generator | None = None,
                  ) -> PlatformRunResult:
        """One full assay: every electrode measured with its method."""
        generator = rng if rng is not None else self._rng
        readouts: dict[str, TargetReadout] = {}
        traces: dict[str, Trace] = {}
        voltammograms: dict[str, Voltammogram] = {}
        blank_current: float | None = None
        sequential = self.design.readout == "mux_shared"
        assay_time = 0.0
        slot_times: list[float] = []

        for assignment in self.design.assignments:
            cell = self.cells[assignment.we_name]
            chain = self.chains[assignment.we_name]
            if assignment.family == "cytochrome":
                voltammogram = self._run_cv(cell, assignment, chain, generator)
                voltammograms[assignment.we_name] = voltammogram
                slot = float(voltammogram.times[-1])
                self._extract_peaks(assignment, voltammogram, readouts)
            else:
                trace = self._run_ca(cell, assignment, chain, generator)
                traces[assignment.we_name] = trace
                slot = trace.duration
                if assignment.is_blank:
                    blank_current = trace.tail_mean()
                else:
                    target = assignment.targets[0]
                    readouts[target] = TargetReadout(
                        target=target, we_name=assignment.we_name,
                        method="chronoamperometry", signal=trace.tail_mean())
            slot_times.append(slot + 1.0)
        assay_time = sum(slot_times) if sequential else max(slot_times)

        if blank_current is not None:
            # CDS: subtract the blank from every chronoamperometric signal.
            for target, readout in list(readouts.items()):
                if readout.method == "chronoamperometry":
                    readouts[target] = TargetReadout(
                        target=target, we_name=readout.we_name,
                        method=readout.method,
                        signal=readout.signal - blank_current)
        return PlatformRunResult(
            readouts=readouts, traces=traces,
            voltammograms=voltammograms, blank_current=blank_current,
            assay_time=assay_time)

    # -- per-mode runners --------------------------------------------------------

    def _run_ca(self, cell: ElectrochemicalCell, assignment: WeAssignment,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> Trace:
        we = self.working_electrodes[assignment.we_name]
        if assignment.is_blank:
            e_set = 0.65
        else:
            e_set = we.effective_h2o2_wave().potential_for_efficiency(0.95)
        protocol = Chronoamperometry(e_setpoint=e_set, duration=self.ca_dwell,
                                     sample_rate=self.sample_rate)
        return protocol.run(cell, assignment.we_name, chain, rng=rng).trace

    def _run_cv(self, cell: ElectrochemicalCell, assignment: WeAssignment,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> Voltammogram:
        probe = self.working_electrodes[assignment.we_name].probe
        potentials = [ch.reduction_potential for ch in probe.channels]
        waveform = TriangleWaveform(
            e_start=max(potentials) + 0.25,
            e_vertex=min(potentials) - 0.25,
            scan_rate=self.design.scan_rate)
        protocol = CyclicVoltammetry(waveform, sample_rate=self.sample_rate)
        return protocol.run(cell, assignment.we_name, chain,
                            rng=rng).voltammogram

    def _extract_peaks(self, assignment: WeAssignment,
                       voltammogram: Voltammogram,
                       readouts: dict[str, TargetReadout]) -> None:
        probe = self.working_electrodes[assignment.we_name].probe
        candidates = {ch.substrate: ch.reduction_potential
                      for ch in probe.channels
                      if ch.substrate in assignment.targets}
        peaks = find_peaks(voltammogram, cathodic=True, min_height=2.0e-9,
                           smooth_samples=7, method="semiderivative")
        result = assign_peaks(peaks, candidates)
        for target, peak in result.matches.items():
            readouts[target] = TargetReadout(
                target=target, we_name=assignment.we_name,
                method="cyclic_voltammetry", signal=peak.height, peak=peak)

    # -- reporting -------------------------------------------------------------------

    def summary(self) -> str:
        """Multi-line description of the materialised platform."""
        d = self.design
        lines = [
            f"Platform {d.name!r}: {d.n_working} WE, "
            f"{d.n_chambers} chamber(s), {d.n_chains} chain(s), "
            f"{d.electrode_count} pads",
            f"  structure={d.structure}, readout={d.readout}, "
            f"noise={d.noise}, nano={d.nanostructure or 'none'}",
            f"  WE area {m2_to_mm2(d.we_area):.2f} mm^2, scan rate "
            f"{d.scan_rate * 1e3:.0f} mV/s",
        ]
        for assignment in d.assignments:
            probe = ("blank" if assignment.is_blank
                     else assignment.option.probe_name)
            targets = ", ".join(assignment.targets) or "-"
            lines.append(f"  {assignment.we_name}: {probe} -> [{targets}] "
                         f"({assignment.method})")
        return "\n".join(lines)
