"""Per-client token-bucket rate limiting and usage accounting.

The bucket is the classic shape: ``capacity`` tokens of burst, refilled
continuously at ``refill_per_s``.  Every submission costs one token; a
client that drains its bucket gets HTTP 429 with a ``Retry-After``
telling it exactly when one token will exist again.  The clock is
injectable so tests need no sleeps.

The :class:`UsageLedger` is the service's metering: per API key it
accumulates runs submitted, jobs completed, engine solve steps, wall
time, and rejected submissions.  It persists atomically (via
:func:`repro.io.export.write_json`) to a JSON file next to the
``RunStore`` — the usage record survives server restarts just like the
cache it meters.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.io.export import write_json

__all__ = ["TokenBucket", "RateLimiter", "UsageLedger"]


class TokenBucket:
    """One client's allowance: ``capacity`` burst, ``refill_per_s``
    sustained.

    Not thread-safe on its own — buckets own no lock and are always
    driven under :attr:`RateLimiter._lock` by their owning limiter.
    """

    def __init__(self, capacity: float, refill_per_s: float,
                 clock=time.monotonic) -> None:
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._tokens = self.capacity
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.capacity,
                           self._tokens
                           + (now - self._stamp) * self.refill_per_s)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> tuple[bool, float]:
        """``(True, 0.0)`` and spend ``n`` tokens, or ``(False,
        retry_after_s)`` — the time until ``n`` tokens will exist."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True, 0.0
        return False, (n - self._tokens) / self.refill_per_s


class RateLimiter:
    """Token buckets keyed by API key; ``capacity=0`` disables limiting."""

    def __init__(self, capacity: float, refill_per_s: float,
                 clock=time.monotonic) -> None:
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def try_acquire(self, key: str) -> tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        with self._lock:
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = TokenBucket(self.capacity, self.refill_per_s,
                                     clock=self._clock)
                self._buckets[key] = bucket
            return bucket.try_acquire()


_USAGE_FIELDS = ("runs", "jobs", "solve_steps", "wall_time_s", "rejected")


class UsageLedger:
    """Per-API-key usage metering, persisted next to the run store.

    ``path=None`` keeps the ledger in memory only (servers without a
    store).  Writes are atomic and coalesced per update — the ledger is
    metering, not billing-grade double-entry, but it never tears.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._usage: dict[str, dict] = {}
        if self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError):
                loaded = None
            if isinstance(loaded, dict):
                for key, row in loaded.items():
                    if isinstance(row, dict):
                        self._usage[str(key)] = {
                            f: row.get(f, 0) for f in _USAGE_FIELDS}

    def _row_locked(self, key: str) -> dict:
        row = self._usage.get(key)
        if row is None:
            row = {f: 0 for f in _USAGE_FIELDS}
            self._usage[key] = row
        return row

    def _save_locked(self) -> None:
        if self.path is not None:
            write_json(self._usage, self.path)

    def note_submitted(self, key: str) -> None:
        with self._lock:
            self._row_locked(key)["runs"] += 1
            self._save_locked()

    def note_rejected(self, key: str) -> None:
        with self._lock:
            self._row_locked(key)["rejected"] += 1
            self._save_locked()

    def note_completed(self, key: str, jobs: int, solve_steps: int,
                       wall_time_s: float) -> None:
        with self._lock:
            row = self._row_locked(key)
            row["jobs"] += int(jobs)
            row["solve_steps"] += int(solve_steps)
            row["wall_time_s"] = float(row["wall_time_s"]) \
                + float(wall_time_s)
            self._save_locked()

    def snapshot(self) -> dict:
        with self._lock:
            return {key: dict(row) for key, row in self._usage.items()}
