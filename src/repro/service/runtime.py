"""Job lifecycle and the dispatcher threads that execute the queue.

The runtime is the synchronous heart of the service — everything the
asyncio HTTP layer does is submit into it or snapshot out of it:

- :class:`JobState` — one submitted run: status machine (``queued →
  running → done | failed | cancelled``), the accumulated wire records,
  and a cancel event the dispatcher checks between records.
- :class:`JobRegistry` — id-keyed, thread-safe job lookup.
- :class:`ServiceRuntime` — owns the :class:`~repro.service.queue.
  PriorityJobQueue`, the :class:`~repro.service.ratelimit.RateLimiter`
  + :class:`~repro.service.ratelimit.UsageLedger`, the shared warm
  :class:`~repro.api.store.RunStore`, and N dispatcher threads.

Each dispatcher owns its **own** executor for the lifetime of the
server.  With the process backend that executor's worker pool is
persistent (:class:`~repro.api.executors.ProcessExecutor`
``persistent=True``), so the dominant fixed cost of a small run —
spawning worker processes — is paid once per dispatcher, not once per
request.  Runs execute through the ordinary front door
(:func:`repro.api.iter_results` / :func:`repro.api.run`), so streamed
records are bit-identical to inline execution of the same spec: the
service adds scheduling, never physics.

Cancellation is cooperative at record granularity: the dispatcher
checks the job's cancel event between records and abandons the stream,
which tears down in-flight engine work through the executors' existing
abandoned-stream path (queued shards cancelled, a persistent pool
killed and respawned lazily).  A still-queued job is cancelled by
removal from the queue — it never touches an executor.
"""

from __future__ import annotations

import threading
import time

from repro.api.records import AssayRunRecord
from repro.api.runner import iter_results, run
from repro.api.specs import spec_from_dict
from repro.api.store import RunStore
from repro.errors import RateLimitError, ReproError, ServiceError
from repro.io.export import panel_result_to_payload
from repro.service.config import ServeSpec
from repro.service.queue import PriorityJobQueue
from repro.service.ratelimit import RateLimiter, UsageLedger

__all__ = ["JobState", "JobRegistry", "ServiceRuntime"]

_STREAMABLE_KINDS = ("assay", "fleet", "sweep")
_TERMINAL = ("done", "failed", "cancelled")


def record_to_wire(record, samples: bool = True) -> dict:
    """A record's NDJSON wire payload: ``to_dict()`` plus, for live
    assay results, the lossless ``samples`` section — the same recipe
    :meth:`~repro.api.store.RunStore.put_job` persists, so a streamed
    record carries everything needed to rebuild the result bit for
    bit."""
    wire = record.to_dict()
    if (samples and isinstance(record, AssayRunRecord)
            and record.result is not None):
        wire["samples"] = panel_result_to_payload(record.result)
    return wire


class JobState:
    """One submitted run, from queue to terminal status."""

    def __init__(self, job_id: str, client: str, kind: str,
                 spec, screening, tier_screening: bool,
                 n_jobs: int | None) -> None:
        self.id = job_id
        self.client = client
        self.kind = kind
        self.spec = spec
        self.screening = screening          # submit-time override (or None)
        self.tier_screening = tier_screening  # queue tier actually used
        self.n_jobs = n_jobs
        self.status = "queued"
        self.error: dict | None = None
        self.cancel = threading.Event()
        self.submitted_at = time.time()
        self.wall_time_s: float | None = None
        self._records: list[dict] = []
        self._lock = threading.Lock()
        self._started = None

    # -- dispatcher-side transitions (one dispatcher per job) ------------------

    def mark_running(self) -> None:
        with self._lock:
            self.status = "running"
            self._started = time.perf_counter()

    def append(self, wire: dict) -> None:
        with self._lock:
            self._records.append(wire)

    def finish(self, status: str, error: dict | None = None) -> None:
        with self._lock:
            if self.status in _TERMINAL:
                return
            self.status = status
            self.error = error
            if self._started is not None:
                self.wall_time_s = time.perf_counter() - self._started

    # -- reader-side snapshots -------------------------------------------------

    @property
    def terminal(self) -> bool:
        return self.status in _TERMINAL

    def n_records(self) -> int:
        with self._lock:
            return len(self._records)

    def records_from(self, start: int) -> tuple[list[dict], bool]:
        """``(records[start:], terminal)`` in one consistent snapshot —
        the streaming endpoint's incremental read."""
        with self._lock:
            return self._records[start:], self.status in _TERMINAL

    def describe(self) -> dict:
        """The ``GET /v1/runs/<id>`` status + provenance payload."""
        with self._lock:
            out = {"id": self.id, "client": self.client,
                   "kind": self.kind, "status": self.status,
                   "screening": self.tier_screening,
                   "submitted_at": self.submitted_at,
                   "n_records": len(self._records),
                   "n_jobs": self.n_jobs}
            if self.wall_time_s is not None:
                out["wall_time_s"] = self.wall_time_s
            if self.error is not None:
                out["error"] = self.error["message"]
                out["error_type"] = self.error["type"]
            if self._records:
                out["provenance"] = self._records[-1].get("provenance")
            return out


class JobRegistry:
    """Thread-safe id → :class:`JobState` map with stable job ids."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: dict[str, JobState] = {}
        self._counter = 0

    def create(self, client: str, kind: str, spec, screening,
               tier_screening: bool, n_jobs: int | None) -> JobState:
        with self._lock:
            self._counter += 1
            job_id = f"run-{self._counter:06d}"
            job = JobState(job_id, client, kind, spec, screening,
                           tier_screening, n_jobs)
            self._jobs[job_id] = job
            return job

    def get(self, job_id: str) -> JobState | None:
        with self._lock:
            return self._jobs.get(job_id)

    def by_status(self) -> dict[str, int]:
        with self._lock:
            counts: dict[str, int] = {}
            for job in self._jobs.values():
                counts[job.status] = counts.get(job.status, 0) + 1
            return counts


class ServiceRuntime:
    """Queue + registry + rate limiting + N executor-owning dispatchers."""

    def __init__(self, spec: ServeSpec) -> None:
        self.spec = spec
        self.queue = PriorityJobQueue()
        self.registry = JobRegistry()
        self.limiter = RateLimiter(spec.rate_capacity,
                                   spec.rate_refill_per_s)
        self.store = RunStore(spec.store) if spec.store else None
        self.ledger = UsageLedger(
            self.store.root / "usage.json" if self.store else None)
        self._resilience_totals: dict[str, int] = {}
        self._resilience_lock = threading.Lock()
        self._closing = False
        self._executors = [self._build_executor()
                           for _ in range(spec.dispatchers)]
        self._dispatchers = [
            threading.Thread(target=self._dispatch_loop,
                             args=(executor,), daemon=True,
                             name=f"repro-dispatch-{i}")
            for i, executor in enumerate(self._executors)]
        for thread in self._dispatchers:
            thread.start()

    def _build_executor(self):
        from repro.api.distributed import DistributedExecutor
        from repro.api.executors import InlineExecutor, ProcessExecutor

        if self.spec.backend == "distributed":
            # Each dispatcher submits to the same shared queue; the
            # worker fleet attached to it is the deployment's capacity
            # knob, entirely decoupled from this process.
            return DistributedExecutor(queue=self.spec.queue,
                                       workers=self.spec.workers,
                                       retry=self.spec.retry,
                                       on_error=self.spec.on_error)
        if self.spec.backend == "process":
            # persistent=True is the point: this executor lives as long
            # as its dispatcher, so its worker pool is spawned once and
            # leased to every run the dispatcher executes.
            return ProcessExecutor(workers=self.spec.workers,
                                   retry=self.spec.retry,
                                   on_error=self.spec.on_error,
                                   persistent=True)
        supervised = (self.spec.retry is not None
                      or self.spec.on_error != "raise")
        return InlineExecutor(retry=self.spec.retry,
                              on_error=self.spec.on_error) \
            if supervised else InlineExecutor()

    # -- submission ------------------------------------------------------------

    def submit(self, client: str, payload, screening=None) -> JobState:
        """Parse, rate-limit, register and enqueue one run.

        Raises :class:`~repro.errors.SpecError` for a malformed spec
        (the HTTP layer's 400) and :class:`~repro.errors.RateLimitError`
        for a drained token bucket (429).
        """
        ok, retry_after = self.limiter.try_acquire(client)
        if not ok:
            self.ledger.note_rejected(client)
            raise RateLimitError(
                f"client {client!r} exceeded its submission rate "
                f"(retry after {retry_after:.2f}s)",
                retry_after_s=retry_after)
        spec = spec_from_dict(payload)  # SpecError propagates -> 400
        kind = payload.get("kind", "?")
        tier_screening = bool(screening) if screening is not None \
            else self._declared_screening(payload)
        n_jobs = self._count_jobs(spec, kind)
        job = self.registry.create(client, kind, spec, screening,
                                   tier_screening, n_jobs)
        self.ledger.note_submitted(client)
        self.queue.push(job, client, screening=tier_screening)
        return job

    @staticmethod
    def _declared_screening(payload) -> bool:
        if payload.get("screening"):
            return True
        assays = payload.get("assays")
        return isinstance(assays, list) and any(
            isinstance(a, dict) and a.get("screening") for a in assays)

    @staticmethod
    def _count_jobs(spec, kind: str) -> int | None:
        if kind == "assay":
            return 1
        if kind == "fleet":
            return len(spec.assays)
        if kind == "sweep":
            return len(spec.compile().assays)
        return None

    # -- cancellation ----------------------------------------------------------

    def cancel(self, job_id: str) -> JobState:
        """Cancel a job: dequeue it if still queued, or flag the
        dispatcher to abandon its stream.  Terminal jobs are left
        untouched (the response reports their final status)."""
        job = self.registry.get(job_id)
        if job is None:
            raise ServiceError(f"no such run: {job_id}")
        job.cancel.set()
        if self.queue.remove(job_id):
            job.finish("cancelled")
        return job

    # -- the dispatcher loop ---------------------------------------------------

    def _dispatch_loop(self, executor) -> None:
        while True:
            job = self.queue.pop(timeout=0.1)
            if job is None:
                if self._closing:
                    break
                continue
            if self._closing or job.cancel.is_set():
                job.finish("cancelled")
                continue
            self._execute(job, executor)

    def _execute(self, job: JobState, executor) -> None:
        job.mark_running()
        solve_steps = 0
        last_resilience = None
        cancelled = False
        try:
            if job.kind in _STREAMABLE_KINDS:
                stream = iter_results(job.spec, backend=executor,
                                      store=self.store,
                                      screening=job.screening)
                try:
                    for record in stream:
                        if not record.cached and record.engine is not None:
                            # Engine stats stream cumulatively; the last
                            # fresh record carries the run's total.
                            solve_steps = record.engine.n_solve_steps
                        if record.resilience is not None:
                            last_resilience = record.resilience
                        job.append(record_to_wire(record))
                        if job.cancel.is_set():
                            cancelled = True
                            break
                finally:
                    # Abandoning the stream is what stops pending engine
                    # work: the executor cancels queued shards and kills
                    # its (persistent) pool; the next run respawns it.
                    stream.close()
            else:
                # Calibration / platform / explore runs are indivisible:
                # one final record, no mid-run cancellation point.
                record = run(job.spec, store=self.store,
                             screening=job.screening)
                engine = getattr(record, "engine", None)
                if engine is not None:
                    solve_steps = engine.n_solve_steps
                job.append(record_to_wire(record))
        except ReproError as exc:
            job.finish("failed", {"type": type(exc).__name__,
                                  "message": str(exc)})
        # repro: lint-ignore[REP002] dispatcher boundary: an
        # unclassified bug must still land the job in a terminal
        # failed state instead of killing the dispatcher thread
        except Exception as exc:  # pragma: no cover - defensive
            job.finish("failed", {"type": type(exc).__name__,
                                  "message": str(exc)})
        else:
            job.finish("cancelled" if cancelled or job.cancel.is_set()
                       else "done")
        if last_resilience is not None:
            with self._resilience_lock:
                for key, value in last_resilience.to_dict().items():
                    self._resilience_totals[key] = (
                        self._resilience_totals.get(key, 0) + value)
        self.ledger.note_completed(
            job.client, jobs=job.n_records(), solve_steps=solve_steps,
            wall_time_s=job.wall_time_s or 0.0)

    # -- observability + lifecycle ---------------------------------------------

    def stats(self) -> dict:
        out = {"queue": self.queue.depth(),
               "jobs": self.registry.by_status(),
               "usage": self.ledger.snapshot(),
               "backend": self.spec.backend,
               "dispatchers": self.spec.dispatchers}
        with self._resilience_lock:
            out["resilience"] = dict(self._resilience_totals)
        if self.store is not None:
            out["store"] = self.store.stats().to_dict()
        return out

    def close(self) -> None:
        """Stop accepting work, cancel what is queued, release pools."""
        self._closing = True
        self.queue.close()
        for thread in self._dispatchers:
            thread.join(timeout=10)
        for executor in self._executors:
            close = getattr(executor, "close", None)
            if close is not None:
                close()
