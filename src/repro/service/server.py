"""The asyncio HTTP/JSON front of the diagnostics service.

A deliberately minimal HTTP/1.1 layer over ``asyncio.start_server`` —
request line + headers + ``Content-Length`` body in, status line +
JSON out, ``Transfer-Encoding: chunked`` for the NDJSON stream — so the
service needs nothing beyond the standard library.  One connection
serves one request (``Connection: close``); the stdlib client opens a
connection per call, which at diagnostics-run granularity is noise.

Endpoints (all JSON; client identity from the ``X-API-Key`` header,
defaulting to ``"anonymous"``):

==========================  ==================================================
``POST /v1/runs``           Submit any spec kind (body: the spec payload, or
                            ``{"spec": ..., "screening": bool}``).  Returns
                            ``202`` with the job id; ``?wait=1`` blocks until
                            the run is terminal and returns its full status
                            (failures map to 500 there).  Malformed specs are
                            ``400``, drained token buckets ``429`` with
                            ``Retry-After``.
``GET /v1/runs/<id>``       Status + provenance of one run.
``GET /v1/runs/<id>/stream``  Chunked NDJSON: one line per completed job
                            record (``samples`` sections included — streamed
                            records are bit-identical to inline execution),
                            live-following the run, terminated by an
                            ``{"event": "end", ...}`` line.
``DELETE /v1/runs/<id>``    Cancel: dequeues a queued run, interrupts a
                            running one (pending engine work stops).
``GET /v1/health``          Liveness + deployment shape.
``GET /v1/stats``           Queue depth, per-status job counts, store
                            hit/miss, usage ledger, resilience counters.
==========================  ==================================================

The asyncio side never blocks on engine work: submissions enqueue and
return, and watchers (``?wait=1``, ``/stream``) poll the thread-side
:class:`~repro.service.runtime.JobState` snapshots on a short
``asyncio.sleep``.  The bridge is one-way by design — dispatcher
threads know nothing about the event loop.
"""

from __future__ import annotations

import asyncio
import json
import threading
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    RateLimitError,
    ReproError,
    ServiceError,
    SpecError,
)
from repro.service.config import ServeSpec
from repro.service.runtime import ServiceRuntime

__all__ = ["DiagnosticsServer"]

_POLL_S = 0.02  # status/stream follow-up granularity
_MAX_BODY = 64 * 1024 * 1024
_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            429: "Too Many Requests", 500: "Internal Server Error"}


def _encode(payload: dict) -> bytes:
    return json.dumps(payload).encode()


class DiagnosticsServer:
    """The long-lived service: a :class:`ServiceRuntime` behind HTTP.

    ``start()`` spins the asyncio loop up on a daemon thread and
    returns the bound port (``ServeSpec.port=0`` → OS-assigned);
    ``stop()`` tears down the listener, the dispatchers and their
    worker pools.  Also usable as a context manager.
    """

    def __init__(self, spec: ServeSpec | None = None) -> None:
        self.spec = spec if spec is not None else ServeSpec()
        self.runtime = ServiceRuntime(self.spec)
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> int:
        """Bind, listen, and return the actual port."""
        ready = threading.Event()
        failure: list[BaseException] = []

        def serve() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._handle, self.spec.host,
                                         self.spec.port))
                self.port = self._server.sockets[0].getsockname()[1]
            # repro: lint-ignore[REP002] thread boundary: any bind
            # failure must be captured and re-raised as ServiceError
            except BaseException as exc:  # pragma: no cover - bind races
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                self._server.close()
                loop.run_until_complete(self._server.wait_closed())
                loop.close()

        self._thread = threading.Thread(target=serve, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        ready.wait(timeout=30)
        if failure:
            raise ServiceError(f"server failed to start: {failure[0]}")
        if self.port is None:
            raise ServiceError("server failed to start: bind timed out")
        return self.port

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.runtime.close()

    def __enter__(self) -> "DiagnosticsServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- one connection, one request -------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, headers, body = await self._read_request(
                reader)
        except (ServiceError, ValueError, asyncio.IncompleteReadError,
                ConnectionError):
            writer.close()
            return
        client = headers.get("x-api-key", "anonymous")
        try:
            await self._route(writer, method, path, query, client, body)
        except ConnectionError:  # pragma: no cover - peer went away
            pass
        except RateLimitError as exc:
            await self._respond(
                writer, 429,
                {"error": str(exc), "error_type": "RateLimitError",
                 "retry_after_s": exc.retry_after_s},
                extra=[("Retry-After",
                        str(max(1, round(exc.retry_after_s))))])
        except SpecError as exc:
            await self._respond(writer, 400, {
                "error": str(exc), "error_type": type(exc).__name__})
        except ServiceError as exc:
            await self._respond(writer, 404, {
                "error": str(exc), "error_type": type(exc).__name__})
        except ReproError as exc:
            await self._respond(writer, 500, {
                "error": str(exc), "error_type": type(exc).__name__})
        # repro: lint-ignore[REP002] last-resort 500: a handler bug
        # must not kill the accept loop or hang the client
        except Exception as exc:  # pragma: no cover - defensive
            await self._respond(writer, 500, {
                "error": str(exc), "error_type": type(exc).__name__})
        finally:
            try:
                writer.close()
            # repro: lint-ignore[REP002] teardown guard: close on an
            # already-dead transport raises transport-specific errors
            except Exception:  # pragma: no cover - already closed
                pass

    @staticmethod
    async def _read_request(reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            raise ServiceError(
                f"malformed request line: {request_line!r}")
        method, target, _version = parts
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip(
                "\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if not 0 <= length <= _MAX_BODY:
            raise ServiceError(f"unreasonable content-length: {length}")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), split.path, query, headers, body

    # -- responses -------------------------------------------------------------

    async def _respond(self, writer, status: int, payload: dict,
                       extra=()) -> None:
        body = _encode(payload)
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        head.extend(f"{name}: {value}" for name, value in extra)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    @staticmethod
    async def _start_chunked(writer) -> None:
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

    @staticmethod
    async def _write_chunk(writer, line: bytes) -> None:
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()

    # -- routing ---------------------------------------------------------------

    async def _route(self, writer, method, path, query, client,
                     body) -> None:
        if path == "/v1/health" and method == "GET":
            await self._respond(writer, 200, {
                "status": "ok", "backend": self.spec.backend,
                "dispatchers": self.spec.dispatchers,
                "store": self.spec.store})
            return
        if path == "/v1/stats" and method == "GET":
            await self._respond(writer, 200, self.runtime.stats())
            return
        if path == "/v1/runs" and method == "POST":
            await self._submit(writer, query, client, body)
            return
        if path.startswith("/v1/runs/"):
            rest = path[len("/v1/runs/"):]
            if rest.endswith("/stream") and method == "GET":
                await self._stream(writer, rest[:-len("/stream")], query)
                return
            if "/" not in rest:
                if method == "GET":
                    await self._status(writer, rest)
                    return
                if method == "DELETE":
                    await self._cancel(writer, rest)
                    return
                await self._respond(writer, 405, {
                    "error": f"method {method} not allowed"})
                return
        await self._respond(writer, 404, {"error": f"no route: "
                                                   f"{method} {path}"})

    async def _submit(self, writer, query, client, body) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise SpecError(f"request body is not valid JSON: {exc}") \
                from exc
        if not isinstance(payload, dict):
            raise SpecError("request body must be a JSON object")
        screening = None
        if "spec" in payload and "kind" not in payload:
            screening = payload.get("screening")
            payload = payload["spec"]
            if not isinstance(payload, dict):
                raise SpecError("'spec' must be a JSON object")
        job = self.runtime.submit(client, payload, screening=screening)
        if query.get("wait") not in (None, "", "0"):
            while not job.terminal:
                await asyncio.sleep(_POLL_S)
            status = job.describe()
            if job.status == "failed":
                # Execution-time failures are the server's fault class,
                # not the request's: 500, with the original error type
                # preserved for the client to re-raise.
                await self._respond(writer, 500, status)
                return
            await self._respond(writer, 200, status)
            return
        await self._respond(writer, 202, {"id": job.id,
                                          "status": job.status})

    async def _status(self, writer, job_id: str) -> None:
        job = self.runtime.registry.get(job_id)
        if job is None:
            raise ServiceError(f"no such run: {job_id}")
        await self._respond(writer, 200, job.describe())

    async def _cancel(self, writer, job_id: str) -> None:
        job = self.runtime.cancel(job_id)
        # Give a running dispatcher a beat to notice; the response then
        # reports the settled status when it settled fast.
        for _ in range(5):
            if job.terminal:
                break
            await asyncio.sleep(_POLL_S)
        await self._respond(writer, 200, {"id": job.id,
                                          "status": job.status})

    async def _stream(self, writer, job_id: str, query) -> None:
        job = self.runtime.registry.get(job_id)
        if job is None:
            raise ServiceError(f"no such run: {job_id}")
        samples = query.get("samples") not in (None, "", "0")
        await self._start_chunked(writer)
        sent = 0
        while True:
            fresh, terminal = job.records_from(sent)
            for wire in fresh:
                if not samples and "samples" in wire:
                    wire = {k: v for k, v in wire.items()
                            if k != "samples"}
                await self._write_chunk(writer, _encode(wire) + b"\n")
            sent += len(fresh)
            if terminal and not fresh:
                break
            if not fresh:
                await asyncio.sleep(_POLL_S)
        end = {"event": "end", "id": job.id, "status": job.status,
               "n_records": sent}
        if job.error is not None:
            end["error"] = job.error["message"]
            end["error_type"] = job.error["type"]
        await self._write_chunk(writer, _encode(end) + b"\n")
        writer.write(b"0\r\n\r\n")
        await writer.drain()
