"""The declarative server configuration: :class:`ServeSpec`.

Mirrors the spec discipline of :mod:`repro.api.specs` — a frozen,
validated, JSON-round-trippable dataclass — so a server deployment is
as reproducible an artifact as an assay: the CLI ``repro serve`` can
take either flags or a spec file, and a test can construct the exact
server it needs in one expression.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.api.resilience import RetryPolicy
from repro.api.specs import _EXECUTION_BACKENDS
from repro.errors import SpecError

__all__ = ["ServeSpec"]


@dataclass(frozen=True)
class ServeSpec:
    """Everything a diagnostics server needs to come up.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port (the
        bound port is reported by :meth:`DiagnosticsServer.start` and
        printed by the CLI) — the right default for tests and CI.
    backend:
        Execution backend for every submitted run: ``"inline"`` (fused
        in-process reference) or ``"process"`` (sharded worker pool,
        kept persistent per dispatcher so process spawn is paid once,
        not per request).  The server's backend is authoritative — a
        submitted spec's own ``execution`` block is ignored, because
        worker capacity belongs to the deployment, not the request.
    workers:
        Worker processes per dispatcher pool (``None``: one per core).
    dispatchers:
        Parallel dispatcher threads, each owning its own executor (and
        persistent pool); the job queue feeds them fairly.
    store:
        ``RunStore`` root directory shared by every dispatcher (warm
        multiplexing — one client's run warms the next client's), or
        ``None`` to serve without caching.  Usage accounting persists
        next to it (``<store>.usage.json``).
    queue:
        Shared queue directory for ``backend="distributed"`` — the
        server publishes every run's shards there and independent
        ``repro worker`` processes (any host sharing the file system)
        execute them.  Required for the distributed backend, rejected
        otherwise.
    rate_capacity, rate_refill_per_s:
        Per-client token bucket: burst size and sustained submissions
        per second.  ``rate_capacity=0`` disables limiting.
    retry, on_error:
        Supervised-execution policy applied to every run (see
        :class:`~repro.api.resilience.RetryPolicy`); defaults to plain
        fail-fast execution.
    """

    host: str = "127.0.0.1"
    port: int = 0
    backend: str = "inline"
    workers: int | None = None
    dispatchers: int = 2
    store: str | None = None
    queue: str | None = None
    rate_capacity: float = 0.0
    rate_refill_per_s: float = 1.0
    retry: RetryPolicy | None = None
    on_error: str = "raise"

    def __post_init__(self) -> None:
        if self.backend not in _EXECUTION_BACKENDS:
            raise SpecError(
                f"serve spec: unknown backend {self.backend!r} "
                f"(known: {', '.join(_EXECUTION_BACKENDS)})")
        if not (0 <= int(self.port) <= 65535):
            raise SpecError(f"serve spec: port out of range: {self.port}")
        if self.workers is not None and int(self.workers) < 1:
            raise SpecError(f"serve spec: workers must be >= 1, "
                            f"got {self.workers}")
        if int(self.dispatchers) < 1:
            raise SpecError(f"serve spec: dispatchers must be >= 1, "
                            f"got {self.dispatchers}")
        if self.queue is not None and not isinstance(self.queue, str):
            raise SpecError(f"serve spec: queue must be a directory "
                            f"path, got {type(self.queue).__name__}")
        if self.backend == "distributed" and self.queue is None:
            raise SpecError("serve spec: the distributed backend needs "
                            "a queue directory (queue / --queue)")
        if self.queue is not None and self.backend != "distributed":
            raise SpecError("serve spec: queue only applies to the "
                            "distributed backend")
        if float(self.rate_capacity) < 0:
            raise SpecError(f"serve spec: rate_capacity must be >= 0, "
                            f"got {self.rate_capacity}")
        if float(self.rate_refill_per_s) <= 0:
            raise SpecError(f"serve spec: rate_refill_per_s must be > 0, "
                            f"got {self.rate_refill_per_s}")
        if self.on_error not in ("raise", "partial"):
            raise SpecError(f"serve spec: on_error must be 'raise' or "
                            f"'partial', got {self.on_error!r}")

    def to_dict(self) -> dict:
        return {"kind": "serve", "host": self.host, "port": int(self.port),
                "backend": self.backend,
                "workers": (int(self.workers)
                            if self.workers is not None else None),
                "dispatchers": int(self.dispatchers),
                "store": self.store,
                "queue": self.queue,
                "rate_capacity": float(self.rate_capacity),
                "rate_refill_per_s": float(self.rate_refill_per_s),
                "retry": (self.retry.to_dict()
                          if self.retry is not None else None),
                "on_error": self.on_error}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "serve spec") -> "ServeSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object")
        kind = payload.get("kind", "serve")
        if kind != "serve":
            raise SpecError(f"{path}: expected kind 'serve', got {kind!r}")
        retry = payload.get("retry")
        workers = payload.get("workers")
        return cls(
            host=str(payload.get("host", "127.0.0.1")),
            port=int(payload.get("port", 0)),
            backend=str(payload.get("backend", "inline")),
            workers=int(workers) if workers is not None else None,
            dispatchers=int(payload.get("dispatchers", 2)),
            store=payload.get("store"),
            queue=payload.get("queue"),
            rate_capacity=float(payload.get("rate_capacity", 0.0)),
            rate_refill_per_s=float(payload.get("rate_refill_per_s", 1.0)),
            retry=(RetryPolicy.from_dict(retry, f"{path}.retry")
                   if retry is not None else None),
            on_error=str(payload.get("on_error", "raise")))
