"""A fair two-tier priority queue feeding the dispatcher threads.

Scheduling policy, in order:

1. **Tier before everything**: full-fidelity submissions (tier 0) always
   run before ``screening`` submissions (tier 1) — a coarse-grid scout
   sweep must never delay a clinical-fidelity run.
2. **Round-robin across clients within a tier**: each pop takes the next
   job of the next client in rotation, so one client queueing a
   thousand runs cannot starve a client queueing one (per-client FIFO
   order is preserved — a client's own jobs run in submission order).

The queue is a plain ``threading.Condition`` structure — dispatchers
block in :meth:`pop` with a timeout, submissions and :meth:`close` wake
them — because the producers (asyncio handlers) and consumers
(dispatcher threads) live on different concurrency substrates and a
thread-safe handoff is the simplest sound bridge between them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from repro.errors import ServiceError

__all__ = ["PriorityJobQueue"]

_TIER_NORMAL = 0
_TIER_SCREENING = 1


class PriorityJobQueue:
    """Two priority tiers of per-client FIFO queues, popped fairly."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        # tier -> (client -> deque of jobs); OrderedDict order is the
        # round-robin rotation: pop takes the first client's next job,
        # then moves that client to the back of the rotation.
        self._tiers: tuple[OrderedDict, OrderedDict] = (
            OrderedDict(), OrderedDict())
        self._size = 0
        self._closed = False

    def __len__(self) -> int:
        with self._cond:
            return self._size

    def push(self, job, client: str, screening: bool = False) -> None:
        """Enqueue a job for ``client`` (``screening`` deprioritizes)."""
        with self._cond:
            if self._closed:
                raise ServiceError("job queue is closed")
            tier = self._tiers[
                _TIER_SCREENING if screening else _TIER_NORMAL]
            tier.setdefault(client, deque()).append(job)
            self._size += 1
            self._cond.notify()

    def pop(self, timeout: float | None = None):
        """The next job under the scheduling policy, or ``None`` when
        the wait times out or the queue is closed."""
        with self._cond:
            while True:
                for tier in self._tiers:
                    if not tier:
                        continue
                    client, jobs = next(iter(tier.items()))
                    job = jobs.popleft()
                    # Rotate: exhausted clients leave the ring, clients
                    # with more work move to the back of it.
                    del tier[client]
                    if jobs:
                        tier[client] = jobs
                    self._size -= 1
                    return job
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    def remove(self, job_id: str) -> bool:
        """Drop a still-queued job by id (queued-state cancellation).

        Returns ``False`` when the job is not in the queue — already
        popped by a dispatcher (cancel must then go through the job's
        cancel event) or never queued.
        """
        with self._cond:
            for tier in self._tiers:
                for client, jobs in list(tier.items()):
                    for job in jobs:
                        if job.id == job_id:
                            jobs.remove(job)
                            if not jobs:
                                del tier[client]
                            self._size -= 1
                            return True
        return False

    def depth(self) -> dict:
        """Queue depth overall, per tier, and per client."""
        with self._cond:
            per_client: dict[str, int] = {}
            for tier in self._tiers:
                for client, jobs in tier.items():
                    per_client[client] = (per_client.get(client, 0)
                                          + len(jobs))
            return {"total": self._size,
                    "normal": sum(len(j) for j in
                                  self._tiers[_TIER_NORMAL].values()),
                    "screening": sum(len(j) for j in
                                     self._tiers[_TIER_SCREENING].values()),
                    "clients": per_client}

    def close(self) -> None:
        """Wake every blocked :meth:`pop` with ``None``; further pushes
        raise.  Jobs already queued stay queued (drainable)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
