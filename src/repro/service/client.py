"""A thin stdlib client for the diagnostics service.

``http.client`` only — the client exists so tests, CI and examples can
drive a server without inventing ad-hoc socket code, and so error
mapping is symmetric: the HTTP statuses the server emits come back as
the same :mod:`repro.errors` classes an inline run would have raised
(400 → :class:`~repro.errors.SpecError`, 429 →
:class:`~repro.errors.RateLimitError` with the server's suggested
backoff, 500 → :class:`~repro.errors.ExecutionError` when that is what
the server recorded, :class:`~repro.errors.ServiceError` otherwise).

One connection per request; :meth:`ServiceClient.stream` holds its
connection open and yields NDJSON lines as the server emits them
(``http.client`` decodes the chunked framing transparently).
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from http.client import HTTPConnection

from repro.errors import (
    ExecutionError,
    RateLimitError,
    ServiceError,
    SpecError,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to a :class:`~repro.service.server.DiagnosticsServer`."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 api_key: str = "anonymous",
                 timeout_s: float = 120.0) -> None:
        self.host = host
        self.port = int(port)
        self.api_key = api_key
        self.timeout_s = float(timeout_s)

    def _connect(self) -> HTTPConnection:
        return HTTPConnection(self.host, self.port,
                              timeout=self.timeout_s)

    def _headers(self) -> dict:
        return {"X-API-Key": self.api_key,
                "Content-Type": "application/json"}

    @staticmethod
    def _raise_for(status: int, headers, payload: dict) -> None:
        if status < 400:
            return
        message = payload.get("error", f"HTTP {status}")
        error_type = payload.get("error_type", "")
        if status == 400:
            raise SpecError(message)
        if status == 429:
            retry_after = payload.get("retry_after_s")
            if retry_after is None:
                retry_after = float(headers.get("Retry-After", 0) or 0)
            raise RateLimitError(message, retry_after_s=retry_after)
        if status == 500 and error_type == "ExecutionError":
            raise ExecutionError(message)
        raise ServiceError(f"HTTP {status}: {message}"
                           + (f" ({error_type})" if error_type else ""))

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        conn = self._connect()
        try:
            conn.request(method, path,
                         body=(json.dumps(body).encode()
                               if body is not None else None),
                         headers=self._headers())
            resp = conn.getresponse()
            raw = resp.read()
            try:
                payload = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"non-JSON response (HTTP {resp.status}): "
                    f"{raw[:200]!r}") from exc
            self._raise_for(resp.status, resp.headers, payload)
            return payload
        finally:
            conn.close()

    # -- endpoints -------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def submit(self, spec, screening: bool | None = None,
               wait: bool = False) -> dict:
        """Submit a run; returns the server's status payload.

        ``spec`` may be any runnable spec dataclass (``to_dict()`` is
        taken) or an already-canonical payload dict.  ``wait=True``
        blocks until the run is terminal — execution failures re-raise
        here.  The async default returns ``{"id": ..., "status":
        "queued"}``.
        """
        payload = spec.to_dict() if hasattr(spec, "to_dict") else spec
        body: dict = {"spec": payload}
        if screening is not None:
            body["screening"] = bool(screening)
        return self._request("POST",
                             "/v1/runs" + ("?wait=1" if wait else ""),
                             body=body)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/runs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/v1/runs/{job_id}")

    def stream(self, job_id: str,
               samples: bool = True) -> Iterator[dict]:
        """Follow a run's NDJSON stream, yielding one dict per line.

        Record lines come first (``samples=True`` — the default — asks
        the server for the lossless sample arrays, making streamed
        records byte-comparable with inline runs); the final yielded
        line is the ``{"event": "end", ...}`` terminator carrying the
        run's final status.
        """
        conn = self._connect()
        try:
            path = f"/v1/runs/{job_id}/stream"
            if samples:
                path += "?samples=1"
            conn.request("GET", path, headers=self._headers())
            resp = conn.getresponse()
            if resp.status >= 400:
                raw = resp.read()
                try:
                    payload = json.loads(raw) if raw else {}
                except json.JSONDecodeError:
                    payload = {}
                self._raise_for(resp.status, resp.headers, payload)
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def records(self, job_id: str, samples: bool = True) -> list[dict]:
        """The run's record payloads (terminator line filtered out);
        raises if the run ended ``failed``."""
        out = []
        for line in self.stream(job_id, samples=samples):
            if line.get("event") == "end":
                if line.get("status") == "failed":
                    error_type = line.get("error_type", "")
                    message = line.get("error", "run failed")
                    if error_type == "ExecutionError":
                        raise ExecutionError(message)
                    if error_type == "SpecError":
                        raise SpecError(message)
                    raise ServiceError(f"run {job_id} failed: {message}")
                break
            out.append(line)
        return out
