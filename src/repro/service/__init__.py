"""Diagnostics-as-a-service: the traffic-serving layer over `repro.api`.

The paper's "integrated platform for advanced diagnostics" is
ultimately a *service* — many clients submitting assays against shared
instrument capacity — and this package is that seam: a long-lived,
stdlib-only asyncio HTTP/JSON server in front of the existing
spec → run → record pipeline.  The service adds scheduling, metering
and transport; it never touches physics.  Every record it streams is
produced by the same :func:`repro.api.iter_results` /
:func:`repro.api.run` front door an inline caller would use, so served
results are **bit-identical** to local ones — cached, supervised and
screening paths included.

Architecture — one request's path through the layers::

    HTTP client (repro.service.client.ServiceClient, stdlib http.client)
        |  POST /v1/runs          X-API-Key -> client identity
        v
    DiagnosticsServer (server.py, asyncio.start_server + minimal HTTP/1.1)
        |  rate check             RateLimiter: per-client token bucket -> 429
        |  parse                  spec_from_dict: SpecError -> 400
        v
    PriorityJobQueue (queue.py)
        |  two tiers: full-fidelity before `screening`; round-robin
        |  across clients within a tier (fair, starvation-free)
        v
    dispatcher threads (runtime.py, one executor EACH)
        |  ProcessExecutor(persistent=True): the worker pool is spawned
        |  once per dispatcher and leased to every run -- process spawn,
        |  the dominant fixed cost of a small fleet, is amortised away
        v
    repro.api.iter_results(spec, backend=executor, store=shared_store)
        |  per-job records append to JobState as they complete
        v
    GET /v1/runs/<id>/stream  -- chunked NDJSON, live-following, with
                                 lossless `samples` sections
    GET /v1/runs/<id>         -- status + provenance
    DELETE /v1/runs/<id>      -- cancel (dequeues, or abandons the
                                 stream: pending shards actually stop)

Shared state: every dispatcher runs against one warm
:class:`~repro.api.store.RunStore` (guarded by the store's in-process
mutex and cross-process ``index.lock``), so one client's run warms the
next client's cache; the :class:`~repro.service.ratelimit.UsageLedger`
(runs, jobs, engine solve steps, wall time, rejections per API key)
persists next to it.  Server deployment is itself a spec
(:class:`~repro.service.config.ServeSpec` — validated, frozen,
JSON-round-trippable) and the CLI entry is ``repro serve``.

The asyncio loop and the dispatcher threads meet only at thread-safe
seams (the queue, :class:`~repro.service.runtime.JobState` snapshots);
the loop polls, the threads compute, and neither blocks the other.
"""

from repro.service.client import ServiceClient
from repro.service.config import ServeSpec
from repro.service.queue import PriorityJobQueue
from repro.service.ratelimit import RateLimiter, TokenBucket, UsageLedger
from repro.service.runtime import JobRegistry, JobState, ServiceRuntime
from repro.service.server import DiagnosticsServer

__all__ = [
    "ServeSpec",
    "DiagnosticsServer",
    "ServiceClient",
    "ServiceRuntime",
    "JobState",
    "JobRegistry",
    "PriorityJobQueue",
    "TokenBucket",
    "RateLimiter",
    "UsageLedger",
]
