"""Analog-to-digital converter model (paper Fig. 2, Sec. II-C).

The readout "translates [current] into a voltage that can be digitized
through an ADC".  The model is a uniform mid-tread quantizer with
saturation flags, plus the sizing helper that turns the paper's two
readout specs into bit counts:

- oxidases:   +/-10 uA range at 10 nA resolution -> 2000 steps -> 11 bits,
- cytochromes: +/-100 uA at 100 nA             -> 2000 steps -> 11 bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicsError
from repro.units import ensure_positive

__all__ = ["ADC", "bits_for_resolution"]


def bits_for_resolution(full_range: float, resolution: float) -> int:
    """Bits needed so one LSB is at most ``resolution`` over ``full_range``.

    ``full_range`` is the total span (max - min).  The paper's oxidase
    spec (20 uA span / 10 nA) needs ceil(log2(2000)) = 11 bits.
    """
    ensure_positive(full_range, "full_range")
    ensure_positive(resolution, "resolution")
    if resolution >= full_range:
        raise ElectronicsError("resolution must be finer than the range")
    return max(1, math.ceil(math.log2(full_range / resolution)))


@dataclass(frozen=True)
class ADC:
    """Uniform quantizer with ``n_bits`` over [v_min, v_max].

    Codes are integers in [0, 2^n - 1]; the transfer is mid-tread
    (code 0 maps back to v_min).  ``sample_rate`` is the conversion rate
    used by throughput calculations; ``power``/``area_mm2`` feed the cost
    model.
    """

    n_bits: int = 11
    v_min: float = -1.2
    v_max: float = 1.2
    sample_rate: float = 100.0
    power: float = 200.0e-6
    area_mm2: float = 0.1

    def __post_init__(self) -> None:
        if not 1 <= self.n_bits <= 32:
            raise ElectronicsError(f"n_bits must be in [1, 32], got {self.n_bits}")
        if self.v_max <= self.v_min:
            raise ElectronicsError("v_max must exceed v_min")
        ensure_positive(self.sample_rate, "sample_rate")
        ensure_positive(self.power, "power")
        ensure_positive(self.area_mm2, "area_mm2")

    @property
    def n_codes(self) -> int:
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        """One code step in volts."""
        return (self.v_max - self.v_min) / (self.n_codes - 1)

    def quantize(self, voltage):
        """Convert voltage(s) to integer code(s), clipping at the ends."""
        v = np.asarray(voltage, dtype=float)
        code = np.rint((v - self.v_min) / self.lsb)
        code = np.clip(code, 0, self.n_codes - 1).astype(np.int64)
        return int(code) if v.ndim == 0 else code

    def to_voltage(self, code):
        """Map code(s) back to the reconstruction voltage."""
        c = np.asarray(code, dtype=float)
        v = self.v_min + c * self.lsb
        return float(v) if c.ndim == 0 else v

    def saturates(self, voltage):
        """Whether the voltage lies outside the conversion range."""
        v = np.asarray(voltage, dtype=float)
        out = (v < self.v_min) | (v > self.v_max)
        return bool(out) if v.ndim == 0 else out

    def quantization_noise_rms(self) -> float:
        """RMS quantization error, volts (LSB / sqrt(12))."""
        return self.lsb / math.sqrt(12.0)

    def current_resolution(self, feedback_resistance: float) -> float:
        """Current per LSB behind a TIA of the given Rf, amperes."""
        ensure_positive(feedback_resistance, "feedback_resistance")
        return self.lsb / feedback_resistance

    @classmethod
    def for_readout(cls, full_scale_current: float,
                    current_resolution: float,
                    rail: float = 1.2, **kwargs) -> "ADC":
        """Size an ADC for a bipolar current readout spec.

        ``full_scale_current`` is the one-sided range (e.g. 10 uA for the
        oxidase class); ``current_resolution`` the required LSB in
        amperes.  The conversion range matches a TIA railed at ``rail``.
        """
        bits = bits_for_resolution(2.0 * full_scale_current,
                                   current_resolution)
        return cls(n_bits=bits, v_min=-rail, v_max=rail, **kwargs)
