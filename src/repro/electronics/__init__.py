"""Electronic readout substrate: the building blocks of paper Fig. 2."""

from repro.electronics.adc import ADC, bits_for_resolution
from repro.electronics.chain import AcquisitionChain, ChannelReading
from repro.electronics.freq_readout import CurrentToFrequencyConverter
from repro.electronics.mux import Multiplexer, MuxSchedule, MuxSlot
from repro.electronics.noise import (
    CdsStrategy,
    ChoppingStrategy,
    NoiseModel,
    NoiseStrategy,
    NoStrategy,
    flicker_noise_series,
)
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import (
    CYP_READOUT,
    OXIDASE_READOUT,
    TransimpedanceAmplifier,
)
from repro.electronics.waveform import (
    MAX_ACCURATE_SCAN_RATE,
    ConstantWaveform,
    StepWaveform,
    TriangleWaveform,
    Waveform,
    uniform_sample_times,
)

__all__ = [
    "Waveform", "ConstantWaveform", "StepWaveform", "TriangleWaveform",
    "MAX_ACCURATE_SCAN_RATE", "uniform_sample_times",
    "Potentiostat",
    "TransimpedanceAmplifier", "OXIDASE_READOUT", "CYP_READOUT",
    "NoiseModel", "NoiseStrategy", "NoStrategy", "ChoppingStrategy",
    "CdsStrategy", "flicker_noise_series",
    "ADC", "bits_for_resolution",
    "Multiplexer", "MuxSchedule", "MuxSlot",
    "CurrentToFrequencyConverter",
    "AcquisitionChain", "ChannelReading",
]
