"""Working-electrode multiplexer (paper Sec. II-C and Sec. III).

"Multiplexing circuits to support the readout of multiple current sources
and the drive of multiple control points for the potential" — and on the
Fig. 4 chip, "the different working electrodes share the same counter and
reference electrodes, so it is necessary to multiplex the signal of the
working electrodes, in order to activate them sequentially."

:class:`Multiplexer` models the analog switch matrix: channel count,
switch settling, charge injection, and the round-robin
:class:`MuxSchedule` that sequences the WEs.  Its throughput model feeds
the sample-throughput property of Sec. II-B and the readout-sharing
ablation (A5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicsError
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["Multiplexer", "MuxSlot", "MuxSchedule"]


@dataclass(frozen=True)
class MuxSlot:
    """One dwell interval of the schedule: ``channel`` active in [start, end)."""

    channel: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ElectronicsError("slot end must be after start")

    @property
    def dwell(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class MuxSchedule:
    """A periodic round-robin schedule over named channels."""

    slots: tuple[MuxSlot, ...]

    def __post_init__(self) -> None:
        if not self.slots:
            raise ElectronicsError("schedule needs at least one slot")
        for a, b in zip(self.slots, self.slots[1:]):
            if b.start < a.end:
                raise ElectronicsError("slots must not overlap")

    @property
    def period(self) -> float:
        """One full scan over all channels, seconds."""
        return self.slots[-1].end - self.slots[0].start

    def channels(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(slot.channel for slot in self.slots))

    def active_channel(self, t: float) -> str | None:
        """Channel selected at time ``t`` (cyclic), ``None`` in gaps."""
        if self.period <= 0.0:
            return self.slots[0].channel
        phase = self.slots[0].start + math.fmod(
            max(t - self.slots[0].start, 0.0), self.period)
        for slot in self.slots:
            if slot.start <= phase < slot.end:
                return slot.channel
        return None

    def time_since_switch(self, t: float) -> float:
        """Seconds since the active slot began (settling bookkeeping)."""
        if self.period <= 0.0:
            return t
        phase = self.slots[0].start + math.fmod(
            max(t - self.slots[0].start, 0.0), self.period)
        for slot in self.slots:
            if slot.start <= phase < slot.end:
                return phase - slot.start
        return 0.0

    def times_since_switch(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`time_since_switch` over a whole time axis.

        One ``searchsorted`` over the slot starts replaces the
        per-sample Python scan; gaps between slots map to 0.0, exactly
        as the scalar method does.
        """
        t = np.asarray(times, dtype=float)
        if self.period <= 0.0:
            return t.copy()
        start0 = self.slots[0].start
        phase = start0 + np.fmod(np.maximum(t - start0, 0.0), self.period)
        starts = np.asarray([slot.start for slot in self.slots])
        ends = np.asarray([slot.end for slot in self.slots])
        idx = np.searchsorted(starts, phase, side="right") - 1
        return np.where(phase < ends[idx], phase - starts[idx], 0.0)


@dataclass(frozen=True)
class Multiplexer:
    """Analog mux in front of a shared readout channel.

    Parameters
    ----------
    n_channels:
        Number of selectable working electrodes.
    settling_time:
        Time constant of the transient after a switch, seconds; samples
        taken before ~5 tau carry a settling error.
    charge_injection:
        Charge kicked into the sensor node per switching event, coulombs;
        appears as a decaying current spike.
    on_resistance:
        Switch on-resistance, ohms (adds to the solution resistance seen
        by the potentiostat).
    power, area_mm2:
        Cost-model bookkeeping.
    """

    n_channels: int = 5
    settling_time: float = 0.05
    charge_injection: float = 1.0e-12
    on_resistance: float = 100.0
    power: float = 5.0e-6
    area_mm2: float = 0.02

    def __post_init__(self) -> None:
        if self.n_channels < 1:
            raise ElectronicsError("mux needs at least one channel")
        ensure_positive(self.settling_time, "settling_time")
        ensure_non_negative(self.charge_injection, "charge_injection")
        ensure_non_negative(self.on_resistance, "on_resistance")

    def round_robin(self, channels: list[str], dwell: float,
                    start: float = 0.0) -> MuxSchedule:
        """Equal-dwell schedule over ``channels``.

        ``dwell`` must leave room for settling: at least 5x the settling
        time, otherwise every sample in the slot is still slewing.
        """
        if not channels:
            raise ElectronicsError("need at least one channel to schedule")
        if len(channels) > self.n_channels:
            raise ElectronicsError(
                f"{len(channels)} channels exceed the mux's "
                f"{self.n_channels}")
        ensure_positive(dwell, "dwell")
        if dwell < 5.0 * self.settling_time:
            raise ElectronicsError(
                f"dwell {dwell:.3g}s is shorter than 5x settling "
                f"({5.0 * self.settling_time:.3g}s); samples would slew")
        slots = []
        t = start
        for name in channels:
            slots.append(MuxSlot(channel=name, start=t, end=t + dwell))
            t += dwell
        return MuxSchedule(tuple(slots))

    def settling_factor(self, time_since_switch: float) -> float:
        """Fraction of the true signal visible ``t`` after a switch.

        First-order settling: ``1 - exp(-t/tau)``.
        """
        t = max(float(time_since_switch), 0.0)
        return 1.0 - math.exp(-t / self.settling_time)

    def injection_current(self, time_since_switch: float) -> float:
        """Charge-injection spike decaying with the settling constant, A."""
        t = max(float(time_since_switch), 0.0)
        return (self.charge_injection / self.settling_time
                * math.exp(-t / self.settling_time))

    def settling_factors(self, times_since_switch: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`settling_factor` over an array of times."""
        t = np.maximum(np.asarray(times_since_switch, dtype=float), 0.0)
        return 1.0 - np.exp(-t / self.settling_time)

    def injection_currents(self, times_since_switch: np.ndarray,
                           ) -> np.ndarray:
        """Vectorised :meth:`injection_current` over an array of times."""
        t = np.maximum(np.asarray(times_since_switch, dtype=float), 0.0)
        return (self.charge_injection / self.settling_time
                * np.exp(-t / self.settling_time))

    def scan_period(self, n_active: int, dwell: float) -> float:
        """Time for one full scan of ``n_active`` channels, seconds."""
        if n_active < 1:
            raise ElectronicsError("n_active must be >= 1")
        ensure_positive(dwell, "dwell")
        return n_active * dwell

    def samples_per_channel(self, dwell: float, sample_rate: float,
                            settle_fraction: float = 0.99) -> int:
        """Usable conversions per dwell after waiting out the settling."""
        ensure_positive(sample_rate, "sample_rate")
        if not 0.0 < settle_fraction < 1.0:
            raise ElectronicsError("settle_fraction must be in (0, 1)")
        wait = -self.settling_time * math.log(1.0 - settle_fraction)
        usable = max(dwell - wait, 0.0)
        return int(usable * sample_rate)
