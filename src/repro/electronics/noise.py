"""Noise models and low-frequency noise-reduction strategies (Sec. II-C).

"Particular care has to be taken for the Flicker (or 1/f) noise component,
which can be reduced by techniques such as chopping and Correlated Double
Sampling (CDS)."

The model is an input-referred current noise with three parts:

- a white floor (TIA thermal + amplifier noise),
- a flicker component with spectral density ``white^2 * fc / f`` below the
  corner frequency ``fc``,
- slow baseline drift (electrode fouling, temperature) modelled as a ramp.

Strategies transform the *effective* spectrum:

- :class:`ChoppingStrategy` modulates the signal above the corner before
  amplification, suppressing the flicker contribution by the ratio of the
  corner to the chop frequency;
- :class:`CdsStrategy` subtracts a correlated reference sample (the
  paper's extra enzyme-free WE), cancelling drift and correlated flicker
  at a sqrt(2) white-noise penalty.  Whether the *chemical* blank is valid
  (it is not for direct oxidisers like dopamine/etoposide) is decided at
  the protocol level — this module only handles the electronics.

Noise time series are synthesised spectrally (rFFT shaping), seeded
through numpy Generators so every simulation is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicsError
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "NoiseModel",
    "NoiseStrategy",
    "NoStrategy",
    "ChoppingStrategy",
    "CdsStrategy",
    "flicker_noise_series",
]


def flicker_noise_series(rng: np.random.Generator, n: int, sample_rate: float,
                         density_at_1hz: float) -> np.ndarray:
    """A 1/f-noise series of length ``n``.

    ``density_at_1hz`` is the amplitude spectral density at 1 Hz,
    A/sqrt(Hz); the synthesised PSD falls as 1/f.  Uses rFFT shaping of a
    white series; the DC bin is zeroed (drift is modelled separately).
    """
    ensure_positive(sample_rate, "sample_rate")
    ensure_non_negative(density_at_1hz, "density_at_1hz")
    if n < 1:
        raise ElectronicsError("series length must be >= 1")
    if density_at_1hz == 0.0 or n == 1:
        return np.zeros(n)
    white = rng.standard_normal(n)
    spectrum = np.fft.rfft(white)
    freqs = np.fft.rfftfreq(n, d=1.0 / sample_rate)
    shaping = np.zeros_like(freqs)
    nonzero = freqs > 0.0
    shaping[nonzero] = 1.0 / np.sqrt(freqs[nonzero])
    shaped = np.fft.irfft(spectrum * shaping, n=n)
    # Normalise so the realised PSD matches density_at_1hz^2 / f: the
    # white input has PSD 2/fs per unit variance (one-sided), so scale by
    # density * sqrt(fs/2) ... folded into an empirical RMS normalisation
    # over the shaped series' analytic RMS.
    df = sample_rate / n
    band = freqs[nonzero]
    target_var = np.sum(density_at_1hz ** 2 / band) * df
    realised_var = float(np.var(shaped))
    if realised_var <= 0.0:
        return np.zeros(n)
    return shaped * math.sqrt(target_var / realised_var)


@dataclass(frozen=True)
class NoiseModel:
    """Input-referred current-noise budget of one readout channel.

    Parameters
    ----------
    white_density:
        White floor, A/sqrt(Hz).
    flicker_corner:
        Corner frequency, Hz: below it the 1/f component exceeds the
        white floor.
    drift_rate:
        Slow baseline drift, A/s (electrode fouling, temperature).
    """

    white_density: float
    flicker_corner: float = 10.0
    drift_rate: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.white_density, "white_density")
        ensure_non_negative(self.flicker_corner, "flicker_corner")
        ensure_non_negative(abs(self.drift_rate), "drift_rate")

    @property
    def flicker_density_at_1hz(self) -> float:
        """Flicker ASD at 1 Hz: white * sqrt(fc), A/sqrt(Hz)."""
        return self.white_density * math.sqrt(self.flicker_corner)

    def rms_in_band(self, f_low: float, f_high: float) -> float:
        """RMS noise integrated from ``f_low`` to ``f_high``, amperes.

        White part: ``white * sqrt(f_high - f_low)``; flicker part:
        ``white * sqrt(fc * ln(f_high/f_low))``.
        """
        ensure_positive(f_low, "f_low")
        if f_high <= f_low:
            raise ElectronicsError("f_high must exceed f_low")
        white_var = self.white_density ** 2 * (f_high - f_low)
        flicker_var = (self.white_density ** 2 * self.flicker_corner
                       * math.log(f_high / f_low))
        return math.sqrt(white_var + flicker_var)

    def sample(self, rng: np.random.Generator, n: int,
               sample_rate: float) -> np.ndarray:
        """A reproducible noise time series of ``n`` samples, amperes."""
        ensure_positive(sample_rate, "sample_rate")
        nyquist = sample_rate / 2.0
        white = (rng.standard_normal(n)
                 * self.white_density * math.sqrt(nyquist))
        flicker = flicker_noise_series(
            rng, n, sample_rate, self.flicker_density_at_1hz)
        t = np.arange(n) / sample_rate
        drift = self.drift_rate * t
        return white + flicker + drift

    def scaled(self, white_factor: float = 1.0,
               corner_factor: float = 1.0,
               drift_factor: float = 1.0) -> "NoiseModel":
        """A transformed budget (what the strategies return)."""
        return NoiseModel(
            white_density=self.white_density * white_factor,
            flicker_corner=self.flicker_corner * corner_factor,
            drift_rate=self.drift_rate * drift_factor,
        )


class NoiseStrategy:
    """Base: transforms the effective noise budget of a channel."""

    #: Human-readable name used in reports and benches.
    name: str = "none"
    #: Whether the strategy needs a dedicated blank working electrode.
    needs_blank_electrode: bool = False

    def effective_noise(self, model: NoiseModel) -> NoiseModel:
        """The budget after the strategy is applied."""
        raise NotImplementedError

    def extra_power(self) -> float:
        """Added power, watts (clock generators, switches)."""
        return 0.0

    def extra_area_mm2(self) -> float:
        """Added silicon area, mm^2."""
        return 0.0


@dataclass(frozen=True)
class NoStrategy(NoiseStrategy):
    """Raw readout: the budget passes through unchanged."""

    name: str = "raw"

    def effective_noise(self, model: NoiseModel) -> NoiseModel:
        return model


@dataclass(frozen=True)
class ChoppingStrategy(NoiseStrategy):
    """Chopper stabilisation (Sec. II-C).

    "Chopping involves moving the signal of interest to a higher frequency
    before amplification."  Modulating at ``chop_frequency`` well above
    the flicker corner leaves only the residual corner
    ``fc^2 / f_chop`` — the budget's corner shrinks by ``fc/f_chop``.
    Drift is modulated away entirely.
    """

    chop_frequency: float = 1.0e3
    name: str = "chopping"

    def __post_init__(self) -> None:
        ensure_positive(self.chop_frequency, "chop_frequency")

    def effective_noise(self, model: NoiseModel) -> NoiseModel:
        if model.flicker_corner == 0.0:
            return model.scaled(drift_factor=0.0)
        if self.chop_frequency <= model.flicker_corner:
            raise ElectronicsError(
                f"chop frequency {self.chop_frequency} Hz must sit above "
                f"the flicker corner {model.flicker_corner} Hz")
        corner_factor = model.flicker_corner / self.chop_frequency
        return model.scaled(corner_factor=corner_factor, drift_factor=0.0)

    def extra_power(self) -> float:
        return 20.0e-6

    def extra_area_mm2(self) -> float:
        return 0.01


@dataclass(frozen=True)
class CdsStrategy(NoiseStrategy):
    """Correlated double sampling against a blank reference (Sec. II-C).

    "The output of the sensor is measured twice: once in a known condition
    and once in an unknown condition ... the latter can be realized using
    an extra WE without any enzyme on it."  Subtraction cancels the
    correlated low-frequency content (drift and a fraction
    ``correlation`` of the flicker noise) and doubles the white variance.
    """

    correlation: float = 0.9
    name: str = "cds"
    needs_blank_electrode: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.correlation < 1.0:
            raise ElectronicsError(
                f"correlation must be in [0, 1), got {self.correlation!r}")

    def effective_noise(self, model: NoiseModel) -> NoiseModel:
        white_factor = math.sqrt(2.0)
        # Residual flicker variance after subtracting a correlated copy:
        # 2*(1 - rho); expressed as a corner shrink on the doubled floor.
        residual = 2.0 * (1.0 - self.correlation)
        corner_factor = residual / 2.0  # relative to the doubled white var
        return model.scaled(white_factor=white_factor,
                            corner_factor=corner_factor,
                            drift_factor=0.0)

    def extra_power(self) -> float:
        return 10.0e-6

    def extra_area_mm2(self) -> float:
        return 0.02
