"""Transimpedance amplifier — the paper's current readout (Fig. 1, Sec. II-C).

"The most straightforward approach is to convert the biosensor current into
voltage using a transimpedance amplifier."  The paper sets two readout
classes:

- oxidases:   +/-10 uA full scale, 10 nA resolution,
- cytochromes: +/-100 uA full scale, 100 nA resolution.

The behavioural model covers gain (feedback resistance), output rails
(saturation is clipped and *flagged*, not silently ignored), input offset
current, finite bandwidth, and the input-referred noise parameters the
:mod:`repro.electronics.noise` model consumes (thermal floor and flicker
corner; chopping and CDS act on those).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem.constants import BOLTZMANN, STANDARD_TEMPERATURE
from repro.units import ensure_finite, ensure_positive

__all__ = ["TransimpedanceAmplifier", "OXIDASE_READOUT", "CYP_READOUT"]


@dataclass(frozen=True)
class TransimpedanceAmplifier:
    """Resistive-feedback current-to-voltage converter.

    Parameters
    ----------
    feedback_resistance:
        Rf in ohms; output is ``v = -Rf * i`` (inverting).
    rail:
        Output saturates at +/-``rail`` volts.
    input_offset_current:
        Input-referred offset, amperes (adds to every input sample).
    bandwidth:
        Closed-loop -3 dB bandwidth, Hz.
    flicker_corner:
        Frequency below which 1/f noise dominates the white floor, Hz.
        Chopping (Sec. II-C) works by moving the signal above this corner.
    amplifier_noise_density:
        White input-referred current-noise density of the amplifier
        itself, A/sqrt(Hz) (the feedback resistor's 4kT/Rf adds to it).
    power, area_mm2:
        Cost-model bookkeeping.
    """

    feedback_resistance: float = 1.0e5
    rail: float = 1.2
    input_offset_current: float = 0.0
    bandwidth: float = 1.0e3
    flicker_corner: float = 10.0
    amplifier_noise_density: float = 5.0e-12
    power: float = 100.0e-6
    area_mm2: float = 0.03

    def __post_init__(self) -> None:
        ensure_positive(self.feedback_resistance, "feedback_resistance")
        ensure_positive(self.rail, "rail")
        ensure_finite(self.input_offset_current, "input_offset_current")
        ensure_positive(self.bandwidth, "bandwidth")
        ensure_positive(self.flicker_corner, "flicker_corner")
        ensure_positive(self.amplifier_noise_density, "amplifier_noise_density")
        ensure_positive(self.power, "power")
        ensure_positive(self.area_mm2, "area_mm2")

    # -- transfer -----------------------------------------------------------------

    @property
    def full_scale_current(self) -> float:
        """Largest |input current| before the output rails, amperes."""
        return self.rail / self.feedback_resistance

    def output_voltage(self, current):
        """v = -Rf * (i + offset), clipped at the rails."""
        i = np.asarray(current, dtype=float)
        v = -self.feedback_resistance * (i + self.input_offset_current)
        out = np.clip(v, -self.rail, self.rail)
        return float(out) if i.ndim == 0 else out

    def saturates(self, current) -> bool | np.ndarray:
        """Whether the (scalar or array) input drives the output to a rail."""
        i = np.asarray(current, dtype=float)
        v = -self.feedback_resistance * (i + self.input_offset_current)
        out = np.abs(v) >= self.rail
        return bool(out) if i.ndim == 0 else out

    def input_current(self, voltage):
        """Invert the transfer (offset-corrected), for calibrated readback."""
        v = np.asarray(voltage, dtype=float)
        i = -v / self.feedback_resistance - self.input_offset_current
        return float(i) if v.ndim == 0 else i

    # -- noise parameters ------------------------------------------------------------

    def thermal_noise_density(self,
                              temperature_k: float = STANDARD_TEMPERATURE,
                              ) -> float:
        """Input-referred white floor, A/sqrt(Hz).

        Quadrature sum of the feedback resistor's Johnson noise
        ``sqrt(4kT/Rf)`` and the amplifier's own floor.
        """
        johnson = math.sqrt(4.0 * BOLTZMANN * temperature_k
                            / self.feedback_resistance)
        return math.hypot(johnson, self.amplifier_noise_density)

    # -- factories ---------------------------------------------------------------------

    @classmethod
    def for_range(cls, full_scale: float, rail: float = 1.2,
                  **kwargs) -> "TransimpedanceAmplifier":
        """A TIA whose output rails exactly at ``full_scale`` amperes."""
        ensure_positive(full_scale, "full_scale")
        return cls(feedback_resistance=rail / full_scale, rail=rail, **kwargs)


#: Readout for the oxidase class: +/-10 uA full scale (Sec. II-C).
OXIDASE_READOUT = TransimpedanceAmplifier.for_range(10.0e-6)

#: Readout for the cytochrome class: +/-100 uA full scale (Sec. II-C).
CYP_READOUT = TransimpedanceAmplifier.for_range(
    100.0e-6, power=160.0e-6, area_mm2=0.04)
