"""Behavioural potentiostat model (paper Fig. 1).

"A potentiostat circuit keeps the electric potential of the reference and
working electrodes — as well as the interposed fluid — to a value that can
be fixed or variable with respect to ground."

The classic realisation (Fig. 1) is a control amplifier driving the counter
electrode so that the RE tracks the setpoint while the WE is held at
virtual ground by the transimpedance stage.  The behavioural model captures
the non-idealities that matter to the acquisition chain:

- finite open-loop gain → a multiplicative regulation error,
- input offset voltage → an additive setpoint error,
- compliance limits → the CE drive clips when the cell demands more
  voltage than the supply allows (large currents through the solution
  resistance),
- finite control bandwidth → first-order settling after setpoint steps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.units import ensure_finite, ensure_positive

__all__ = ["Potentiostat"]


@dataclass(frozen=True)
class Potentiostat:
    """Control-amplifier potentiostat with finite gain and compliance.

    Parameters
    ----------
    open_loop_gain:
        DC gain of the control amplifier (dimensionless, e.g. 1e5).
    input_offset:
        Input-referred offset voltage, volts.
    compliance:
        Maximum |voltage| the CE driver can deliver, volts.
    bandwidth:
        Closed-loop control bandwidth, Hz.
    solution_resistance:
        Uncompensated solution resistance between CE and RE, ohms; with
        the cell current it sets the CE drive voltage the compliance must
        cover.
    power:
        Static power draw, watts (used by the platform cost model).
    area_mm2:
        Silicon area, mm^2 (cost model).
    """

    open_loop_gain: float = 1.0e5
    input_offset: float = 0.2e-3
    compliance: float = 1.5
    bandwidth: float = 1.0e4
    solution_resistance: float = 1.0e3
    power: float = 150.0e-6
    area_mm2: float = 0.05

    def __post_init__(self) -> None:
        ensure_positive(self.open_loop_gain, "open_loop_gain")
        ensure_finite(self.input_offset, "input_offset")
        ensure_positive(self.compliance, "compliance")
        ensure_positive(self.bandwidth, "bandwidth")
        ensure_positive(self.solution_resistance, "solution_resistance")
        ensure_positive(self.power, "power")
        ensure_positive(self.area_mm2, "area_mm2")

    # -- static regulation -------------------------------------------------------

    def applied_potential(self, e_setpoint):
        """Actual WE-RE potential for a setpoint (scalar or array), volts.

        Finite gain scales the setpoint by G/(1+G); the offset adds
        through the same divider.  Values beyond what compliance can
        sustain (with zero cell current) clip.
        """
        e = np.asarray(e_setpoint, dtype=float)
        closed = self.open_loop_gain / (1.0 + self.open_loop_gain)
        out = closed * (e + self.input_offset)
        out = np.clip(out, -self.compliance, self.compliance)
        return float(out) if e.ndim == 0 else out

    def regulation_error(self, e_setpoint):
        """Setpoint minus actual potential, volts."""
        e = np.asarray(e_setpoint, dtype=float)
        err = e - self.applied_potential(e)
        return float(err) if e.ndim == 0 else err

    # -- compliance ---------------------------------------------------------------

    def counter_drive(self, e_setpoint: float, cell_current: float) -> float:
        """Voltage the CE driver must supply, volts.

        The drive covers the setpoint plus the IR drop through the
        solution: ``|E| + |i| * R_solution``.
        """
        ensure_finite(e_setpoint, "e_setpoint")
        ensure_finite(cell_current, "cell_current")
        return abs(e_setpoint) + abs(cell_current) * self.solution_resistance

    def within_compliance(self, e_setpoint: float, cell_current: float) -> bool:
        """True when the CE drive stays inside the supply."""
        return self.counter_drive(e_setpoint, cell_current) <= self.compliance

    def max_cell_current(self, e_setpoint: float) -> float:
        """Largest |cell current| drivable at ``e_setpoint``, amperes."""
        ensure_finite(e_setpoint, "e_setpoint")
        headroom = self.compliance - abs(e_setpoint)
        if headroom <= 0.0:
            return 0.0
        return headroom / self.solution_resistance

    # -- dynamics -------------------------------------------------------------------

    @property
    def settling_time_constant(self) -> float:
        """First-order time constant of the control loop, seconds."""
        return 1.0 / (2.0 * math.pi * self.bandwidth)

    def settled_after(self, t: float, tolerance: float = 0.01) -> bool:
        """True when a step has settled to within ``tolerance`` after ``t``."""
        ensure_positive(tolerance, "tolerance")
        if t < 0.0:
            return False
        return math.exp(-t / self.settling_time_constant) <= tolerance

    def settle_time(self, tolerance: float = 0.01) -> float:
        """Time to settle within ``tolerance`` of a setpoint step, seconds."""
        ensure_positive(tolerance, "tolerance")
        if tolerance >= 1.0:
            return 0.0
        return -self.settling_time_constant * math.log(tolerance)

    def step_response(self, t, e_step: float = 1.0):
        """Normalised step response e(t) = e_step*(1 - exp(-t/tau))."""
        t_arr = np.asarray(t, dtype=float)
        out = e_step * (1.0 - np.exp(-np.clip(t_arr, 0.0, None)
                                     / self.settling_time_constant))
        return float(out) if t_arr.ndim == 0 else out
