"""Current-to-frequency readout — the paper's alternative to the TIA.

"Alternative approaches convert currents to the frequency domain
[26], [27]."  A current-controlled oscillator integrates the sensor
current onto a capacitor; each time the integrator crosses a threshold it
resets and emits a pulse, so the pulse rate is proportional to the input
current.  A counter gated for ``gate_time`` digitises the rate.

Compared with the TIA+ADC path the converter trades resolution-vs-time
(longer gates resolve smaller currents) for simplicity and intrinsic
digitisation — which is why ultra-low-power potentiostats [26] use it.
The readout-style ablation (A5 companion) compares both paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicsError
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["CurrentToFrequencyConverter"]


@dataclass(frozen=True)
class CurrentToFrequencyConverter:
    """Charge-balancing current-to-frequency converter.

    Parameters
    ----------
    charge_per_pulse:
        Charge integrated per emitted pulse, coulombs; the conversion
        gain is ``1/charge_per_pulse`` Hz/A.
    max_frequency:
        Oscillator ceiling, Hz; currents above
        ``max_frequency * charge_per_pulse`` saturate.
    offset_frequency:
        Zero-input pulse rate (leakage of the integrator), Hz.
    power, area_mm2:
        Cost-model bookkeeping (the attraction of this readout is the
        tiny power budget, per ref. [26]).
    """

    charge_per_pulse: float = 1.0e-12
    max_frequency: float = 5.0e6
    offset_frequency: float = 2.0
    power: float = 15.0e-6
    area_mm2: float = 0.02

    def __post_init__(self) -> None:
        ensure_positive(self.charge_per_pulse, "charge_per_pulse")
        ensure_positive(self.max_frequency, "max_frequency")
        ensure_non_negative(self.offset_frequency, "offset_frequency")

    # -- transfer ---------------------------------------------------------------

    @property
    def gain(self) -> float:
        """Conversion gain, Hz per ampere."""
        return 1.0 / self.charge_per_pulse

    @property
    def full_scale_current(self) -> float:
        """Input current at the oscillator ceiling, amperes."""
        return self.max_frequency * self.charge_per_pulse

    def frequency(self, current):
        """Pulse rate for input current(s); unipolar, clipped at ceiling.

        Charge-balancing converters rectify: the magnitude of the current
        sets the rate (a sign bit is generated separately on chip).
        """
        i = np.asarray(current, dtype=float)
        f = self.offset_frequency + np.abs(i) * self.gain
        out = np.clip(f, 0.0, self.max_frequency)
        return float(out) if i.ndim == 0 else out

    def count(self, current: float, gate_time: float,
              rng: np.random.Generator | None = None) -> int:
        """Pulses counted in one gate; +/-1-count quantisation included.

        With an ``rng`` the fractional pulse is resolved stochastically
        (phase of the first pulse is random); without, it truncates.
        """
        ensure_positive(gate_time, "gate_time")
        expected = self.frequency(current) * gate_time
        if rng is None:
            return int(expected)
        frac = expected - math.floor(expected)
        return int(expected) + (1 if rng.random() < frac else 0)

    def estimate_current(self, count: int, gate_time: float) -> float:
        """Invert a gated count back to a current magnitude, amperes."""
        ensure_positive(gate_time, "gate_time")
        if count < 0:
            raise ElectronicsError("count must be non-negative")
        f = count / gate_time
        return max(f - self.offset_frequency, 0.0) * self.charge_per_pulse

    # -- resolution ----------------------------------------------------------------

    def current_resolution(self, gate_time: float) -> float:
        """One-count resolution for a given gate, amperes.

        ``delta_i = charge_per_pulse / gate_time`` — resolution improves
        linearly with measurement time, the core trade-off of
        frequency-domain readout.
        """
        ensure_positive(gate_time, "gate_time")
        return self.charge_per_pulse / gate_time

    def gate_time_for_resolution(self, resolution: float) -> float:
        """Gate needed to resolve ``resolution`` amperes, seconds."""
        ensure_positive(resolution, "resolution")
        return self.charge_per_pulse / resolution
