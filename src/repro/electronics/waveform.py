"""Voltage-generator waveforms (paper Sec. II-C).

"A voltage generator that generates a fixed or variable voltage to feed the
potentiostat circuit.  For single-target chronoamperometry, the voltage is
fixed and chosen on the basis of the electrochemical reaction.  For cyclic
voltammetry, this circuit sweeps repeatedly within the voltage range of
interest."

Three waveforms cover the paper's protocols:

- :class:`ConstantWaveform` — chronoamperometry;
- :class:`StepWaveform` — potential-step experiments and Cottrell tests;
- :class:`TriangleWaveform` — cyclic voltammetry, with the scan-rate
  bookkeeping the 20 mV/s design rule needs.

All waveforms are pure functions of time, vectorised over numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ElectronicsError
from repro.units import ensure_finite, ensure_positive

__all__ = [
    "Waveform",
    "ConstantWaveform",
    "StepWaveform",
    "TriangleWaveform",
    "MAX_ACCURATE_SCAN_RATE",
    "uniform_sample_times",
]

#: The paper's accuracy limit for cyclic voltammetry: "the electrochemical
#: cell reacts only to slow potential variations of about 20 mV/sec".
MAX_ACCURATE_SCAN_RATE = 0.020


def uniform_sample_times(duration: float, sample_rate: float) -> np.ndarray:
    """The library-wide uniform time axis covering ``[0, duration]``.

    ``round(duration * sample_rate) + 1`` instants spaced by exactly
    ``1 / sample_rate`` (never fewer than two).  Every protocol and
    waveform builds its axis here, so sample counts and dt agree across
    the chemistry, the acquisition chain (which requires uniform
    spacing) and the analysis layer even when ``duration * sample_rate``
    is not an integer — the seed mixed ``ceil``-based ``linspace`` and
    ``round``-based ``arange`` constructions, which disagreed by one
    sample and by a dt rescale in exactly those cases.
    """
    ensure_positive(duration, "duration")
    ensure_positive(sample_rate, "sample_rate")
    n = max(int(round(duration * sample_rate)) + 1, 2)
    return np.arange(n) * (1.0 / sample_rate)


class Waveform:
    """Base interface: potential and scan rate as functions of time."""

    #: Total programmed duration, seconds.
    duration: float

    def value(self, t):
        """Potential at time(s) ``t``, volts (scalar in, scalar out)."""
        raise NotImplementedError

    def rate(self, t):
        """Scan rate dE/dt at time(s) ``t``, V/s."""
        raise NotImplementedError

    def sample_times(self, sample_rate: float) -> np.ndarray:
        """Uniform sample instants covering the waveform.

        Delegates to :func:`uniform_sample_times` so waveforms and
        protocols share one time-axis construction.
        """
        return uniform_sample_times(self.duration, sample_rate)

    def exceeds_accurate_scan_rate(self,
                                   limit: float = MAX_ACCURATE_SCAN_RATE,
                                   ) -> bool:
        """True when any part of the waveform sweeps faster than ``limit``.

        Above the limit the CV peaks shift and merge (ablation A2), so the
        design rules reject such configurations for multi-target CYP
        electrodes.
        """
        probe = self.sample_times(1000.0 / max(self.duration, 1e-9))
        return bool(np.any(np.abs(self.rate(probe)) > limit * (1 + 1e-9)))


@dataclass(frozen=True)
class ConstantWaveform(Waveform):
    """A fixed potential held for ``duration`` seconds (chronoamperometry)."""

    level: float
    duration: float

    def __post_init__(self) -> None:
        ensure_finite(self.level, "level")
        ensure_positive(self.duration, "duration")

    def value(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.full_like(t_arr, self.level)
        return float(out) if t_arr.ndim == 0 else out

    def rate(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.zeros_like(t_arr)
        return float(out) if t_arr.ndim == 0 else out


@dataclass(frozen=True)
class StepWaveform(Waveform):
    """Piecewise-constant potential: levels[i] from times[i] to times[i+1].

    ``times`` must start at 0 and be strictly increasing;
    ``duration`` extends the last level.
    """

    times: tuple[float, ...]
    levels: tuple[float, ...]
    duration: float

    def __post_init__(self) -> None:
        if len(self.times) != len(self.levels) or not self.times:
            raise ElectronicsError(
                "StepWaveform needs equal-length, non-empty times/levels")
        if self.times[0] != 0.0:
            raise ElectronicsError("StepWaveform times must start at 0")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ElectronicsError("StepWaveform times must be increasing")
        ensure_positive(self.duration, "duration")
        if self.duration < self.times[-1]:
            raise ElectronicsError("duration must cover the last step")
        for lv in self.levels:
            ensure_finite(lv, "level")

    def value(self, t):
        t_arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(np.asarray(self.times), t_arr, side="right") - 1
        idx = np.clip(idx, 0, len(self.levels) - 1)
        out = np.asarray(self.levels, dtype=float)[idx]
        return float(out) if t_arr.ndim == 0 else out

    def rate(self, t):
        t_arr = np.asarray(t, dtype=float)
        out = np.zeros_like(t_arr)
        return float(out) if t_arr.ndim == 0 else out


@dataclass(frozen=True)
class TriangleWaveform(Waveform):
    """Cyclic-voltammetry sweep: e_start -> e_vertex -> e_start, repeated.

    The sweep starts at ``e_start``, ramps linearly at ``scan_rate`` to
    ``e_vertex`` (either direction), returns, and repeats for
    ``n_cycles``.  For the CYP sensors of Table II the forward sweep is
    cathodic: ``e_vertex`` below ``e_start``.
    """

    e_start: float
    e_vertex: float
    scan_rate: float
    n_cycles: int = 1

    def __post_init__(self) -> None:
        ensure_finite(self.e_start, "e_start")
        ensure_finite(self.e_vertex, "e_vertex")
        ensure_positive(self.scan_rate, "scan_rate")
        if self.e_vertex == self.e_start:
            raise ElectronicsError("e_vertex must differ from e_start")
        if self.n_cycles < 1:
            raise ElectronicsError("n_cycles must be >= 1")

    @property
    def window(self) -> float:
        """Potential window |e_vertex - e_start|, volts."""
        return abs(self.e_vertex - self.e_start)

    @property
    def half_period(self) -> float:
        """Time of one sweep leg, seconds."""
        return self.window / self.scan_rate

    @property
    def duration(self) -> float:  # type: ignore[override]
        return 2.0 * self.half_period * self.n_cycles

    @property
    def direction(self) -> float:
        """+1 for an initially anodic sweep, -1 for cathodic."""
        return 1.0 if self.e_vertex > self.e_start else -1.0

    def value(self, t):
        t_arr = np.asarray(t, dtype=float)
        period = 2.0 * self.half_period
        phase = np.mod(np.clip(t_arr, 0.0, self.duration), period)
        leg1 = np.minimum(phase, self.half_period)
        leg2 = np.maximum(phase - self.half_period, 0.0)
        excursion = self.scan_rate * (leg1 - leg2)
        out = self.e_start + self.direction * excursion
        return float(out) if t_arr.ndim == 0 else out

    def rate(self, t):
        t_arr = np.asarray(t, dtype=float)
        period = 2.0 * self.half_period
        phase = np.mod(np.clip(t_arr, 0.0, self.duration), period)
        sign = np.where(phase < self.half_period, 1.0, -1.0)
        out = self.direction * sign * self.scan_rate
        return float(out) if t_arr.ndim == 0 else out
