"""The full acquisition chain of the platform (paper Fig. 2).

Voltage generator -> potentiostat -> electrochemical cell -> multiplexer ->
transimpedance amplifier -> ADC.  The chemistry layers produce a cell
current; this module carries it through the electronics: mux settling and
charge injection, input-referred noise (with the selected reduction
strategy), TIA transfer and rails, ADC quantisation — and back out as the
calibrated current estimate a host would compute from the codes.

The chain is deliberately *stateless* across calls: every ``digitize``
receives explicit times and currents and a seeded RNG, so simulations are
reproducible sample-for-sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.electronics.adc import ADC
from repro.electronics.mux import Multiplexer, MuxSchedule
from repro.electronics.noise import NoiseModel, NoiseStrategy, NoStrategy
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import TransimpedanceAmplifier
from repro.errors import ElectronicsError
from repro.sensors.electrode import WorkingElectrode
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["ChannelReading", "AcquisitionChain"]


@dataclass(frozen=True)
class ChannelReading:
    """The digitised record of one channel.

    All arrays share one length.  ``current_estimate`` is what a host
    reconstructs from the codes through the known TIA/ADC transfer — the
    quantity every metric in :mod:`repro.analysis` is computed from.
    """

    times: np.ndarray
    true_current: np.ndarray
    input_current: np.ndarray
    output_voltage: np.ndarray
    codes: np.ndarray
    current_estimate: np.ndarray
    saturated: np.ndarray

    def __post_init__(self) -> None:
        n = self.times.size
        for name in ("true_current", "input_current", "output_voltage",
                     "codes", "current_estimate", "saturated"):
            if getattr(self, name).size != n:
                raise ElectronicsError(
                    f"ChannelReading field {name} length mismatch")

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    @property
    def any_saturated(self) -> bool:
        return bool(np.any(self.saturated))

    def tail(self, fraction: float = 0.2) -> np.ndarray:
        """The last ``fraction`` of the current estimates (steady window)."""
        if not 0.0 < fraction <= 1.0:
            raise ElectronicsError("fraction must be in (0, 1]")
        n = max(int(self.n_samples * fraction), 1)
        return self.current_estimate[-n:]


class AcquisitionChain:
    """Potentiostat + mux + TIA + noise strategy + ADC, as one signal path.

    Parameters
    ----------
    potentiostat, tia, adc:
        The analog blocks; see their classes for the modelled effects.
    mux:
        Optional multiplexer (required by multi-WE protocols that share
        this chain across electrodes).
    noise_strategy:
        A :class:`~repro.electronics.noise.NoiseStrategy`; default raw.
    baseline_drift_rate:
        Slow sensor drift, A/s, before any membrane suppression
        (fouling/temperature; cancelled by chopping/CDS).
    seed:
        Seed for the chain's default RNG; ``digitize`` also accepts an
        explicit generator.
    """

    def __init__(self, potentiostat: Potentiostat | None = None,
                 tia: TransimpedanceAmplifier | None = None,
                 adc: ADC | None = None,
                 mux: Multiplexer | None = None,
                 noise_strategy: NoiseStrategy | None = None,
                 baseline_drift_rate: float = 2.0e-10,
                 seed: int = 2011) -> None:
        self.potentiostat = potentiostat if potentiostat else Potentiostat()
        self.tia = tia if tia else TransimpedanceAmplifier()
        self.adc = adc if adc else ADC()
        self.mux = mux
        self.noise_strategy = noise_strategy if noise_strategy else NoStrategy()
        self.baseline_drift_rate = ensure_non_negative(
            baseline_drift_rate, "baseline_drift_rate")
        self._rng = np.random.default_rng(seed)

    # -- noise budget -------------------------------------------------------------

    def noise_model_for(self, we: WorkingElectrode | None = None) -> NoiseModel:
        """The channel's input-referred budget, strategy applied.

        White floor: TIA thermal plus the electrode's own electrochemical
        noise; flicker corner from the TIA; drift scaled down by the
        membrane's suppression when a WE is given.
        """
        white = self.tia.thermal_noise_density()
        drift = self.baseline_drift_rate
        if we is not None:
            white = math.hypot(white, we.sensor_noise_density
                               * we.electrode.equivalent_radius / 1.0e-3)
            drift *= (1.0 - we.functionalization.drift_suppression)
        raw = NoiseModel(white_density=white,
                         flicker_corner=self.tia.flicker_corner,
                         drift_rate=drift)
        return self.noise_strategy.effective_noise(raw)

    def noise_rms(self, we: WorkingElectrode | None = None,
                  bandwidth: float | None = None) -> float:
        """RMS input-referred noise over the measurement band, amperes."""
        model = self.noise_model_for(we)
        f_high = bandwidth if bandwidth else min(
            self.tia.bandwidth, self.adc.sample_rate / 2.0)
        f_low = 0.01  # a 100 s observation window
        return model.rms_in_band(f_low, f_high)

    def quantization_noise_rms(self) -> float:
        """Input-referred ADC quantization noise, amperes (LSB/sqrt(12))."""
        return self.adc.quantization_noise_rms() / self.tia.feedback_resistance

    def effective_input_noise(self, we: WorkingElectrode | None = None,
                              bandwidth: float | None = None) -> float:
        """Analog noise and quantization combined in quadrature, amperes.

        This is the floor the LOD estimates must use: a 100 nA-resolution
        readout cannot resolve a 20 nA peak no matter how quiet the
        amplifier is (the reason the micro platform needs the finer
        cyp_micro class).
        """
        return math.hypot(self.noise_rms(we, bandwidth),
                          self.quantization_noise_rms())

    # -- digitisation ----------------------------------------------------------------

    def digitize(self, times: np.ndarray, currents: np.ndarray,
                 we: WorkingElectrode | None = None,
                 schedule: MuxSchedule | None = None,
                 rng: np.random.Generator | None = None) -> ChannelReading:
        """Carry a cell-current waveform through mux, noise, TIA and ADC.

        ``times`` must be uniformly spaced (the noise synthesis needs a
        sample rate).  When a ``schedule`` is given the mux settling
        factor and charge-injection spike are applied according to the
        time each sample sits after its channel switch.
        """
        times = np.asarray(times, dtype=float)
        currents = np.asarray(currents, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ElectronicsError("digitize needs at least two samples")
        if currents.shape != times.shape:
            raise ElectronicsError("times and currents must have equal shape")
        steps = np.diff(times)
        if not np.allclose(steps, steps[0], rtol=1e-6, atol=1e-12):
            raise ElectronicsError("digitize needs uniform sampling")
        sample_rate = 1.0 / float(steps[0])
        generator = rng if rng is not None else self._rng

        effective = currents.copy()
        if schedule is not None:
            if self.mux is None:
                raise ElectronicsError(
                    "a mux schedule was given but the chain has no mux")
            since = schedule.times_since_switch(times)
            effective = (effective * self.mux.settling_factors(since)
                         + self.mux.injection_currents(since))

        noise = self.noise_model_for(we).sample(
            generator, times.size, sample_rate)
        input_current = effective + noise
        volts = self.tia.output_voltage(input_current)
        codes = self.adc.quantize(volts)
        estimates = self.tia.input_current(self.adc.to_voltage(codes))
        saturated = (np.asarray(self.tia.saturates(input_current))
                     | np.asarray(self.adc.saturates(volts)))
        return ChannelReading(
            times=times, true_current=currents,
            input_current=input_current, output_voltage=volts,
            codes=codes, current_estimate=estimates, saturated=saturated)

    def digitize_batch(self, times: np.ndarray, currents: np.ndarray,
                       wes=None, schedule: MuxSchedule | None = None,
                       rng: np.random.Generator | None = None,
                       noise: np.ndarray | None = None,
                       ) -> list[ChannelReading]:
        """Digitise a stacked ``(M, N)`` batch of channel currents.

        The chain-level entry for callers driving
        :class:`~repro.engine.scheduler.DwellBatch` directly (fused
        dwell groups without a full panel assembly): row ``j`` is
        channel ``j``'s cell current over the shared ``times``, and
        ``wes`` optionally supplies one
        :class:`~repro.sensors.electrode.WorkingElectrode` per row for
        the per-channel noise budget.  Rows are carried through the
        chain strictly in order with one shared generator, so the noise
        stream — and every reading — matches M sequential
        :meth:`digitize` calls exactly.  (The panel/fleet assemblers
        interleave CV digitisations between dwells, so they call
        :meth:`digitize` per electrode themselves, in the same order
        contract.)

        When ``noise`` — a pre-drawn ``(M, N)`` array, row ``j`` being
        channel ``j``'s input-referred noise — is given, no generator
        is consumed at all and the whole batch runs through the TIA/ADC
        transfer as one vectorised 2-D pass.  Every transfer operation
        is elementwise, so each returned reading is bit-identical to a
        scalar :meth:`digitize` call fed the same noise.  This is the
        one-call-per-fused-group path the fleet scheduler uses, with
        the noise pre-drawn per job in electrode order.
        """
        currents = np.asarray(currents, dtype=float)
        if currents.ndim != 2:
            raise ElectronicsError(
                "digitize_batch needs a (channels, samples) current array")
        rows = currents.shape[0]
        we_list = list(wes) if wes is not None else [None] * rows
        if len(we_list) != rows:
            raise ElectronicsError(
                f"got {len(we_list)} working electrodes for {rows} rows")
        if noise is None:
            generator = rng if rng is not None else self._rng
            return [self.digitize(times, currents[j], we=we_list[j],
                                  schedule=schedule, rng=generator)
                    for j in range(rows)]
        times = np.asarray(times, dtype=float)
        if times.ndim != 1 or times.size < 2:
            raise ElectronicsError("digitize needs at least two samples")
        if currents.shape[1] != times.size:
            raise ElectronicsError("times and currents must have equal shape")
        noise = np.asarray(noise, dtype=float)
        if noise.shape != currents.shape:
            raise ElectronicsError(
                "noise and currents must have equal shape")
        steps = np.diff(times)
        if not np.allclose(steps, steps[0], rtol=1e-6, atol=1e-12):
            raise ElectronicsError("digitize needs uniform sampling")
        effective = currents.copy()
        if schedule is not None:
            if self.mux is None:
                raise ElectronicsError(
                    "a mux schedule was given but the chain has no mux")
            since = schedule.times_since_switch(times)
            effective = (effective * self.mux.settling_factors(since)
                         + self.mux.injection_currents(since))
        input_current = effective + noise
        volts = self.tia.output_voltage(input_current)
        codes = self.adc.quantize(volts)
        estimates = self.tia.input_current(self.adc.to_voltage(codes))
        saturated = (np.asarray(self.tia.saturates(input_current))
                     | np.asarray(self.adc.saturates(volts)))
        return [ChannelReading(
            times=times, true_current=currents[j],
            input_current=input_current[j], output_voltage=volts[j],
            codes=codes[j], current_estimate=estimates[j],
            saturated=saturated[j]) for j in range(rows)]

    def measure_constant(self, current: float, duration: float = 10.0,
                         sample_rate: float | None = None,
                         we: WorkingElectrode | None = None,
                         rng: np.random.Generator | None = None,
                         ) -> tuple[float, float]:
        """Digitise a constant current and return (mean, std) estimates.

        This is the fast path for calibration sweeps and LOD blanks:
        thousands of concentration points reduce to one steady current
        each, measured through the full chain for ``duration`` seconds.
        The sample count rounds like the protocols' time axes do, so a
        non-integer ``duration * fs`` no longer silently drops the final
        sample (at least 8 samples are always taken).
        """
        ensure_positive(duration, "duration")
        fs = sample_rate if sample_rate else self.adc.sample_rate
        n = max(int(round(duration * fs)), 8)
        times = np.arange(n) / fs
        currents = np.full(n, float(current))
        reading = self.digitize(times, currents, we=we, rng=rng)
        return (float(np.mean(reading.current_estimate)),
                float(np.std(reading.current_estimate)))

    # -- budgets ------------------------------------------------------------------------

    def total_power(self) -> float:
        """Power of every block in this chain, watts."""
        total = self.potentiostat.power + self.tia.power + self.adc.power
        if self.mux is not None:
            total += self.mux.power
        total += self.noise_strategy.extra_power()
        return total

    def total_area_mm2(self) -> float:
        """Silicon area of every block, mm^2."""
        total = (self.potentiostat.area_mm2 + self.tia.area_mm2
                 + self.adc.area_mm2)
        if self.mux is not None:
            total += self.mux.area_mm2
        total += self.noise_strategy.extra_area_mm2()
        return total

    def describe(self) -> str:
        """One-line signal-path summary (Fig. 2 in words)."""
        mux_part = (f" -> mux({self.mux.n_channels})" if self.mux else "")
        return (f"generator -> potentiostat(G={self.potentiostat.open_loop_gain:.0e})"
                f"{mux_part} -> TIA(Rf={self.tia.feedback_resistance:.0e} ohm)"
                f" -> {self.noise_strategy.name}"
                f" -> ADC({self.adc.n_bits} bit @ {self.adc.sample_rate:g} Hz)")
