"""``python -m repro`` — dispatch to the CLI."""

import sys

from repro.cli import main

sys.exit(main())
