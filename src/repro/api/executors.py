"""Pluggable fleet execution backends behind the ``repro.api`` front door.

:func:`repro.api.run` and :func:`repro.api.iter_results` describe *what*
to run (a :class:`~repro.api.specs.FleetSpec`); an :class:`Executor`
decides *how*.  Two backends ship:

- :class:`InlineExecutor` — one fused
  :meth:`~repro.engine.scheduler.AssayScheduler.run_iter` pass in the
  calling process.  This is the bit-identical reference every other
  backend is pinned against.
- :class:`ProcessExecutor` — the fleet's jobs sharded across worker
  processes.  Each worker receives only canonical assay *payloads*
  (JSON-ready dicts — cells, chains and engines are rebuilt inside the
  worker, so nothing stateful crosses the process boundary), runs one
  fused ``run_iter`` over its shard, and ships back per-job
  :class:`~repro.measurement.panel.PanelResult` objects.  The parent
  re-merges completions in job order, so the streamed records — names,
  seeds, hashes and every sample of every result — are bit-identical
  to the inline backend.  Only wall time and the engine fusion
  statistics differ: each worker fuses its own shard, so an N-job fleet
  that inlines into one dwell group reports one group *per worker*
  here (the per-record statistics stay cumulative in merged job order,
  and the final record still carries the fleet totals).

Backends are selected declaratively (the fleet's
:class:`~repro.api.specs.ExecutionSpec` block), programmatically
(``run(spec, backend=ProcessExecutor(workers=4))``), or by name
(``backend="process"``); :func:`resolve_executor` implements that
precedence.  Anything exposing ``run_fleet(spec) -> iterator of
AssayRunRecord`` can serve as a backend — the :class:`Executor`
protocol is structural.

Both shipped backends take a ``retry`` policy, an ``on_error`` mode
and a ``faults`` injector (:mod:`repro.api.resilience`); configuring
any of them routes ``run_fleet`` through the *supervised* execution
engine — worker crash/hang/error detection, finer-granularity
re-dispatch, partial-fleet degradation — while the default
configuration keeps the plain fast paths below.  With no explicit
``faults``, executors adopt the ``REPRO_FAULTS`` environment injector
(if set), so an unmodified program can be faulted from the outside.
"""

from __future__ import annotations

import os
import threading
import time
from collections.abc import Iterator
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.api.jobs import JobKey
from repro.api.records import AssayRunRecord, EngineStats
from repro.api.resilience import (
    FaultInjector,
    RetryPolicy,
    kill_pool,
    supervise_fleet,
    supervise_inline,
)
from repro.api.specs import (
    _EXECUTION_BACKENDS,
    _EXECUTION_SHARDS,
    SCHEMA_VERSION,
    ExecutionSpec,
    FleetSpec,
)
from repro.errors import ExecutionError, SpecError

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.measurement.panel import PanelResult

__all__ = ["Executor", "InlineExecutor", "ProcessExecutor",
           "resolve_executor", "shard_indices"]


@runtime_checkable
class Executor(Protocol):
    """Structural protocol every execution backend satisfies.

    ``run_fleet`` streams one :class:`~repro.api.records.AssayRunRecord`
    per job, in job order; records must be backend-independent bit for
    bit (wall time and engine statistics excepted — they describe the
    actual execution).
    """

    def run_fleet(self, spec: FleetSpec) -> Iterator[AssayRunRecord]:
        ...  # pragma: no cover - protocol signature only


def _record(payload: dict, seed: int, name: str, result: "PanelResult",
            n_fused: int, n_groups: int, n_steps: int,
            start: float) -> AssayRunRecord:
    """One streamed per-job record; shared by every backend.

    The record's ``spec_hash`` is the job's :class:`~repro.api.jobs.
    JobKey` digest — the same content address the run store files
    per-job records under, so a streamed record and its cache entry
    share one identity.
    """
    return AssayRunRecord(
        spec=payload, spec_hash=JobKey.for_payload(payload).digest,
        schema_version=SCHEMA_VERSION, seed=seed,
        wall_time_s=time.perf_counter() - start,
        job_name=name, result=result,
        engine=EngineStats(n_fused_dwells=n_fused,
                           n_dwell_groups=n_groups,
                           n_solve_steps=n_steps))


class InlineExecutor:
    """Execute a fleet as one fused scheduler pass in this process.

    The bit-identical reference backend: jobs are built in fleet order
    and drained through :meth:`~repro.engine.scheduler.AssayScheduler.
    run_iter` exactly as :func:`repro.api.iter_results` always has.

    ``retry`` / ``on_error`` / ``faults`` opt into the supervised
    variant (:func:`~repro.api.resilience.supervise_inline`): jobs run
    one fused pass at a time — still bit-identical per job — with
    transient errors retried under the policy and exhausted jobs
    degrading per ``on_error``.
    """

    name = "inline"

    def __init__(self, retry: RetryPolicy | None = None,
                 on_error: str = "raise",
                 faults: FaultInjector | None = None) -> None:
        # One validation authority: the declarative block this executor
        # is the programmatic face of.
        ExecutionSpec(backend="inline", retry=retry, on_error=on_error)
        self.retry = retry
        self.on_error = on_error
        self.faults = faults if faults is not None \
            else FaultInjector.from_env()

    def _supervised(self) -> bool:
        return (self.retry is not None or self.on_error != "raise"
                or self.faults is not None)

    def run_fleet(self, spec: FleetSpec) -> Iterator[AssayRunRecord]:
        from repro.engine.scheduler import AssayScheduler

        if self._supervised():
            yield from supervise_inline(
                spec, policy=self.retry, on_error=self.on_error,
                injector=self.faults)
            return
        jobs = spec.build_jobs()
        start = time.perf_counter()
        for item in AssayScheduler().run_iter(jobs):
            assay = spec.assays[item.index]
            yield _record(assay.to_dict(), assay.seed, item.name,
                          item.result, item.n_fused_dwells,
                          item.n_dwell_groups, item.n_solve_steps, start)

    def __repr__(self) -> str:
        if not self._supervised():
            return "InlineExecutor()"
        return (f"InlineExecutor(retry={self.retry!r}, "
                f"on_error={self.on_error!r})")


def shard_indices(n_jobs: int, n_shards: int,
                  mode: str = "interleave") -> list[list[int]]:
    """Partition job indices ``0..n_jobs-1`` into non-empty shards.

    ``interleave`` deals jobs round-robin (shard ``i`` takes ``i, i+w,
    ...``) so early-finishing jobs spread across workers; ``contiguous``
    cuts near-equal consecutive blocks (friendlier to per-shard dwell
    fusion when neighbouring jobs share protocol parameters).

    Every returned shard is non-empty: when there are fewer jobs than
    requested shards, the excess shards are dropped — a dispatcher
    sizing its worker pool by ``len(shards)`` therefore never spawns an
    idle worker process.
    """
    if n_jobs < 1:
        raise SpecError("shard_indices: need at least one job")
    n_shards = max(1, min(n_shards, n_jobs))
    if mode == "interleave":
        shards = [list(range(i, n_jobs, n_shards))
                  for i in range(n_shards)]
    elif mode == "contiguous":
        block, extra = divmod(n_jobs, n_shards)
        shards, at = [], 0
        for i in range(n_shards):
            size = block + (1 if i < extra else 0)
            shards.append(list(range(at, at + size)))
            at += size
    else:
        raise SpecError(f"shard_indices: unknown mode {mode!r} "
                        f"(known: {', '.join(_EXECUTION_SHARDS)})")
    # Belt and braces: the clamp above already guarantees n_shards <=
    # n_jobs, but an empty shard must never reach dispatch — it would
    # pin an idle worker process for the fleet's whole lifetime.
    return [shard for shard in shards if shard]


def _execute_shard(shard: list[tuple[int, dict]]) -> list[tuple]:
    """Worker entry point: run one shard's assays as a fused mini-fleet.

    ``shard`` is ``[(fleet_index, assay_payload), ...]``; the worker
    rebuilds each :class:`~repro.api.specs.AssaySpec` from its payload
    (fresh cells, chains and RNGs — per-job determinism is seeded, not
    shared) and drains one scheduler pass.  Returns ``[(fleet_index,
    result, d_fused, d_groups, d_steps), ...]`` where the ``d_*`` are
    the *delta* engine statistics each job contributed, so the parent
    can re-accumulate them in merged job order.
    """
    from repro.api.specs import AssaySpec
    from repro.engine.scheduler import AssayScheduler

    specs = [AssaySpec.from_dict(payload) for _, payload in shard]
    jobs = [spec.build_job() for spec in specs]
    out: list[tuple] = []
    prev_fused = prev_groups = prev_steps = 0
    for (index, _), item in zip(shard, AssayScheduler().run_iter(jobs)):
        out.append((index, item.result,
                    item.n_fused_dwells - prev_fused,
                    item.n_dwell_groups - prev_groups,
                    item.n_solve_steps - prev_steps))
        prev_fused = item.n_fused_dwells
        prev_groups = item.n_dwell_groups
        prev_steps = item.n_solve_steps
    return out


class ProcessExecutor:
    """Shard a fleet's jobs across worker processes.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` means one per CPU core.
    shard:
        Job partitioning strategy — see :func:`shard_indices`.
    persistent:
        ``True`` (default) keeps the worker pool alive across
        consecutive ``run_fleet`` calls on this instance, so a service
        dispatching many small fleets pays the process-spawn cost once
        (today's dominant fixed cost per run) instead of per call.
        ``False`` restores the one-pool-per-call behaviour — used by
        :meth:`~repro.api.specs.ExecutionSpec.build`, whose executors
        are constructed fresh per run and would otherwise leak a live
        pool each time.

    Each worker runs a fused :meth:`~repro.engine.scheduler.
    AssayScheduler.run_iter` over its shard; the parent buffers shard
    completions and yields records strictly in fleet job order, so the
    stream is a drop-in replacement for :class:`InlineExecutor` (results
    pinned bit-identical in ``tests/test_api_executors_store.py``).
    Streaming granularity is the *shard*, not the job — one future per
    shard keeps the per-shard dwell fusion that makes sharding pay, so
    the first record arrives once the first shard finishes (use
    :class:`InlineExecutor` when per-job latency matters more than
    throughput).  Workers are plain ``concurrent.futures`` process-pool
    workers; a single-job fleet degenerates to one shard, and an
    abandoned stream kills the pool under a bounded wait (queued shards
    cancelled, running workers terminated) so a hung worker can never
    block ``close()`` or interpreter exit — a persistent executor
    re-creates its pool on the next run.

    **Pool lease semantics.**  A persistent pool is created on first
    use, sized by that run's shard count (never more processes than
    shards, so a small fleet spawns no idle workers), and reused by
    every later run that fits; a run needing *more* shards than the
    pool has workers retires the old pool and grows a fresh one.  The
    pool is released by :meth:`close` (bounded teardown, also the
    context-manager exit) or garbage collection.  One executor serves
    one fleet at a time: a second ``run_fleet`` entered while a stream
    is live runs on its own throwaway pool so an abandoned stream can
    only ever kill the pool it used.

    ``retry`` / ``on_error`` / ``faults`` route the fleet through the
    supervised engine (:func:`~repro.api.resilience.supervise_fleet`):
    each unit gets its own single-worker pool for exact crash/hang
    attribution, failures re-dispatch at finer granularity (shard →
    halves → single jobs) under the policy's backoff, and exhausted
    jobs degrade per ``on_error``.  Results stay bit-identical; the
    supervised path costs one pool per unit instead of one shared pool.
    """

    name = "process"

    def __init__(self, workers: int | None = None,
                 shard: str = "interleave",
                 retry: RetryPolicy | None = None,
                 on_error: str = "raise",
                 faults: FaultInjector | None = None,
                 persistent: bool = True) -> None:
        # One validation authority: the declarative block this executor
        # is the programmatic face of.
        ExecutionSpec(backend="process", workers=workers, shard=shard,
                      retry=retry, on_error=on_error)
        self.workers = workers
        self.shard = shard
        self.retry = retry
        self.on_error = on_error
        self.faults = faults if faults is not None \
            else FaultInjector.from_env()
        self.persistent = bool(persistent)
        self._pool: ProcessPoolExecutor | None = None
        self._pool_size = 0
        self._busy = threading.Lock()

    def _supervised(self) -> bool:
        return (self.retry is not None or self.on_error != "raise"
                or self.faults is not None)

    def __repr__(self) -> str:
        extra = (f", retry={self.retry!r}, on_error={self.on_error!r}"
                 if self._supervised() else "")
        return (f"ProcessExecutor(workers={self.workers!r}, "
                f"shard={self.shard!r}{extra})")

    # -- the persistent pool lease ---------------------------------------------

    def _lease(self, n_shards: int) -> ProcessPoolExecutor:
        """The pool this run executes on: reused when it is big enough,
        grown (old pool retired) when the run needs more workers."""
        if self._pool is not None and self._pool_size < n_shards:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._pool is None:
            # One worker per (non-empty) shard: shard_indices never
            # returns an empty shard, so a fleet with fewer jobs than
            # workers spawns exactly len(shards) == n_jobs processes,
            # not idle extras.
            self._pool = ProcessPoolExecutor(max_workers=n_shards)
            self._pool_size = n_shards
        return self._pool

    def _release(self, pool: ProcessPoolExecutor, owned: bool,
                 drained: bool) -> None:
        if drained and (owned and self.persistent):
            # Healthy pool, persistent lease: keep the warm workers for
            # the next run.
            return
        if drained:
            # Normal completion on a non-persistent (or overlapping)
            # pool: every worker is idle, a waiting shutdown returns
            # immediately and reaps cleanly.
            pool.shutdown(wait=True)
        else:
            # Abandoned stream (GeneratorExit) or a failure with shards
            # mid-flight: cancel everything queued and tear the pool
            # down under a bounded wait — a hung worker must not be
            # able to block close() or interpreter exit.
            kill_pool(pool)
        if pool is self._pool:
            self._pool = None

    def close(self) -> None:
        """Release the persistent worker pool (bounded teardown).

        Safe to call repeatedly; the next ``run_fleet`` simply spawns a
        fresh pool.  ``with ProcessExecutor(...) as ex:`` closes on
        exit, and garbage collection closes as a last resort.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            kill_pool(pool)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing varies
        try:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        # repro: lint-ignore[REP002] GC-time teardown: interpreter
        # shutdown may have torn down anything shutdown() touches
        except Exception:
            pass

    def run_fleet(self, spec: FleetSpec) -> Iterator[AssayRunRecord]:
        if self._supervised():
            yield from supervise_fleet(
                spec, workers=self.workers, shard_mode=self.shard,
                policy=self.retry, on_error=self.on_error,
                injector=self.faults)
            return
        n_jobs = len(spec.assays)
        workers = self.workers if self.workers is not None \
            else (os.cpu_count() or 1)
        payloads = [assay.to_dict() for assay in spec.assays]
        shards = [[(i, payloads[i]) for i in indices]
                  for indices in shard_indices(n_jobs, workers, self.shard)]
        buffered: dict[int, tuple] = {}
        cum_fused = cum_groups = cum_steps = 0
        start = time.perf_counter()
        # The persistent lease is exclusive: a second stream entered
        # while one is live gets its own throwaway pool, so an
        # abandoned stream can only ever kill the pool it ran on.
        owned = self._busy.acquire(blocking=False)
        pool = (self._lease(len(shards)) if owned
                else ProcessPoolExecutor(max_workers=len(shards)))
        drained = False
        try:
            pending = {pool.submit(_execute_shard, shard)
                       for shard in shards}
            for index in range(n_jobs):
                while index not in buffered:
                    if not pending:
                        raise ExecutionError(
                            f"process executor: workers completed "
                            f"without producing job {index} — shard "
                            f"bookkeeping bug")
                    done, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                    for future in done:
                        for at, result, d_fused, d_groups, d_steps in \
                                future.result():
                            buffered[at] = (result, d_fused, d_groups,
                                            d_steps)
                result, d_fused, d_groups, d_steps = buffered.pop(index)
                cum_fused += d_fused
                cum_groups += d_groups
                cum_steps += d_steps
                assay = spec.assays[index]
                name = assay.name if assay.name else f"job{index}"
                yield _record(payloads[index], assay.seed, name, result,
                              cum_fused, cum_groups, cum_steps, start)
            drained = True
        finally:
            self._release(pool, owned, drained)
            if owned:
                self._busy.release()


def resolve_executor(backend, execution: ExecutionSpec | None = None,
                     retry: RetryPolicy | None = None,
                     on_error: str | None = None,
                     faults: FaultInjector | None = None):
    """The executor a run should use.

    Precedence: an explicit ``backend`` (an :class:`Executor` instance,
    or the name ``"inline"`` / ``"process"`` / ``"distributed"`` —
    names take ``workers`` / ``shard`` / ``queue`` / ``prefetch`` from
    the spec's ``execution`` block) overrides the block;
    ``backend=None`` defers to ``execution`` (default: inline).

    ``retry`` / ``on_error`` / ``faults`` are the programmatic
    overrides of the block's resilience fields (``None`` defers to the
    block); they configure the built executor and are rejected when
    ``backend`` is already a constructed :class:`Executor` instance —
    configure the instance itself instead.
    """
    if backend is not None and not isinstance(backend, str):
        if not isinstance(backend, Executor):
            raise SpecError(f"not an execution backend: "
                            f"{type(backend).__name__} "
                            f"(need an Executor, 'inline', 'process', "
                            f"or 'distributed')")
        if retry is not None or on_error is not None or faults is not None:
            raise SpecError(
                "retry/on_error/faults overrides do not apply to an "
                "already-constructed Executor instance; pass them to "
                "the executor's constructor instead")
        return backend
    block = execution if execution is not None else ExecutionSpec()
    retry = retry if retry is not None else block.retry
    on_error = on_error if on_error is not None else block.on_error
    name = block.backend if backend is None else backend
    if name not in _EXECUTION_BACKENDS:
        raise SpecError(f"unknown execution backend {name!r} "
                        f"(known: {', '.join(_EXECUTION_BACKENDS)})")
    return ExecutionSpec(backend=name, workers=block.workers,
                         shard=block.shard, retry=retry,
                         on_error=on_error, queue=block.queue,
                         prefetch=block.prefetch).build(faults=faults)
