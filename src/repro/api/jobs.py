"""Job-level content addressing — the unit of cached work is the assay.

The run store memoising *whole* runs by spec hash leaves the platform's
real win on the table: a 100-point sweep that shares 90 grid points with
a previous study would re-simulate everything, because the sweep payload
— and therefore its hash — changed.  This module makes the individual
assay **job** the addressable unit of the execution pipeline:

- :class:`JobKey` content-addresses one assay job: SHA-256 over the
  canonical :class:`~repro.api.specs.AssaySpec` payload, which embeds
  the seed, the injection schedules and every protocol/cell/chain field
  — so two jobs collide only when they would execute identically, and
  renaming, reseeding or retuning a job misses cleanly.  The digest is
  the same value every per-job :class:`~repro.api.records.
  AssayRunRecord` carries as ``spec_hash``, so per-job store records,
  standalone assay runs and fleet members all share one identity.

- :class:`JobPlan` is the pipeline's admission step: given a fleet and
  a store, it keys every job, pulls the warm records
  (:class:`~repro.api.records.CachedAssayRecord` — live, bit-identical
  results rehydrated from persisted samples), and exposes the *miss
  fleet* — the sub-fleet of jobs that still need engine time.  Cached
  jobs are dropped **before** the executors shard, so only misses reach
  :meth:`~repro.engine.scheduler.AssayScheduler.run_iter`, on any
  backend; the runner then re-merges cached and fresh records in job
  order.

Planning is robust to store damage: a per-job record that fails its
integrity checksum (or fails to parse) is quarantined by the store and
surfaces here as a plain miss, so the affected job simply re-runs on
the backend and re-persists a clean record.  Failed (degraded) jobs
from a supervised partial run are never persisted at all — they stay
misses until a run completes them.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.api.records import CachedAssayRecord
from repro.api.specs import AssaySpec, FleetSpec, hash_payload

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.api.store import RunStore

__all__ = ["JobKey", "JobPlan"]


@dataclass(frozen=True)
class JobKey:
    """The content address of one assay job.

    ``digest`` is the SHA-256 over the job's canonical assay payload —
    seed included — identical to the ``spec_hash`` of the
    :class:`~repro.api.records.AssayRunRecord` the job produces, and to
    the key the :class:`~repro.api.store.RunStore` files it under.
    ``name`` and ``seed`` are carried for display/provenance only; they
    are already part of the hashed payload.
    """

    digest: str
    name: str = ""
    seed: int | None = None

    @classmethod
    def for_assay(cls, assay: AssaySpec) -> "JobKey":
        return cls.for_payload(assay.to_dict())

    @classmethod
    def for_payload(cls, payload: Mapping) -> "JobKey":
        """Key an *already canonical* assay payload (``to_dict`` output)."""
        return cls(digest=hash_payload(payload),
                   name=str(payload.get("name", "")),
                   seed=payload.get("seed"))

    def __str__(self) -> str:
        return self.digest


@dataclass(frozen=True)
class JobPlan:
    """One fleet's jobs split into warm store hits and engine misses.

    ``keys[i]`` addresses ``fleet.assays[i]``; ``cached`` maps the job
    indices whose full per-job records were rehydrated from the store.
    Everything else is a miss and reaches the execution backend via
    :meth:`miss_fleet`.
    """

    fleet: FleetSpec
    keys: tuple[JobKey, ...]
    cached: Mapping[int, CachedAssayRecord] = field(default_factory=dict)

    @classmethod
    def plan(cls, fleet: FleetSpec,
             store: "RunStore | None" = None) -> "JobPlan":
        """Key every job and consult ``store`` for warm per-job records.

        Only full-sample records (:class:`~repro.api.records.
        CachedAssayRecord`) count as hits — a legacy summary-only assay
        record cannot rejoin a live stream and is treated as a miss.
        """
        keys = tuple(JobKey.for_assay(assay) for assay in fleet.assays)
        cached: dict[int, CachedAssayRecord] = {}
        if store is not None:
            # One batched pass: N lookups, one index write.
            with store.batched():
                for index, key in enumerate(keys):
                    hit = store.get_job(key)
                    if isinstance(hit, CachedAssayRecord):
                        cached[index] = hit
        return cls(fleet=fleet, keys=keys, cached=cached)

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def n_cached(self) -> int:
        return len(self.cached)

    @property
    def miss_indices(self) -> tuple[int, ...]:
        return tuple(i for i in range(len(self.keys))
                     if i not in self.cached)

    def miss_fleet(self) -> FleetSpec | None:
        """The sub-fleet of jobs that must actually run, in job order
        (same name and execution block), or ``None`` when fully warm."""
        misses = self.miss_indices
        if not misses:
            return None
        return self.fleet.subset(misses)
