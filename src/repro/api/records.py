"""Uniform run records: result + provenance for every front-door run.

Every :func:`repro.api.run` / :func:`repro.api.iter_results` call
returns a :class:`RunRecord` subclass carrying the layer-specific result
object *plus* the provenance that makes the run reproducible and
auditable: the canonical spec payload, its SHA-256 hash, the spec schema
version, the seed, the wall time, and (where the batched engine ran)
its fusion statistics.  ``to_dict()`` serialises record summaries for
:func:`repro.io.export.run_record_to_json`; raw sample arrays stay on
the live result objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.analysis.calibration import CalibrationCurve
    from repro.core.explorer import ExplorationResult
    from repro.core.platform import PlatformRunResult
    from repro.measurement.panel import PanelResult

__all__ = [
    "EngineStats", "ResilienceStats", "RunRecord", "AssayRunRecord",
    "CachedAssayRecord", "FailedAssayRecord", "FleetRunRecord",
    "CalibrationRunRecord", "PlatformRunRecord", "ExploreRunRecord",
    "StoredRunRecord",
]


@dataclass(frozen=True)
class EngineStats:
    """Fusion statistics of the batched engine pass behind a record.

    ``n_solve_steps`` counts the fused engine time steps actually
    solved — chronoamperometric dwell groups plus cross-cell fused CV
    sweep groups — the observable that lets a job-level cache prove a
    fully warm re-run performed **zero** engine solves.
    """

    n_fused_dwells: int
    n_dwell_groups: int
    n_solve_steps: int = 0

    def to_dict(self) -> dict:
        return {"n_fused_dwells": self.n_fused_dwells,
                "n_dwell_groups": self.n_dwell_groups,
                "n_solve_steps": self.n_solve_steps}

    @classmethod
    def from_dict(cls, payload: dict) -> "EngineStats":
        return cls(n_fused_dwells=int(payload.get("n_fused_dwells", 0)),
                   n_dwell_groups=int(payload.get("n_dwell_groups", 0)),
                   n_solve_steps=int(payload.get("n_solve_steps", 0)))


@dataclass(frozen=True)
class ResilienceStats:
    """Fault/retry tallies of a supervised execution, cumulative since
    the stream started (like ``wall_time_s`` and the engine statistics).

    Stamped onto records by the supervised backends
    (:mod:`repro.api.resilience`) and surfaced in
    ``provenance()["resilience"]``; an all-zero snapshot on a
    supervised run is itself informative — it proves the run needed no
    recovery.
    """

    retries: int = 0
    worker_crashes: int = 0
    worker_hangs: int = 0
    engine_errors: int = 0
    failed_jobs: int = 0

    @property
    def faults(self) -> int:
        """Total failure events observed (before retry accounting)."""
        return (self.worker_crashes + self.worker_hangs
                + self.engine_errors)

    def to_dict(self) -> dict:
        return {"retries": self.retries,
                "worker_crashes": self.worker_crashes,
                "worker_hangs": self.worker_hangs,
                "engine_errors": self.engine_errors,
                "failed_jobs": self.failed_jobs}

    @classmethod
    def from_dict(cls, payload: dict) -> "ResilienceStats":
        return cls(retries=int(payload.get("retries", 0)),
                   worker_crashes=int(payload.get("worker_crashes", 0)),
                   worker_hangs=int(payload.get("worker_hangs", 0)),
                   engine_errors=int(payload.get("engine_errors", 0)),
                   failed_jobs=int(payload.get("failed_jobs", 0)))


@dataclass(frozen=True)
class RunRecord:
    """Provenance shared by every front-door run.

    ``spec`` is the canonical payload the run was built from (what
    :meth:`~repro.api.specs.AssaySpec.to_dict` returned), ``spec_hash``
    its SHA-256, ``schema_version`` the spec schema it was written
    against, and ``seed`` the acquisition-noise seed — together they pin
    the run bit for bit.  ``wall_time_s`` is the elapsed time since the
    run (or, for records streamed by :func:`repro.api.iter_results`,
    since the *stream*) started, measured when the record was produced.
    """

    spec: dict
    spec_hash: str
    schema_version: int
    seed: int | None
    wall_time_s: float

    #: ``True`` only on records rehydrated from a
    #: :class:`~repro.api.store.RunStore` hit (:class:`StoredRunRecord` /
    #: :class:`CachedAssayRecord`); live engine runs report ``False``.
    cached = False

    #: :class:`~repro.api.store.StoreStats` snapshot stamped by
    #: :func:`repro.api.run` when the run consulted a store (``None``
    #: otherwise); surfaced in :meth:`provenance` under ``"store"``.
    #: A class-level default so frozen subclasses need no extra field —
    #: the runner attaches it with ``object.__setattr__``.
    store_stats = None

    #: :class:`ResilienceStats` snapshot stamped by the supervised
    #: backends (:mod:`repro.api.resilience`) — cumulative retry/fault
    #: counts at the moment the record streamed; ``None`` on
    #: unsupervised runs.  Same class-attribute pattern as
    #: ``store_stats``.  Surfaced in :meth:`provenance` under
    #: ``"resilience"``.
    resilience = None

    #: ``True`` only on :class:`FailedAssayRecord` — a job that
    #: exhausted its retry budget under ``on_error="partial"``.
    failed = False

    @property
    def kind(self) -> str:
        return str(self.spec.get("kind", "?"))

    def _screening_flag(self) -> bool | None:
        """The run's screening-profile flag, if the spec declares one.

        Assay and sweep payloads carry it at top level; fleet payloads
        carry it per assay (the fleet screened if any job did).  Pre-v3
        payloads have no flag and report ``None`` (omitted from
        provenance) rather than a fabricated ``False``.
        """
        if "screening" in self.spec:
            return bool(self.spec["screening"])
        assays = self.spec.get("assays")
        if isinstance(assays, list) and any(
                isinstance(a, dict) and "screening" in a for a in assays):
            return any(bool(a.get("screening", False))
                       for a in assays if isinstance(a, dict))
        return None

    def provenance(self) -> dict:
        out = {"kind": self.kind, "spec_hash": self.spec_hash,
               "schema_version": self.schema_version, "seed": self.seed,
               "wall_time_s": self.wall_time_s, "cached": self.cached}
        screening = self._screening_flag()
        if screening is not None:
            out["screening"] = screening
        if self.store_stats is not None:
            out["store"] = self.store_stats.to_dict()
        if self.resilience is not None:
            out["resilience"] = self.resilience.to_dict()
        if self.failed:
            out["failed"] = True
        return out

    def _result_dict(self) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"provenance": self.provenance(), "spec": self.spec,
                "result": self._result_dict()}


@dataclass(frozen=True)
class AssayRunRecord(RunRecord):
    """One panel assay: a :class:`~repro.measurement.panel.PanelResult`
    plus provenance.  ``engine`` carries the fused-batch statistics of
    the solve (``None`` on the sequential per-WE reference path)."""

    job_name: str
    result: "PanelResult"
    engine: EngineStats | None = None

    def _result_dict(self) -> dict:
        summary = self.result.summary_dict()
        summary["job_name"] = self.job_name
        if self.engine is not None:
            summary["engine"] = self.engine.to_dict()
        return summary


@dataclass(frozen=True)
class CachedAssayRecord(AssayRunRecord):
    """A per-job assay record rehydrated from a run store hit.

    Unlike :class:`StoredRunRecord` (whole-run summaries), per-job
    records persist every sample array, so a hit rebuilds a **live**
    :class:`~repro.measurement.panel.PanelResult` — bit-identical
    traces, voltammograms and readouts — and drops into a merged fleet
    stream exactly where the uncached run would have produced it.  Only
    the raw :class:`~repro.electronics.chain.ChannelReading` attachments
    (ADC codes, saturation flags) are not persisted; rehydrated traces
    carry ``reading=None``.  ``wall_time_s`` and ``engine`` describe the
    *original* solve; ``cached`` is ``True``.
    """

    cached = True


@dataclass(frozen=True)
class FailedAssayRecord(RunRecord):
    """A job that exhausted its retry budget under ``on_error="partial"``.

    Streams (and files into :class:`FleetRunRecord.records`) in the
    failed job's slot, so the fleet's job order survives partial
    degradation.  Carries what an operator needs to attribute the
    failure: the last exception's type, message and traceback, plus the
    number of attempts consumed (``provenance()["attempts"]``).
    ``result`` and ``engine`` are ``None`` — there is nothing to
    persist, and stores never cache failures (a later run retries the
    job as a plain miss).  The ``spec``/``spec_hash`` are the job's own
    canonical payload and :class:`~repro.api.jobs.JobKey` digest,
    identical to what the successful record would have carried.
    """

    job_name: str = ""
    error_type: str = "ExecutionError"
    error: str = ""
    traceback: str = ""
    attempts: int = 1

    failed = True
    result = None
    engine = None

    def provenance(self) -> dict:
        out = super().provenance()
        out["attempts"] = self.attempts
        return out

    def _result_dict(self) -> dict:
        return {"job_name": self.job_name, "failed": True,
                "error_type": self.error_type, "error": self.error,
                "attempts": self.attempts}


@dataclass(frozen=True)
class FleetRunRecord(RunRecord):
    """One fleet pass: the per-job records, in job order, plus the
    fused-engine totals across the whole fleet.

    A fleet has no single seed (``seed`` is ``None``); ``seeds`` records
    every job's acquisition seed, in job order, so the whole pass stays
    reproducible from the record alone.
    """

    records: tuple[AssayRunRecord, ...]
    engine: EngineStats
    seeds: tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.records)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(record.job_name for record in self.records)

    @property
    def results(self) -> tuple["PanelResult", ...]:
        return tuple(record.result for record in self.records)

    @property
    def n_failed(self) -> int:
        """Jobs that exhausted their retry budget (``on_error="partial"``
        yields them as :class:`FailedAssayRecord`; 0 everywhere else)."""
        return sum(1 for record in self.records if record.failed)

    def provenance(self) -> dict:
        out = super().provenance()
        out["seeds"] = list(self.seeds)
        if self.n_failed:
            out["n_failed"] = self.n_failed
        return out

    def _result_dict(self) -> dict:
        return {"n_jobs": len(self.records),
                "engine": self.engine.to_dict(),
                "jobs": [r._result_dict() for r in self.records]}


@dataclass(frozen=True)
class CalibrationRunRecord(RunRecord):
    """One measured calibration: the fitted curve plus the held
    potential and electrode area needed to express paper-style
    area-normalised sensitivities."""

    target: str
    curve: "CalibrationCurve"
    e_applied: float
    we_area: float

    def _result_dict(self) -> dict:
        return {"target": self.target,
                "e_applied_v": self.e_applied,
                "we_area_m2": self.we_area,
                "blank_mean_a": self.curve.blank_mean,
                "blank_std_a": self.curve.blank_std,
                "points": [{"concentration_mm": p.concentration,
                            "signal_a": p.signal,
                            "signal_std_a": p.signal_std}
                           for p in self.curve.points]}


@dataclass(frozen=True)
class PlatformRunRecord(RunRecord):
    """One assay on a materialised design: the
    :class:`~repro.core.platform.PlatformRunResult` plus the platform's
    human-readable summary."""

    result: "PlatformRunResult"
    summary: str

    def _result_dict(self) -> dict:
        return {"assay_time_s": self.result.assay_time,
                "blank_current_a": self.result.blank_current,
                "readouts": {target: readout.to_dict()
                             for target, readout
                             in self.result.readouts.items()}}


@dataclass(frozen=True)
class ExploreRunRecord(RunRecord):
    """One design-space exploration: the full
    :class:`~repro.core.explorer.ExplorationResult`."""

    result: "ExplorationResult"

    def _result_dict(self) -> dict:
        return {"panel_name": self.result.panel_name,
                "n_candidates": self.result.n_candidates,
                "n_feasible": self.result.n_feasible,
                "n_pareto": len(self.result.front)}


@dataclass(frozen=True)
class StoredRunRecord(RunRecord):
    """A run record rehydrated from a :class:`~repro.api.store.RunStore`.

    Cache hits return everything the store persisted — the canonical
    spec, full provenance (including extras like a fleet's per-job
    ``seeds``) and the quantified result summary — without touching the
    engine.  Raw sample arrays were never persisted, so ``result`` is
    the summary dict, not a live result object; re-run the spec without
    a store when the live arrays are needed.  ``cached`` is ``True`` and
    ``wall_time_s`` is the *original* run's wall time.
    """

    result: dict
    stored_provenance: dict = field(default_factory=dict)

    cached = True

    def provenance(self) -> dict:
        out = super().provenance()
        # Preserve provenance extras the original record type emitted
        # (e.g. FleetRunRecord.seeds); the live fields above stay
        # authoritative for anything they both carry.
        for key, value in self.stored_provenance.items():
            out.setdefault(key, value)
        out["cached"] = True
        return out

    def _result_dict(self) -> dict:
        return dict(self.result)
