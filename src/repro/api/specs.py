"""Versioned, JSON-round-trippable *execution* specs.

Where :mod:`repro.core.spec` serialises what a deployment *wants*
(panel targets, design constraints) and what it *chose* (a platform
design), this module serialises what the platform should *do*: which
cell to wet, which acquisition chain to drive it, which protocol
parameters and injection schedules to run, and which seed pins the
noise.  Every spec is a frozen dataclass with a canonical ``to_dict``
payload (``schema`` + ``kind`` envelope, shared with the core specs),
so a spec file is a complete, hashable description of a run —
:func:`spec_hash` over the canonical payload is the provenance key every
:class:`~repro.api.records.RunRecord` carries.

Spec kinds (see :mod:`repro.api` for the schema/versioning policy):

- ``assay`` — one multiplexed panel assay: cell x chain x protocol x seed.
- ``fleet`` — N concurrent assays for the batched scheduler, plus a
  declarative ``execution`` block (backend / workers / shard) selecting
  how the fleet executes (see :mod:`repro.api.executors`).
- ``sweep`` — a parameter grid over a base ``assay``, compiled into one
  ``fleet`` payload so parameter studies flow through the same
  backends and run store.
- ``calibration`` — a measured calibration ladder of one reference sensor.
- ``platform`` — materialise a :class:`~repro.core.architecture.
  PlatformDesign` (embedded core ``design`` payload) and assay a sample.
- ``explore`` — design-space exploration of a core ``panel`` payload.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.api.resilience import RetryPolicy
from repro.chem.solution import Injection, InjectionSchedule
from repro.core.spec import (
    check_kind,
    read_payload,
    require,
    require_list,
)
from repro.errors import SpecError

#: Schema written into every api payload.  Version 2 added the fleet
#: ``execution`` block and the ``sweep`` kind; version 3 added the
#: opt-in ``screening`` flag on assays and sweeps; version 4 added the
#: ``retry`` policy and ``on_error`` mode to the execution block;
#: version 5 added the ``distributed`` backend with its ``queue``
#: pointer and the opt-in speculative ``prefetch`` flag.  Older files
#: still load (missing keys take their defaults), so readers accept
#: all five.
SCHEMA_VERSION = 5
SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5)

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from pathlib import Path

    from repro.core.architecture import PlatformDesign
    from repro.core.targets import PanelSpec
    from repro.electronics.chain import AcquisitionChain
    from repro.engine.scheduler import AssayJob
    from repro.measurement.panel import PanelProtocol
    from repro.sensors.cell import ElectrochemicalCell

__all__ = [
    "SCHEMA_VERSION", "SUPPORTED_SCHEMAS",
    "ChainSpec", "CellSpec", "InjectionEvent", "PanelProtocolSpec",
    "ExecutionSpec",
    "AssaySpec", "FleetSpec", "SweepSpec", "CalibrationSpec",
    "PlatformSpec", "ExploreSpec",
    "spec_from_dict", "load_spec", "spec_hash", "hash_payload",
    "canonical_payload",
]


def _check_kind(payload: Mapping, kind: str, path: str) -> None:
    """Envelope check accepting every schema this reader interprets."""
    check_kind(payload, kind, path, version=SUPPORTED_SCHEMAS)


def canonical_payload(spec) -> dict:
    """The canonical JSON payload of a spec.

    Raw payload dicts are normalised by parsing them back into a spec
    first, so hand-written files (``"ca_dwell": 30``) and ``to_dict``
    output (``30.0``) canonicalise — and therefore hash — identically.
    """
    if isinstance(spec, Mapping):
        return spec_from_dict(spec).to_dict()
    to_dict = getattr(spec, "to_dict", None)
    if to_dict is None:
        raise SpecError(f"not a spec: {type(spec).__name__}")
    return to_dict()


def _float_value(value, label: str) -> float:
    # Strict like _int_value/_bool_value: bool/str coercions (float(True)
    # == 1.0, float("30")) would silently change a hand-written spec.
    if isinstance(value, (bool, str)):
        raise SpecError(f"{label}: expected a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{label}: expected a number, "
                        f"got {value!r}") from exc


def _int_value(value, label: str) -> int:
    # Reject bools, strings and non-integral floats rather than coercing:
    # a spec saying "seed": 7.9 must not silently run a different stream.
    if isinstance(value, (bool, str)) or (isinstance(value, float)
                                          and not value.is_integer()):
        raise SpecError(f"{label}: expected an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{label}: expected an integer, "
                        f"got {value!r}") from exc


def _bool_value(value, label: str) -> bool:
    # No coercion: bool("false") is True, which would silently flip the
    # meaning of a hand-written spec.
    if not isinstance(value, bool):
        raise SpecError(f"{label}: expected true or false, got {value!r}")
    return value


def hash_payload(payload: Mapping) -> str:
    """SHA-256 of an *already canonical* payload (``to_dict`` output).

    The runner uses this to hash the payload it just serialised without
    re-parsing it; arbitrary hand-written dicts should go through
    :func:`spec_hash`, which canonicalises first.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def spec_hash(spec) -> str:
    """SHA-256 over the canonical JSON payload — the provenance key."""
    return hash_payload(canonical_payload(spec))


# -- building blocks ---------------------------------------------------------------


@dataclass(frozen=True)
class ChainSpec:
    """Which acquisition chain digitises the assay.

    ``kind`` is ``"integrated"`` (the paper's Sec. II-C multiplexed
    chain; ``readout`` names a :data:`~repro.data.catalog.
    READOUT_CLASSES` entry) or ``"bench"`` (the laboratory-grade chain
    behind the cited Table III numbers).  ``seed`` pins the chain's own
    noise generator.
    """

    kind: str = "integrated"
    readout: str = "cyp_micro"
    n_channels: int = 5
    seed: int = 2011

    def build(self) -> "AcquisitionChain":
        from repro.data import bench_chain, integrated_chain

        if self.kind == "bench":
            return bench_chain(seed=self.seed)
        if self.kind == "integrated":
            return integrated_chain(self.readout, n_channels=self.n_channels,
                                    seed=self.seed)
        raise SpecError(f"chain spec: unknown kind {self.kind!r} "
                        f"(known: integrated, bench)")

    def to_dict(self) -> dict:
        # Bench chains ignore readout/n_channels; emit nulls so two
        # bench specs that execute identically also hash identically.
        if self.kind == "bench":
            return {"kind": "bench", "readout": None, "n_channels": None,
                    "seed": int(self.seed)}
        return {"kind": self.kind, "readout": self.readout,
                "n_channels": int(self.n_channels), "seed": int(self.seed)}

    @classmethod
    def from_dict(cls, payload: Mapping, path: str = "chain") -> "ChainSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object")
        readout = payload.get("readout")
        n_channels = payload.get("n_channels")
        return cls(kind=payload.get("kind", "integrated"),
                   readout="cyp_micro" if readout is None else readout,
                   n_channels=(5 if n_channels is None
                               else _int_value(n_channels,
                                               f"{path}.n_channels")),
                   seed=_int_value(payload.get("seed", 2011),
                                   f"{path}.seed"))


@dataclass(frozen=True)
class CellSpec:
    """Which electrochemical cell (chip + sample) the assay runs on.

    ``kind`` is ``"paper_panel"`` (the Fig. 4 five-electrode chip) or
    ``"reference"`` (the single-sensor cell of ``target``'s calibrated
    reference electrode).  ``concentrations`` maps species names to bulk
    loadings in mM for either kind — the paper panel defaults to the
    mid-linear-range sample, the reference cell to an unloaded chamber.
    ``target`` is meaningful only for ``"reference"``.
    """

    kind: str = "paper_panel"
    target: str | None = None
    concentrations: Mapping[str, float] | None = None

    def build(self) -> "ElectrochemicalCell":
        from repro.data import paper_panel_cell, reference_cell

        if self.kind == "paper_panel":
            if self.target is not None:
                raise SpecError(
                    "cell spec: 'target' is only for kind 'reference' "
                    "(the paper panel chip is fixed)")
            loading = (dict(self.concentrations)
                       if self.concentrations is not None else None)
            return paper_panel_cell(loading)
        if self.kind == "reference":
            if not self.target:
                raise SpecError(
                    "cell spec: kind 'reference' needs a 'target'")
            try:
                cell = reference_cell(self.target)
            except KeyError as exc:
                raise SpecError(
                    f"cell spec: {exc.args[0]}") from exc
            for species, value in (self.concentrations or {}).items():
                cell.chamber.set_bulk(species, value)
            return cell
        raise SpecError(f"cell spec: unknown kind {self.kind!r} "
                        f"(known: paper_panel, reference)")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "concentrations": ({k: float(v)
                                    for k, v in self.concentrations.items()}
                                   if self.concentrations is not None
                                   else None)}

    @classmethod
    def from_dict(cls, payload: Mapping, path: str = "cell") -> "CellSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object")
        concentrations = payload.get("concentrations")
        if concentrations is not None:
            if not isinstance(concentrations, Mapping):
                raise SpecError(f"{path}.concentrations: expected an object "
                                f"mapping species to mM")
            concentrations = {
                k: _float_value(v, f"{path}.concentrations[{k!r}]")
                for k, v in concentrations.items()}
        return cls(kind=payload.get("kind", "paper_panel"),
                   target=payload.get("target"),
                   concentrations=concentrations)


@dataclass(frozen=True)
class InjectionEvent:
    """One mid-dwell bulk addition (mirrors :class:`~repro.chem.solution.
    Injection`): at ``time`` seconds the bulk of ``species`` rises by
    ``concentration_step`` mM."""

    time: float
    species: str
    concentration_step: float

    def build(self) -> Injection:
        return Injection(self.time, self.species, self.concentration_step)

    def to_dict(self) -> dict:
        return {"time": float(self.time), "species": self.species,
                "concentration_step": float(self.concentration_step)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "injection") -> "InjectionEvent":
        return cls(time=_float_value(require(payload, "time", path),
                                     f"{path}.time"),
                   species=require(payload, "species", path),
                   concentration_step=_float_value(
                       require(payload, "concentration_step", path),
                       f"{path}.concentration_step"))


def _events_to_schedule(events: tuple[InjectionEvent, ...],
                        ) -> InjectionSchedule:
    return InjectionSchedule(tuple(e.build() for e in events))


def _events_from_list(items, path: str) -> tuple[InjectionEvent, ...]:
    return tuple(InjectionEvent.from_dict(item, f"{path}[{i}]")
                 for i, item in enumerate(items))


@dataclass(frozen=True)
class PanelProtocolSpec:
    """The :class:`~repro.measurement.panel.PanelProtocol` parameter set.

    Field defaults mirror the protocol's constructor; ``injections`` is
    ``None``, a tuple of :class:`InjectionEvent` applied to every
    chronoamperometric WE, or a mapping from WE name to a tuple.
    ``batch_electrodes=False`` selects the sequential per-WE reference
    path (bit-identical, kept as the verification escape hatch).
    """

    ca_dwell: float = 60.0
    cv_window_margin: float = 0.25
    scan_rate: float = 0.020
    sample_rate: float = 10.0
    settle_between: float = 1.0
    peak_min_height: float = 2.0e-9
    batch_electrodes: bool = True
    injections: (tuple[InjectionEvent, ...]
                 | Mapping[str, tuple[InjectionEvent, ...]] | None) = None

    def build(self, screening: bool = False) -> "PanelProtocol":
        from repro.measurement.panel import PanelProtocol

        if self.injections is None:
            schedule = None
        elif isinstance(self.injections, Mapping):
            schedule = {we: _events_to_schedule(tuple(events))
                        for we, events in self.injections.items()}
        else:
            schedule = _events_to_schedule(tuple(self.injections))
        return PanelProtocol(
            ca_dwell=self.ca_dwell, cv_window_margin=self.cv_window_margin,
            scan_rate=self.scan_rate, sample_rate=self.sample_rate,
            settle_between=self.settle_between,
            peak_min_height=self.peak_min_height,
            ca_injections=schedule, batch_electrodes=self.batch_electrodes,
            screening=screening)

    def to_dict(self) -> dict:
        if self.injections is None:
            injections = None
        elif isinstance(self.injections, Mapping):
            injections = {we: [e.to_dict() for e in events]
                          for we, events in self.injections.items()}
        else:
            injections = [e.to_dict() for e in self.injections]
        return {"ca_dwell": float(self.ca_dwell),
                "cv_window_margin": float(self.cv_window_margin),
                "scan_rate": float(self.scan_rate),
                "sample_rate": float(self.sample_rate),
                "settle_between": float(self.settle_between),
                "peak_min_height": float(self.peak_min_height),
                "batch_electrodes": bool(self.batch_electrodes),
                "injections": injections}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "protocol") -> "PanelProtocolSpec":
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object")
        raw = payload.get("injections")
        injections: (tuple[InjectionEvent, ...]
                     | dict[str, tuple[InjectionEvent, ...]] | None)
        if raw is None:
            injections = None
        elif isinstance(raw, Mapping):
            injections = {we: _events_from_list(
                              items, f"{path}.injections[{we!r}]")
                          for we, items in raw.items()}
        elif isinstance(raw, (list, tuple)):
            injections = _events_from_list(raw, f"{path}.injections")
        else:
            raise SpecError(f"{path}.injections: expected null, a list of "
                            f"events, or a WE-name mapping")
        defaults = cls()

        def number(key: str) -> float:
            return _float_value(payload.get(key, getattr(defaults, key)),
                                f"{path}.{key}")

        return cls(
            ca_dwell=number("ca_dwell"),
            cv_window_margin=number("cv_window_margin"),
            scan_rate=number("scan_rate"),
            sample_rate=number("sample_rate"),
            settle_between=number("settle_between"),
            peak_min_height=number("peak_min_height"),
            batch_electrodes=_bool_value(
                payload.get("batch_electrodes", defaults.batch_electrodes),
                f"{path}.batch_electrodes"),
            injections=injections)


# -- runnable specs ----------------------------------------------------------------


@dataclass(frozen=True)
class AssaySpec:
    """One declarative panel assay: cell x chain x protocol x seed.

    ``seed`` pins the acquisition-noise generator the protocol draws
    from (dwell chemistry consumes no randomness), so two runs of the
    same spec are bit-identical.  ``screening`` opts the assay into the
    coarse-grid screening profile — never the default; the flag is part
    of the canonical payload, so a screening run can never share a
    content address (or a store slot) with its full-fidelity twin.
    """

    name: str = "assay"
    seed: int = 2011
    cell: CellSpec = field(default_factory=CellSpec)
    chain: ChainSpec = field(default_factory=ChainSpec)
    protocol: PanelProtocolSpec = field(default_factory=PanelProtocolSpec)
    screening: bool = False

    def build_protocol(self) -> "PanelProtocol":
        return self.protocol.build(screening=self.screening)

    def build_job(self) -> "AssayJob":
        """A scheduler-ready job: built cell, chain, protocol and RNG."""
        from repro.engine.scheduler import AssayJob

        return AssayJob(cell=self.cell.build(), chain=self.chain.build(),
                        name=self.name,
                        rng=np.random.default_rng(self.seed),
                        protocol=self.build_protocol())

    def to_dict(self) -> dict:
        return {"schema": SCHEMA_VERSION, "kind": "assay",
                "name": self.name, "seed": int(self.seed),
                "cell": self.cell.to_dict(), "chain": self.chain.to_dict(),
                "protocol": self.protocol.to_dict(),
                "screening": bool(self.screening)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "assay spec") -> "AssaySpec":
        _check_kind(payload, "assay", path)
        return cls(
            name=payload.get("name", "assay"),
            seed=_int_value(payload.get("seed", 2011), f"{path}.seed"),
            cell=CellSpec.from_dict(payload.get("cell", {}), f"{path}.cell"),
            chain=ChainSpec.from_dict(payload.get("chain", {}),
                                      f"{path}.chain"),
            protocol=PanelProtocolSpec.from_dict(payload.get("protocol", {}),
                                                 f"{path}.protocol"),
            screening=_bool_value(payload.get("screening", False),
                                  f"{path}.screening"))


_EXECUTION_BACKENDS = ("inline", "process", "distributed")
_EXECUTION_SHARDS = ("interleave", "contiguous")
_EXECUTION_ON_ERROR = ("raise", "partial")


@dataclass(frozen=True)
class ExecutionSpec:
    """How a fleet executes — the declarative face of the backend API.

    ``backend`` selects an :class:`~repro.api.executors.Executor`:
    ``"inline"`` (one fused scheduler pass in this process, the
    bit-identical reference) or ``"process"`` (the fleet's jobs sharded
    across worker processes).  ``workers`` is the process count (``null``
    means one per CPU core) and ``shard`` the job-partitioning strategy
    (``"interleave"``: worker ``i`` takes jobs ``i, i+w, ...``;
    ``"contiguous"``: near-equal consecutive blocks).

    ``retry`` (schema v4) is a :class:`~repro.api.resilience.
    RetryPolicy` — attempt budget, per-dispatch timeout, backoff —
    that turns the backend into its supervised variant; ``on_error``
    selects what exhausting the budget does: ``"raise"`` (default —
    the run fails with :class:`~repro.errors.ExecutionError`) or
    ``"partial"`` (the job streams a :class:`~repro.api.records.
    FailedAssayRecord` in its slot and the fleet survives).

    ``"distributed"`` (schema v5) publishes shards to the task queue
    directory named by ``queue`` instead of owning a process pool;
    independent ``repro worker`` processes — on this host or any host
    sharing the filesystem — claim and execute them (see
    :mod:`repro.api.distributed`).  ``prefetch`` (opt-in) additionally
    lets idle workers speculatively warm the shared store with
    neighbouring sweep grid points.  Like ``workers``, the ``queue``
    pointer describes how the run is performed and so participates in
    the fleet-level hash without affecting per-job store identity.

    Every field defaults to the schema-1 behaviour, so older fleet
    files load unchanged.  Results are backend-independent bit for bit;
    only the wall time and engine fusion statistics reflect the choice.
    """

    backend: str = "inline"
    workers: int | None = None
    shard: str = "interleave"
    retry: RetryPolicy | None = None
    on_error: str = "raise"
    queue: str | None = None
    prefetch: bool = False

    def __post_init__(self) -> None:
        if self.backend not in _EXECUTION_BACKENDS:
            raise SpecError(
                f"execution spec: unknown backend {self.backend!r} "
                f"(known: {', '.join(_EXECUTION_BACKENDS)})")
        if self.shard not in _EXECUTION_SHARDS:
            raise SpecError(
                f"execution spec: unknown shard strategy {self.shard!r} "
                f"(known: {', '.join(_EXECUTION_SHARDS)})")
        if self.workers is not None and self.workers < 1:
            raise SpecError(f"execution spec: workers must be >= 1, "
                            f"got {self.workers}")
        if self.retry is not None \
                and not isinstance(self.retry, RetryPolicy):
            raise SpecError(f"execution spec: retry must be a "
                            f"RetryPolicy or None, "
                            f"got {type(self.retry).__name__}")
        if self.on_error not in _EXECUTION_ON_ERROR:
            raise SpecError(
                f"execution spec: unknown on_error mode "
                f"{self.on_error!r} "
                f"(known: {', '.join(_EXECUTION_ON_ERROR)})")
        if self.queue is not None and not isinstance(self.queue, str):
            raise SpecError(f"execution spec: queue must be a directory "
                            f"path or null, got "
                            f"{type(self.queue).__name__}")
        if self.backend == "distributed" and self.queue is None:
            raise SpecError("execution spec: the distributed backend "
                            "needs a queue directory (execution.queue "
                            "/ --queue)")
        if not isinstance(self.prefetch, bool):
            raise SpecError(f"execution spec: prefetch must be a "
                            f"boolean, got {type(self.prefetch).__name__}")

    def build(self, faults=None):
        """The configured :class:`~repro.api.executors.Executor`.

        ``faults`` (a :class:`~repro.api.resilience.FaultInjector`) is
        deliberately *not* a spec field — injected faults are a harness
        concern and must never enter the canonical payload, or a
        faulted run would hash apart from its fault-free twin.
        """
        from repro.api.executors import InlineExecutor, ProcessExecutor

        if self.backend == "inline":
            return InlineExecutor(retry=self.retry,
                                  on_error=self.on_error, faults=faults)
        if self.backend == "distributed":
            from repro.api.distributed import DistributedExecutor

            return DistributedExecutor(queue=self.queue,
                                       shard=self.shard,
                                       workers=self.workers,
                                       retry=self.retry,
                                       on_error=self.on_error,
                                       prefetch=self.prefetch,
                                       faults=faults)
        # Spec-built executors are constructed fresh per run and thrown
        # away, so a persistent pool would leak a live pool every call;
        # callers who want pool reuse hold an explicit ProcessExecutor.
        return ProcessExecutor(workers=self.workers, shard=self.shard,
                               retry=self.retry, on_error=self.on_error,
                               faults=faults, persistent=False)

    def to_dict(self) -> dict:
        return {"backend": self.backend,
                "workers": (int(self.workers)
                            if self.workers is not None else None),
                "shard": self.shard,
                "retry": (self.retry.to_dict()
                          if self.retry is not None else None),
                "on_error": self.on_error,
                "queue": self.queue,
                "prefetch": bool(self.prefetch)}

    @classmethod
    def from_dict(cls, payload: Mapping | None,
                  path: str = "execution") -> "ExecutionSpec":
        if payload is None:
            return cls()
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object or null")
        # Re-check the enumerations here so file errors name the
        # offending path, like every other loader; __post_init__ stays
        # the authority for programmatic construction.
        backend = payload.get("backend", "inline")
        if backend not in _EXECUTION_BACKENDS:
            raise SpecError(f"{path}.backend: unknown backend {backend!r} "
                            f"(known: {', '.join(_EXECUTION_BACKENDS)})")
        shard = payload.get("shard", "interleave")
        if shard not in _EXECUTION_SHARDS:
            raise SpecError(f"{path}.shard: unknown shard strategy "
                            f"{shard!r} "
                            f"(known: {', '.join(_EXECUTION_SHARDS)})")
        workers = payload.get("workers")
        retry_payload = payload.get("retry")
        on_error = payload.get("on_error", "raise")
        if on_error not in _EXECUTION_ON_ERROR:
            raise SpecError(f"{path}.on_error: unknown mode "
                            f"{on_error!r} "
                            f"(known: {', '.join(_EXECUTION_ON_ERROR)})")
        queue = payload.get("queue")
        if queue is not None and not isinstance(queue, str):
            raise SpecError(f"{path}.queue: expected a directory path "
                            f"or null, got {type(queue).__name__}")
        return cls(backend=backend,
                   workers=(None if workers is None
                            else _int_value(workers, f"{path}.workers")),
                   shard=shard,
                   retry=(None if retry_payload is None
                          else RetryPolicy.from_dict(retry_payload,
                                                     f"{path}.retry")),
                   on_error=on_error,
                   queue=queue,
                   prefetch=_bool_value(payload.get("prefetch", False),
                                        f"{path}.prefetch"))


@dataclass(frozen=True)
class FleetSpec:
    """N concurrent assays for the batched fleet scheduler.

    The canonical payload stores every assay explicitly (fully
    reproducible files); :meth:`homogeneous` builds the common case of N
    identical cells with consecutive seeds, mirroring the CLI's
    ``fleet --cells N --seed S`` convention (job ``k`` gets seed
    ``S + k`` for both its chain and its acquisition RNG).
    ``execution`` declares the backend the fleet runs on; results are
    backend-independent, so two fleets differing only in ``execution``
    produce bit-identical panel results (but hash differently — the
    payload records how the run was performed).
    """

    name: str = "fleet"
    assays: tuple[AssaySpec, ...] = ()
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)

    def __post_init__(self) -> None:
        # Reject empty fleets at construction so every FleetSpec that
        # exists (and therefore every exported payload) can be reloaded.
        if not self.assays:
            raise SpecError("fleet spec: a fleet needs at least one assay")

    @classmethod
    def homogeneous(cls, cells: int, seed: int = 2011,
                    ca_dwell: float = 30.0, readout: str = "cyp_micro",
                    batch_electrodes: bool = True,
                    name: str = "fleet",
                    execution: ExecutionSpec | None = None) -> "FleetSpec":
        if cells < 1:
            raise SpecError("fleet spec: cells must be >= 1")
        assays = tuple(
            AssaySpec(name=f"cell{k:02d}", seed=seed + k,
                      chain=ChainSpec(readout=readout, seed=seed + k),
                      protocol=PanelProtocolSpec(
                          ca_dwell=ca_dwell,
                          batch_electrodes=batch_electrodes))
            for k in range(cells))
        return cls(name=name, assays=assays,
                   execution=(execution if execution is not None
                              else ExecutionSpec()))

    def __len__(self) -> int:
        return len(self.assays)

    def to_dict(self) -> dict:
        return {"schema": SCHEMA_VERSION, "kind": "fleet",
                "name": self.name,
                "assays": [a.to_dict() for a in self.assays],
                "execution": self.execution.to_dict()}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "fleet spec") -> "FleetSpec":
        _check_kind(payload, "fleet", path)
        assays = tuple(
            AssaySpec.from_dict(item, f"{path}.assays[{i}]")
            for i, item in enumerate(require_list(payload, "assays", path)))
        if not assays:
            raise SpecError(f"{path}.assays: a fleet needs at least one "
                            f"assay")
        return cls(name=payload.get("name", "fleet"), assays=assays,
                   execution=ExecutionSpec.from_dict(
                       payload.get("execution"), f"{path}.execution"))

    def build_jobs(self) -> list:
        """Scheduler-ready jobs for every assay, in fleet order."""
        return [assay.build_job() for assay in self.assays]

    def subset(self, indices) -> "FleetSpec":
        """The sub-fleet of the given job indices (same name/execution).

        This is the job-level pipeline's miss fleet: cached jobs are
        dropped *before* the executors shard, so only the jobs that
        still need engine time are dispatched.  Indices must be valid
        and the subset non-empty (a :class:`FleetSpec` cannot be empty).
        """
        indices = tuple(indices)
        try:
            assays = tuple(self.assays[i] for i in indices)
        except IndexError:
            raise SpecError(
                f"fleet spec: subset index out of range for a "
                f"{len(self.assays)}-assay fleet: {indices}") from None
        return FleetSpec(name=self.name, assays=assays,
                         execution=self.execution)


def _grid_assign(payload: dict, dotted: str, value, label: str) -> None:
    """Set ``dotted`` (e.g. ``"protocol.ca_dwell"``) inside a payload.

    Intermediate objects are created when the canonical payload carries
    ``null`` there (e.g. ``cell.concentrations``); anything else that is
    not an object is a spec error naming the axis.
    """
    parts = dotted.split(".")
    node = payload
    for part in parts[:-1]:
        child = node.get(part)
        if child is None:
            child = {}
            node[part] = child
        if not isinstance(child, dict):
            raise SpecError(f"{label}: path {dotted!r} crosses "
                            f"non-object key {part!r}")
        node = child
    node[parts[-1]] = value


@dataclass(frozen=True)
class SweepSpec:
    """A parameter study: a grid of overrides over one base assay.

    ``grid`` maps dotted paths into the base assay's canonical payload
    (``"seed"``, ``"protocol.ca_dwell"``,
    ``"cell.concentrations.glucose"``, ...) to the list of values each
    axis takes.  :meth:`compile` expands the Cartesian product — axes
    sorted by path for determinism, values in file order — into one
    :class:`FleetSpec` payload, so sweeps flow through the same
    executors and :class:`~repro.api.store.RunStore` as every other
    fleet.  Grid point ``k`` is named ``<base.name>#<k>`` and re-parsed
    through :meth:`AssaySpec.from_dict`, so an invalid override surfaces
    as a :class:`~repro.errors.SpecError` naming the grid point.
    """

    name: str = "sweep"
    base: AssaySpec = field(default_factory=AssaySpec)
    grid: Mapping[str, tuple] = field(default_factory=dict)
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    screening: bool = False

    def __post_init__(self) -> None:
        if not self.grid:
            raise SpecError("sweep spec: a sweep needs at least one grid "
                            "axis")
        normalised = {}
        for dotted, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                    values, (list, tuple)):
                raise SpecError(f"sweep spec: grid[{dotted!r}] must be a "
                                f"list of values")
            if not values:
                raise SpecError(f"sweep spec: grid[{dotted!r}] needs at "
                                f"least one value")
            normalised[dotted] = tuple(values)
        object.__setattr__(self, "grid", normalised)

    def __len__(self) -> int:
        """Number of grid points the sweep compiles to."""
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size

    def compile(self) -> FleetSpec:
        """Expand the grid into the equivalent explicit fleet."""
        axes = sorted(self.grid.items())
        base_payload = self.base.to_dict()
        # A screening sweep screens every grid point; grid axes may
        # still override "screening" per point if a study mixes tiers.
        if self.screening:
            base_payload["screening"] = True
        assays = []
        for k, combo in enumerate(itertools.product(
                *(values for _, values in axes))):
            payload = copy.deepcopy(base_payload)
            for (dotted, _), value in zip(axes, combo):
                _grid_assign(payload, dotted, value,
                             f"sweep spec.grid[{dotted!r}]")
            payload["name"] = f"{self.base.name}#{k}"
            assays.append(AssaySpec.from_dict(
                payload, f"sweep spec: grid point {k}"))
        return FleetSpec(name=self.name, assays=tuple(assays),
                         execution=self.execution)

    def to_dict(self) -> dict:
        return {"schema": SCHEMA_VERSION, "kind": "sweep",
                "name": self.name, "base": self.base.to_dict(),
                "grid": {dotted: list(values)
                         for dotted, values in self.grid.items()},
                "execution": self.execution.to_dict(),
                "screening": bool(self.screening)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "sweep spec") -> "SweepSpec":
        _check_kind(payload, "sweep", path)
        grid = require(payload, "grid", path)
        if not isinstance(grid, Mapping):
            raise SpecError(f"{path}.grid: expected an object mapping "
                            f"payload paths to value lists")
        return cls(name=payload.get("name", "sweep"),
                   base=AssaySpec.from_dict(require(payload, "base", path),
                                            f"{path}.base"),
                   grid={dotted: values for dotted, values in grid.items()},
                   execution=ExecutionSpec.from_dict(
                       payload.get("execution"), f"{path}.execution"),
                   screening=_bool_value(payload.get("screening", False),
                                         f"{path}.screening"))


@dataclass(frozen=True)
class CalibrationSpec:
    """A measured calibration of one reference sensor.

    ``points`` concentrations are laddered linearly from the target's
    paper linear range (up to 1.5x its top); ``seed`` pins the bench
    chain's noise.  The spec floor is 2 points; the curve fit itself
    (:func:`~repro.analysis.calibration.run_calibration`) needs >= 3 and
    reports the shortfall as a one-line
    :class:`~repro.errors.CalibrationError`.
    """

    target: str = "glucose"
    points: int = 8
    seed: int = 2011

    def __post_init__(self) -> None:
        if self.points < 2:
            raise SpecError(f"calibration spec: need at least 2 ladder "
                            f"points, got {self.points}")

    def to_dict(self) -> dict:
        return {"schema": SCHEMA_VERSION, "kind": "calibration",
                "target": self.target, "points": int(self.points),
                "seed": int(self.seed)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "calibration spec") -> "CalibrationSpec":
        _check_kind(payload, "calibration", path)
        points = _int_value(payload.get("points", 8), f"{path}.points")
        if points < 2:
            raise SpecError(f"{path}.points: need at least 2 ladder points, "
                            f"got {points}")
        return cls(target=require(payload, "target", path),
                   points=points,
                   seed=_int_value(payload.get("seed", 2011),
                                   f"{path}.seed"))


@dataclass(frozen=True)
class PlatformSpec:
    """Materialise a platform design and run one assay on a sample.

    ``design`` embeds a :mod:`repro.core.spec` ``design`` payload (the
    explorer's output format), so a Pareto point saved with
    :func:`~repro.core.spec.save_design` drops straight into a run spec.
    """

    design: Mapping
    concentrations: Mapping[str, float] | None = None
    ca_dwell: float = 60.0
    sample_rate: float = 10.0
    seed: int = 2011
    readout_class: str | None = None

    def build_design(self) -> "PlatformDesign":
        from repro.core.spec import design_from_dict

        return design_from_dict(dict(self.design), "platform spec.design")

    def to_dict(self) -> dict:
        from repro.core.spec import design_to_dict

        # Re-emit the embedded design through its own serialiser so
        # hand-written files (missing optional keys, int-typed numbers)
        # canonicalise — and hash — identically to saved designs.
        return {"schema": SCHEMA_VERSION, "kind": "platform",
                "design": design_to_dict(self.build_design()),
                "concentrations": ({k: float(v)
                                    for k, v in self.concentrations.items()}
                                   if self.concentrations is not None
                                   else None),
                "ca_dwell": float(self.ca_dwell),
                "sample_rate": float(self.sample_rate),
                "seed": int(self.seed),
                "readout_class": self.readout_class}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "platform spec") -> "PlatformSpec":
        _check_kind(payload, "platform", path)
        concentrations = payload.get("concentrations")
        if concentrations is not None:
            if not isinstance(concentrations, Mapping):
                raise SpecError(f"{path}.concentrations: expected an object "
                                f"mapping species to mM")
            concentrations = {
                k: _float_value(v, f"{path}.concentrations[{k!r}]")
                for k, v in concentrations.items()}
        design = require(payload, "design", path)
        if not isinstance(design, Mapping):
            raise SpecError(f"{path}.design: expected a core design spec "
                            f"object, got {type(design).__name__}")
        return cls(design=dict(design),
                   concentrations=concentrations,
                   ca_dwell=_float_value(payload.get("ca_dwell", 60.0),
                                         f"{path}.ca_dwell"),
                   sample_rate=_float_value(payload.get("sample_rate", 10.0),
                                            f"{path}.sample_rate"),
                   seed=_int_value(payload.get("seed", 2011),
                                   f"{path}.seed"),
                   readout_class=payload.get("readout_class"))


@dataclass(frozen=True)
class ExploreSpec:
    """Design-space exploration of a measurement-problem panel spec.

    ``panel`` embeds a :mod:`repro.core.spec` ``panel`` payload; ``None``
    explores the paper's Sec. III six-target panel.
    """

    panel: Mapping | None = None

    def build_panel(self) -> "PanelSpec":
        from repro.core.spec import panel_from_dict
        from repro.core.targets import paper_panel_spec

        if self.panel is None:
            return paper_panel_spec()
        return panel_from_dict(dict(self.panel), "explore spec.panel")

    def to_dict(self) -> dict:
        from repro.core.spec import panel_to_dict

        # Canonicalise the embedded panel like PlatformSpec.to_dict does
        # for designs (None — the paper panel default — stays None).
        return {"schema": SCHEMA_VERSION, "kind": "explore",
                "panel": (panel_to_dict(self.build_panel())
                          if self.panel is not None else None)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "explore spec") -> "ExploreSpec":
        _check_kind(payload, "explore", path)
        panel = payload.get("panel")
        if panel is not None and not isinstance(panel, Mapping):
            raise SpecError(f"{path}.panel: expected a core panel spec "
                            f"object or null")
        return cls(panel=dict(panel) if panel is not None else None)


# -- loading and dispatch ----------------------------------------------------------

_SPEC_KINDS = {
    "assay": AssaySpec,
    "fleet": FleetSpec,
    "sweep": SweepSpec,
    "calibration": CalibrationSpec,
    "platform": PlatformSpec,
    "explore": ExploreSpec,
}

RunnableSpec = (AssaySpec | FleetSpec | SweepSpec | CalibrationSpec
                | PlatformSpec | ExploreSpec)


def spec_from_dict(payload: Mapping, path: str = "spec") -> RunnableSpec:
    """Rebuild any runnable spec from its payload, dispatching on kind."""
    if not isinstance(payload, Mapping):
        raise SpecError(f"{path}: expected a JSON object, "
                        f"got {type(payload).__name__}")
    kind = require(payload, "kind", path)
    cls = _SPEC_KINDS.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise SpecError(f"{path}: unknown spec kind {kind!r} "
                        f"(known: {', '.join(sorted(_SPEC_KINDS))})")
    return cls.from_dict(payload, path)


def load_spec(path: "str | Path") -> RunnableSpec:
    """Load any runnable spec from a JSON file (SpecError on failure)."""
    return spec_from_dict(read_payload(path), f"spec {path!s}")
