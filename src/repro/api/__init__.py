"""repro.api — the platform's single declarative front door.

The paper's pitch is an *integrated* platform; this package is the seam
that makes the codebase one.  Users describe work as versioned,
JSON-round-trippable **specs** and get **run records** back — result
plus provenance — through exactly one entry point::

    from repro import api

    record = api.run(api.AssaySpec(seed=7))          # Fig. 4 panel
    print(record.spec_hash, record.result.readouts["glucose"].signal)

    fleet = api.FleetSpec.homogeneous(cells=8, seed=2011)
    for rec in api.iter_results(fleet):              # streamed, job order
        print(rec.job_name, rec.result.assay_time)

Spec schema
===========

Every spec serialises to a flat JSON object with a two-field envelope —
``{"schema": <int>, "kind": <str>, ...}`` — shared with the core
design/panel specs of :mod:`repro.core.spec`.  Kinds and their payloads
live in :mod:`repro.api.specs`:

- ``assay``: ``name``, ``seed``, ``cell`` (paper panel or reference
  sensor), ``chain`` (integrated readout class or bench), ``protocol``
  (dwell/sweep parameters, injection schedules, ``batch_electrodes``).
- ``fleet``: ``name`` plus an explicit ``assays`` list (files stay
  reproducible; :meth:`~repro.api.specs.FleetSpec.homogeneous` builds
  the N-identical-cells case).
- ``calibration``: ``target``, ``points``, ``seed``.
- ``platform``: an embedded core ``design`` payload plus sample
  ``concentrations`` and run parameters.
- ``explore``: an embedded core ``panel`` payload (or null for the
  paper's Sec. III panel).

Versioning policy
=================

``SCHEMA_VERSION`` (currently 1) is written into every payload and
checked on load; a reader raises :class:`~repro.errors.SpecError` on
any version it does not understand, naming the offending file/path.
The version bumps only on *breaking* payload changes (a key removed,
renamed, or reinterpreted); adding optional keys with defaults is not a
bump, so version-1 files keep loading as the library grows.  Unknown
keys are ignored on read — forward-written files degrade gracefully —
and ``to_dict`` always emits the complete canonical payload, so
:func:`spec_hash` (SHA-256 over the sorted canonical JSON) is stable
across round trips and is the provenance key every
:class:`~repro.api.records.RunRecord` carries.

Escape hatch
============

The class-level entry points remain supported and documented —
:class:`~repro.measurement.panel.PanelProtocol.run`,
:class:`~repro.engine.scheduler.AssayScheduler.run_many`,
:class:`~repro.core.platform.BiosensingPlatform.run` — and the spec
paths are pinned bit-identical to them in ``tests/test_api_run.py``;
specs add provenance and a stable file surface, not new physics.
"""

from repro.api.records import (
    AssayRunRecord,
    CalibrationRunRecord,
    EngineStats,
    ExploreRunRecord,
    FleetRunRecord,
    PlatformRunRecord,
    RunRecord,
)
from repro.api.runner import iter_results, run
from repro.api.specs import (
    SCHEMA_VERSION,
    AssaySpec,
    CalibrationSpec,
    CellSpec,
    ChainSpec,
    ExploreSpec,
    FleetSpec,
    InjectionEvent,
    PanelProtocolSpec,
    PlatformSpec,
    canonical_payload,
    load_spec,
    spec_from_dict,
    spec_hash,
)

__all__ = [
    "SCHEMA_VERSION",
    # specs
    "AssaySpec", "FleetSpec", "CalibrationSpec", "PlatformSpec",
    "ExploreSpec",
    "CellSpec", "ChainSpec", "PanelProtocolSpec", "InjectionEvent",
    "spec_from_dict", "load_spec", "spec_hash", "canonical_payload",
    # records
    "RunRecord", "AssayRunRecord", "FleetRunRecord",
    "CalibrationRunRecord", "PlatformRunRecord", "ExploreRunRecord",
    "EngineStats",
    # entry points
    "run", "iter_results",
]
