"""repro.api — the platform's single declarative front door.

The paper's pitch is an *integrated* platform; this package is the seam
that makes the codebase one.  Users describe work as versioned,
JSON-round-trippable **specs** and get **run records** back — result
plus provenance — through exactly one entry point::

    from repro import api

    record = api.run(api.AssaySpec(seed=7))          # Fig. 4 panel
    print(record.spec_hash, record.result.readouts["glucose"].signal)

    fleet = api.FleetSpec.homogeneous(cells=8, seed=2011)
    for rec in api.iter_results(fleet):              # streamed, job order
        print(rec.job_name, rec.result.assay_time)

Execution backends
==================

*What* runs is orthogonal to *how* it runs.  Fleet execution is
pluggable (:mod:`repro.api.executors`): :class:`InlineExecutor` is one
fused scheduler pass in this process (the bit-identical reference) and
:class:`ProcessExecutor` shards the fleet's jobs across worker
processes, re-merging completions in job order so the stream — and
every sample of every result — is bit-identical to inline.
:class:`DistributedExecutor` (below) ships the same shards through a
queue directory to detached ``repro worker`` processes.  Select a
backend declaratively through the fleet's ``execution`` block::

    {"kind": "fleet", ..., "execution":
        {"backend": "process", "workers": 4, "shard": "interleave"}}

or programmatically: ``run(spec, backend="process")`` /
``run(spec, backend=ProcessExecutor(workers=4))`` (the explicit
argument wins).  Any object with ``run_fleet(spec)`` yielding
:class:`~repro.api.records.AssayRunRecord` plugs in.

Fault-tolerant execution
========================

Real fleets lose workers.  The resilience layer
(:mod:`repro.api.resilience`) supervises execution so a crashed, hung
or transiently failing worker costs a retry, not the run::

    policy = api.RetryPolicy(max_attempts=3, timeout_s=120.0,
                             backoff_s=0.5)
    record = api.run(fleet, backend="process", retry=policy)

**Retry semantics.**  Each job carries an attempt budget
(``max_attempts``).  The supervised process backend runs every shard in
its own single-worker pool, so a dead pool names its culprits exactly;
a failed shard's *surviving* jobs are re-dispatched at finer
granularity (shard → split halves → single jobs) with the failure
charged only against the jobs that were present.  Re-dispatch waits
``backoff_s * backoff_factor**(attempt-1)`` plus a deterministic
seeded jitter (``jitter_s``/``jitter_seed`` — no wall-clock
randomness), and ``timeout_s`` bounds each dispatch: a shard that
exceeds it is killed and treated as a failed attempt.  Because every
job re-executes from its canonical payload with a fresh seeded RNG,
**a retried run is bit-identical to a fault-free run** — supervision
changes when results arrive, never what they are.

**Degradation modes.**  ``on_error="raise"`` (default) aborts the run
with :class:`~repro.errors.ExecutionError` when any job exhausts its
budget.  ``on_error="partial"`` keeps going: exhausted jobs yield
:class:`~repro.api.records.FailedAssayRecord` entries (error type,
message, traceback, attempt count; ``record.failed`` is true) merged
into the stream at their job-order slots, and
:attr:`~repro.api.records.FleetRunRecord.n_failed` counts them.
Supervised records carry cumulative
:class:`~repro.api.records.ResilienceStats` (retries, crashes, hangs,
engine errors, failed jobs) in ``provenance()["resilience"]``.  Both
knobs live in the spec's execution block too (schema v4)::

    {"execution": {"backend": "process", "workers": 4,
                   "retry": {"max_attempts": 3, "timeout_s": 120.0},
                   "on_error": "partial"}}

**Fault injection.**  :class:`FaultInjector` drives deterministic
faults for CI and tests — ``worker_crash`` (hard ``os._exit``),
``worker_hang`` (sleep past the timeout), ``engine_error`` (transient
exception), ``store_corrupt`` (truncated store write) — from a
seeded rule string, never from wall-clock randomness::

    inj = api.FaultInjector.parse("worker_crash:1@cell01;engine_error:0.2")
    api.run(fleet, backend="process", retry=policy, faults=inj)

The environment variables ``REPRO_FAULTS`` (same rule syntax) and
``REPRO_FAULTS_SEED`` arm every executor and store constructed without
an explicit injector, so a CI job can fault an unmodified workload.
Faults are an executor property, never part of the spec payload —
faulted and fault-free runs share every spec hash and job key, which
is what makes the bit-identity assertions possible.

The run store and the job-level pipeline
========================================

:class:`~repro.api.store.RunStore` (:mod:`repro.api.store`) memoises
at two granularities, both content-addressed by SHA-256 over canonical
payloads::

    store = api.RunStore("runs/")
    first = api.run(spec, store=store)    # executes, persists
    again = api.run(spec, store=store)    # cache hit: no engine work
    assert again.cached and again.spec_hash == first.spec_hash

**Whole runs** are keyed by spec hash and rehydrate as summary-only
:class:`~repro.api.records.StoredRunRecord` objects.  **Individual
assay jobs** are keyed by :class:`~repro.api.jobs.JobKey` (the SHA-256
of the job's canonical assay payload — seed, injection schedules and
all) and persist their full sample arrays, so a hit rehydrates a *live*
:class:`~repro.api.records.CachedAssayRecord` with bit-identical
results.  On a whole-run miss, fleets and sweeps flow through the
job-level pipeline (:class:`~repro.api.jobs.JobPlan` → executor →
store): warm jobs are pulled from the store, only the miss fleet
reaches the backend (cached jobs are dropped before the process
executor shards), fresh per-job records are persisted as they stream,
and cached + fresh records are re-merged in job order — so a sweep
sharing 90 of 100 grid points with an earlier study simulates only the
10 new points, and a fully warm sweep performs zero engine solves
(observable via :class:`~repro.api.records.EngineStats.n_solve_steps`).
Because the per-job key is the assay payload hash, fleet members, sweep
grid points and standalone assay runs all share one cache entry.

Records live at ``<root>/<hash[:2]>/<hash>.json`` (the record's
``to_dict()``: provenance + canonical spec + result summary, plus a
``samples`` section for per-job records), written atomically.  The
store keeps an ``index.json`` with per-record sizes, an LRU clock and
lifetime hit/miss/eviction counters: ``RunStore(root, max_count=,
max_bytes=)`` (or an explicit :meth:`~repro.api.store.RunStore.gc`)
evicts least-recently-used records, and
:meth:`~repro.api.store.RunStore.stats` returns a
:class:`~repro.api.store.StoreStats` snapshot.  Runs that consulted a
store stamp their hit/miss/eviction delta into record provenance under
``"store"``.  The CLI drives the same store via ``--store`` and the
``cache`` subcommand (``cache <dir>`` listing, ``cache <dir> stats``,
``cache <dir> gc --max-count/--max-bytes``, both with ``--json``).

Stores are *hardened*: every write is sealed with a SHA-256 integrity
checksum, every read verifies it, and a record that fails to parse or
verify is quarantined to ``<root>/quarantine/`` (counted in
``stats().quarantined``, reported as a :class:`RuntimeWarning`) and
treated as a miss — the job silently re-runs and re-persists a clean
record.  Failed (degraded) records are never persisted.

Distributed execution: the queue and the worker fleet
=====================================================

:class:`DistributedExecutor` (:mod:`repro.api.distributed`) decouples
*who submits* from *who computes*.  The submitter publishes each shard
as a task file under a shared **queue directory** (``tasks/`` tasks,
``claims/`` claim markers, ``results/`` completions, ``store/`` the
default shared run store); independent worker processes —
``repro worker --queue DIR``, started before or after the run, one or
many, on any host sharing the file system — claim tasks atomically via
``os.O_EXCL`` claim files, execute them through the same fused
scheduler pass, and write results back.  The submitter re-merges
completions in job order, so the stream is bit-identical to inline::

    repro worker --queue /shared/q &          # capacity, once
    repro run fleet.json --backend distributed --queue /shared/q

or declaratively ``{"execution": {"backend": "distributed", "queue":
"/shared/q", "workers": 4}}``, or ``repro serve --backend distributed
--queue DIR`` to put the whole service in front of the worker fleet.

Liveness is judged by progress, not promises: a worker refreshes its
claim's mtime after every completed job, so a crashed or hung worker's
claim goes stale and the submitter reclaims and republishes the shard
— under the same :class:`RetryPolicy` attempt budget, timeout horizon
and ``on_error`` degradation as supervised process execution, and with
the same bit-identity guarantee (a reclaimed, re-executed shard
re-runs from canonical payloads with fresh seeded RNGs).

Workers are **store-aware**: each consults the shared queue store
before solving, under one batched index read per shard, so any job any
worker has ever completed is a cluster-wide cache hit — a fully warm
fleet performs zero engine solves (``EngineStats.n_solve_steps == 0``)
regardless of which workers serve it, because warm jobs come back as
:class:`~repro.api.records.CachedAssayRecord` entries that never touch
the engine.  And because *where a record lives* is now a pluggable
:class:`~repro.api.store.StorageDriver` behind :class:`RunStore`
(:class:`~repro.api.store.LocalDirDriver` is the reference —
content-addressed JSON under a sharded directory tree), the same
store, executor and worker code runs unchanged over any backing that
implements the driver's read/write/list/lock surface.

**Speculative sweep prefetch** (opt-in: ``execution: {"prefetch":
true}`` or ``--prefetch``) puts idle workers ahead of the user: when a
sweep is submitted, the executor also publishes the sweep's *next*
grid point along its last axis as low-priority prefetch tasks that
workers drain only after all primary shards.  Their results go
straight into the shared store — never into the submitted run's
stream, which stays exactly the spec's grid — so the widened re-sweep
a parameter study typically runs next starts warm.

Spec schema
===========

Every spec serialises to a flat JSON object with a two-field envelope —
``{"schema": <int>, "kind": <str>, ...}`` — shared with the core
design/panel specs of :mod:`repro.core.spec`.  Kinds and their payloads
live in :mod:`repro.api.specs`:

- ``assay``: ``name``, ``seed``, ``cell`` (paper panel or reference
  sensor), ``chain`` (integrated readout class or bench), ``protocol``
  (dwell/sweep parameters, injection schedules, ``batch_electrodes``).
- ``fleet``: ``name``, an explicit ``assays`` list (files stay
  reproducible; :meth:`~repro.api.specs.FleetSpec.homogeneous` builds
  the N-identical-cells case), and the ``execution`` block above.
- ``sweep``: a ``base`` assay payload plus a ``grid`` mapping dotted
  payload paths (``"seed"``, ``"protocol.ca_dwell"``,
  ``"cell.concentrations.glucose"``) to value lists; compiles to the
  Cartesian-product ``fleet``, so parameter studies flow through the
  same backends and store.
- ``calibration``: ``target``, ``points``, ``seed``.
- ``platform``: an embedded core ``design`` payload plus sample
  ``concentrations`` and run parameters.
- ``explore``: an embedded core ``panel`` payload (or null for the
  paper's Sec. III panel).

Versioning policy
=================

``SCHEMA_VERSION`` (currently 5) is written into every payload and
checked on load; a reader raises :class:`~repro.errors.SpecError` on
any version it does not understand, naming the offending file/path.
Version 2 added the fleet ``execution`` block and the ``sweep`` kind;
version 3 added the opt-in ``screening`` flag on assay and sweep
payloads; version 4 added the ``retry`` policy and ``on_error`` mode
to the execution block; version 5 added the ``distributed`` backend
with its ``queue`` directory and the opt-in ``prefetch`` flag.  All
are additive, so readers accept every version in
``SUPPORTED_SCHEMAS`` (1 through 5) and older files keep loading with
their original behaviour (inline execution, full fidelity,
unsupervised).  The
version bumps only on payload changes an older reader would misread;
adding optional keys with defaults is not a bump.  Unknown keys are
ignored on read — forward-written files degrade gracefully — and
``to_dict`` always emits the complete canonical payload, so
:func:`spec_hash` (SHA-256 over the sorted canonical JSON) is stable
across round trips and is the provenance key every
:class:`~repro.api.records.RunRecord` carries and every
:class:`~repro.api.store.RunStore` keys by.

Screening provenance
====================

``screening`` is the one knob that changes *physics*, not just
execution: it swaps in a coarser chemistry grid for triage-speed runs.
It is therefore opt-in at every layer (spec field, ``run(...,
screening=True)``, CLI ``--screening``; never a default), stamped into
the canonical payload **before** hashing — so a screening run can never
collide with its full-fidelity twin in a run store — and surfaced in
every record's ``provenance()["screening"]``.  Pre-v3 payloads carry no
flag and omit the provenance key rather than fabricating one.

Layer 10: the service seam
==========================

Everything above is a library call; :mod:`repro.service` turns it into
a *served* platform — the paper's many-clients-one-instrument shape.
A :class:`~repro.service.server.DiagnosticsServer` (stdlib asyncio, a
minimal HTTP/1.1 layer) exposes this front door over JSON::

    POST   /v1/runs            submit any spec kind -> job id
    GET    /v1/runs/<id>       status + provenance
    GET    /v1/runs/<id>/stream  chunked NDJSON of per-job records
    DELETE /v1/runs/<id>       cancel (pending engine work stops)
    GET    /v1/health, /v1/stats

Behind the endpoints: a two-tier fair priority queue (``screening``
runs deprioritized, round-robin across API keys), per-client
token-bucket rate limiting with a persisted usage ledger, and N
dispatcher threads each owning a **persistent**
:class:`ProcessExecutor` — worker pools are spawned once per dispatcher
and leased to every run, so the process-spawn cost of a small fleet is
amortised across the server's lifetime.  Every run still executes
through :func:`run` / :func:`iter_results` against the shared warm
:class:`~repro.api.store.RunStore` (now safe under concurrent writers:
in-process mutex + cross-process ``index.lock``), so served records are
bit-identical to inline ones — cached, supervised and screening paths
included.  ``repro serve`` is the CLI entry;
:class:`~repro.service.client.ServiceClient` is the stdlib client;
:class:`~repro.service.config.ServeSpec` is the deployment's own
validated, JSON-round-trippable spec.

Escape hatch
============

The class-level entry points remain supported and documented —
:class:`~repro.measurement.panel.PanelProtocol.run`,
:class:`~repro.engine.scheduler.AssayScheduler.run_many`,
:class:`~repro.core.platform.BiosensingPlatform.run` — and the spec
paths are pinned bit-identical to them in ``tests/test_api_run.py``;
specs add provenance and a stable file surface, not new physics.
"""

from repro.api.distributed import DistributedExecutor, run_worker
from repro.api.executors import (
    Executor,
    InlineExecutor,
    ProcessExecutor,
    resolve_executor,
)
from repro.api.jobs import JobKey, JobPlan
from repro.api.records import (
    AssayRunRecord,
    CachedAssayRecord,
    CalibrationRunRecord,
    EngineStats,
    ExploreRunRecord,
    FailedAssayRecord,
    FleetRunRecord,
    PlatformRunRecord,
    ResilienceStats,
    RunRecord,
    StoredRunRecord,
)
from repro.api.resilience import FaultInjector, RetryPolicy
from repro.api.runner import iter_results, run
from repro.api.specs import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    AssaySpec,
    CalibrationSpec,
    CellSpec,
    ChainSpec,
    ExecutionSpec,
    ExploreSpec,
    FleetSpec,
    InjectionEvent,
    PanelProtocolSpec,
    PlatformSpec,
    SweepSpec,
    canonical_payload,
    load_spec,
    spec_from_dict,
    spec_hash,
)
from repro.api.store import LocalDirDriver, RunStore, StorageDriver, StoreStats

__all__ = [
    "SCHEMA_VERSION", "SUPPORTED_SCHEMAS",
    # specs
    "AssaySpec", "FleetSpec", "SweepSpec", "CalibrationSpec",
    "PlatformSpec", "ExploreSpec",
    "CellSpec", "ChainSpec", "PanelProtocolSpec", "InjectionEvent",
    "ExecutionSpec",
    "spec_from_dict", "load_spec", "spec_hash", "canonical_payload",
    # records
    "RunRecord", "AssayRunRecord", "CachedAssayRecord", "FleetRunRecord",
    "CalibrationRunRecord", "PlatformRunRecord", "ExploreRunRecord",
    "StoredRunRecord", "FailedAssayRecord", "EngineStats",
    "ResilienceStats",
    # job-level pipeline
    "JobKey", "JobPlan",
    # execution backends + store
    "Executor", "InlineExecutor", "ProcessExecutor",
    "DistributedExecutor", "run_worker", "resolve_executor",
    "RunStore", "StoreStats", "StorageDriver", "LocalDirDriver",
    # resilience
    "RetryPolicy", "FaultInjector",
    # entry points
    "run", "iter_results",
]
