"""Distributed fleet execution over a shared file-system queue.

:class:`DistributedExecutor` is the third shipped backend (after
``inline`` and ``process``): instead of spawning its own worker pool it
*publishes* the fleet's shards as claimable task files in a queue
directory, and independent worker processes — started with ``repro
worker --queue <dir>`` on any host that shares the file system — claim
shards, execute them, and write results back for the submitter to
re-merge in job order.  The streamed records are pinned bit-identical
to :class:`~repro.api.executors.InlineExecutor` (wall time and engine
fusion statistics excepted — they describe the actual execution, and
per-record statistics stay cumulative in merged job order exactly as on
the process backend).

**Queue layout.**  A queue root holds three directories plus (by
default) the shared run store::

    <queue>/tasks/    one JSON file per published shard (atomic write)
    <queue>/claims/   <task>.claim, created O_EXCL by the winning worker
    <queue>/results/  <task>.json, the executed shard's entries
    <queue>/store/    the shared RunStore workers consult (default)

Claim files are the whole coordination protocol: ``os.O_EXCL`` makes
claiming atomic under any POSIX file system (two racing workers cannot
both win), and the claim's mtime is the worker's *progress heartbeat* —
touched as each job in the shard completes, so a claim that stops
ageing marks a worker that crashed or wedged.  The submitter reclaims
stale shards (claim older than the retry policy's ``timeout_s``, or a
conservative default) by deleting the claim and republishing the task
under the next attempt number; a worker whose claim vanished abandons
the shard without writing results, so a slow-but-alive worker can never
race a reclaimed shard's replacement.

**Store-aware workers.**  Each worker opens the shared
:class:`~repro.api.store.RunStore` next to the queue and, under one
:meth:`~repro.api.store.RunStore.batched` window per shard, looks every
claimed job up by :class:`~repro.api.jobs.JobKey` before solving —
warm jobs short-circuit cluster-wide (shipped back as ``cached``
entries with the original run's provenance), and fresh results are
persisted by the worker itself, so *any* worker's work warms *every*
subsequent run on the cluster.

**Speculative prefetch.**  Sweeps opt in via ``execution:
{prefetch: true}`` (schema v5): the submitter extrapolates the sweep's
last grid axis one step forward and publishes the genuinely-new points
as low-priority single-job tasks (named to sort after every primary
shard), which idle workers execute straight into the shared store —
the next wider sweep finds them warm.  Speculative tasks are
best-effort: the submitting stream never waits on them, and unclaimed
ones are removed when the stream closes.

Faults (:mod:`repro.api.resilience`) ride inside the task files: the
submitter serialises its injector's rules, workers re-parse them and
apply the usual per-job commands — ``crash`` dies with the injected
exit status, ``hang`` stalls past the heartbeat horizon, ``error``
ships a failed entry — so the whole reclaim/retry/degradation path is
testable with local worker subprocesses.
"""

from __future__ import annotations

import json
import os
import socket
import time
import traceback
import warnings
from collections.abc import Iterator
from pathlib import Path

from repro.api.executors import _record, shard_indices
from repro.api.jobs import JobKey
from repro.api.records import (
    AssayRunRecord,
    CachedAssayRecord,
    EngineStats,
    FailedAssayRecord,
    ResilienceStats,
)
from repro.api.resilience import _CRASH_EXIT_STATUS, FaultInjector, RetryPolicy
from repro.api.specs import (
    SCHEMA_VERSION,
    AssaySpec,
    ExecutionSpec,
    FleetSpec,
    SweepSpec,
)
from repro.api.store import RunStore
from repro.errors import ExecutionError, ReproError
from repro.io.export import (
    panel_result_from_payload,
    panel_result_to_payload,
    write_json,
)

__all__ = ["DistributedExecutor", "run_worker", "sweep_prefetch_assays",
           "ensure_queue", "default_store_root"]

#: How often an idle worker re-scans the task directory.
_WORKER_POLL_S = 0.05

#: How often a waiting submitter re-scans for results and stale claims.
_SUBMIT_POLL_S = 0.02

#: Claim-staleness horizon when no retry policy pins ``timeout_s``:
#: generous, because the heartbeat ticks per *job* — a single job
#: solving longer than this looks dead.  Supervised runs should set
#: ``retry.timeout_s`` just above their longest job instead.
_CLAIM_STALE_S = 300.0

#: Warn the submitter once after this long with no worker activity.
_NO_WORKER_WARN_S = 30.0

#: Upper bound on speculative tasks published per sweep.
_MAX_PREFETCH = 16

#: Speculative task-name prefix — sorts after every primary task name
#: (run ids are hex-led), so scanning workers drain real work first.
_PREFETCH_PREFIX = "zz-prefetch"

#: Idle workers sweep result files this stale: a shard that finished
#: after its submitting stream closed leaves a result nobody consumes.
_RESULT_GC_S = 3600.0


class _ClaimLost(ExecutionError):
    """A worker's claim vanished mid-shard: the submitter reclaimed it.

    Internal control flow only — the worker abandons the shard quietly
    (its replacement is already queued) and keeps scanning.
    """


# -- queue geometry ---------------------------------------------------------


def _queue_dirs(queue) -> tuple[Path, Path, Path]:
    root = Path(queue)
    return root / "tasks", root / "claims", root / "results"


def ensure_queue(queue) -> Path:
    """Create the queue's coordination directories; returns the root."""
    root = Path(queue)
    for sub in _queue_dirs(root):
        sub.mkdir(parents=True, exist_ok=True)
    return root


def default_store_root(queue) -> Path:
    """Where the shared store lives when not pointed elsewhere."""
    return Path(queue) / "store"


def _try_claim(claims_dir: Path, name: str) -> Path | None:
    """Atomically claim a task; ``None`` when another worker won.

    ``os.O_EXCL`` is the arbiter — exactly one opener creates the file.
    The claim records the worker's pid and host so the submitter can
    tell a crashed worker (pid gone) from a wedged one when it reclaims.
    """
    path = claims_dir / f"{name}.claim"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    except OSError:
        return None  # claims dir raced away; scan again
    with os.fdopen(fd, "w") as handle:
        json.dump({"pid": os.getpid(), "host": socket.gethostname()}, handle)
    return path


def _beat(claim: Path) -> None:
    """Progress heartbeat: refresh the claim's mtime, once per job.

    A missing claim means the submitter decided this worker was dead
    and republished the shard — abandon immediately rather than racing
    the replacement's results.
    """
    try:
        os.utime(claim)
    except OSError:
        raise _ClaimLost(f"claim {claim.name} was reclaimed") from None


def _job_name(index: int, payload: dict) -> str:
    name = payload.get("name")
    return name if name else f"job{index}"


# -- worker-side shard execution --------------------------------------------


def _solve(pairs: list[tuple[int, dict]], claim: Path) -> list[tuple]:
    """One fused scheduler pass over ``[(index, payload), ...]``.

    Returns ``[(index, payload, result, d_fused, d_groups, d_steps,
    wall_s, seed), ...]`` — delta statistics and per-job wall time, the
    shape both the result file and the store write-back need.
    """
    from repro.engine.scheduler import AssayScheduler

    specs = [AssaySpec.from_dict(payload) for _, payload in pairs]
    jobs = [spec.build_job() for spec in specs]
    out: list[tuple] = []
    prev_fused = prev_groups = prev_steps = 0
    tick = time.perf_counter()
    for (index, payload), spec, item in zip(
            pairs, specs, AssayScheduler().run_iter(jobs)):
        _beat(claim)
        now = time.perf_counter()
        out.append((index, payload, item.result,
                    item.n_fused_dwells - prev_fused,
                    item.n_dwell_groups - prev_groups,
                    item.n_solve_steps - prev_steps,
                    now - tick, spec.seed))
        prev_fused = item.n_fused_dwells
        prev_groups = item.n_dwell_groups
        prev_steps = item.n_solve_steps
        tick = now
    return out


def _solve_isolated(pairs: list[tuple[int, dict]], claim: Path
                    ) -> tuple[list[tuple], list[tuple]]:
    """Fused pass with per-job failure isolation.

    The happy path is one fused pass.  If it raises, jobs re-run one at
    a time so exactly the poisoned jobs fail — the survivors' fusion
    statistics then describe the isolated passes, which is what
    actually executed.  Returns ``(solved, failures)`` where failures
    are ``(index, error_type, message, traceback)``.
    """
    if not pairs:
        return [], []
    try:
        return _solve(pairs, claim), []
    except _ClaimLost:
        raise
    except ReproError:
        solved: list[tuple] = []
        failures: list[tuple] = []
        for pair in pairs:
            try:
                solved.extend(_solve([pair], claim))
            except _ClaimLost:
                raise
            except ReproError as exc:
                failures.append((pair[0], type(exc).__name__, str(exc),
                                 traceback.format_exc()))
        return solved, failures


def _fresh_record(index: int, payload: dict, result, d_fused: int,
                  d_groups: int, d_steps: int, wall_s: float,
                  seed: int) -> AssayRunRecord:
    """The per-job record a worker persists for a fresh solve — same
    shape :func:`repro.api.runner._per_job_snapshot` stores: delta
    statistics and the job's own wall time."""
    return AssayRunRecord(
        spec=payload, spec_hash=JobKey.for_payload(payload).digest,
        schema_version=SCHEMA_VERSION, seed=seed, wall_time_s=wall_s,
        job_name=_job_name(index, payload), result=result,
        engine=EngineStats(n_fused_dwells=d_fused, n_dwell_groups=d_groups,
                           n_solve_steps=d_steps))


def _shard_entries(pairs: list[tuple[int, dict]], store: RunStore | None,
                   injector: FaultInjector | None, attempt: int,
                   hang_s: float, claim: Path) -> list[dict]:
    """Execute one claimed shard: store lookups, faults, fused solve.

    Warm jobs short-circuit as ``cached`` entries carrying the original
    run's result, wall time and statistics; fresh results are written
    back to the shared store (warming the whole cluster) and shipped as
    delta-statistics entries; injected or real engine errors become
    ``failed`` entries for the submitter's retry budget.
    """
    entries: list[dict] = []
    pending: list[tuple[int, dict]] = []
    if store is not None:
        with store.batched():
            for index, payload in pairs:
                hit = store.get_job(JobKey.for_payload(payload))
                if hit is None:
                    pending.append((index, payload))
                    continue
                engine = hit.engine
                entries.append({
                    "index": index, "cached": True,
                    "samples": panel_result_to_payload(hit.result),
                    "wall_s": hit.wall_time_s,
                    "engine": (None if engine is None else
                               [engine.n_fused_dwells, engine.n_dwell_groups,
                                engine.n_solve_steps])})
    else:
        pending = list(pairs)
    _beat(claim)
    if injector is not None and pending:
        commands = [injector.command([_job_name(i, p)], attempt)
                    for i, p in pending]
        if "crash" in commands:
            os._exit(_CRASH_EXIT_STATUS)
        if "hang" in commands:
            # A wedged worker makes no progress: no heartbeat while the
            # stall lasts, so the submitter's staleness horizon fires.
            time.sleep(hang_s)
            _beat(claim)
        for (index, payload), command in zip(pending, commands):
            if command == "error":
                entries.append({"index": index, "failed": True,
                                "error_type": "ExecutionError",
                                "error": "injected transient engine error",
                                "traceback": ""})
        pending = [pair for pair, command in zip(pending, commands)
                   if command != "error"]
    solved, failures = _solve_isolated(pending, claim)
    fresh = [_fresh_record(*row) for row in solved]
    for index, payload, result, d_fused, d_groups, d_steps, wall_s, _ in \
            solved:
        entries.append({"index": index,
                        "samples": panel_result_to_payload(result),
                        "d_fused": d_fused, "d_groups": d_groups,
                        "d_steps": d_steps, "wall_s": wall_s})
    for index, error_type, message, tb in failures:
        entries.append({"index": index, "failed": True,
                        "error_type": error_type, "error": message,
                        "traceback": tb})
    if store is not None and fresh:
        with store.batched():
            for record in fresh:
                store.put_job(record)
    return entries


def _run_prefetch(pairs: list[tuple[int, dict]], store: RunStore | None,
                  claim: Path) -> int:
    """Execute a speculative task straight into the shared store.

    No result file and no fault injection — prefetch is best-effort
    warmup, invisible to the submitting stream.  Failures are dropped
    (the point would fail identically, and loudly, if a real sweep ever
    asks for it).  Returns the number of points actually warmed.
    """
    if store is None:
        return 0
    fresh: list[tuple[int, dict]] = []
    with store.batched():
        for index, payload in pairs:
            if store.get_job(JobKey.for_payload(payload)) is None:
                fresh.append((index, payload))
    if not fresh:
        return 0
    solved, _failures = _solve_isolated(fresh, claim)
    records = [_fresh_record(*row) for row in solved]
    if records:
        with store.batched():
            for record in records:
                store.put_job(record)
    return len(records)


def _run_task(payload: dict, name: str, task_path: Path, claim: Path,
              results_dir: Path, store: RunStore | None,
              injector: FaultInjector | None) -> int:
    """Execute one claimed task file; returns the job count handled."""
    attempt = int(payload.get("attempt", 0))
    text = payload.get("faults")
    if text:
        injector = FaultInjector.parse(
            text, seed=int(payload.get("faults_seed", 0)))
    pairs = [(int(index), dict(job)) for index, job in
             payload.get("jobs", [])]
    if payload.get("kind") == "prefetch":
        warmed = _run_prefetch(pairs, store, claim)
        task_path.unlink(missing_ok=True)
        claim.unlink(missing_ok=True)
        return warmed
    entries = _shard_entries(pairs, store, injector, attempt,
                             float(payload.get("hang_s", 3600.0)), claim)
    # Result first (atomic), then tidy: a crash between these steps
    # leaves a completed result the submitter still consumes.
    write_json({"run": payload.get("run"), "attempt": attempt,
                "pid": os.getpid(), "entries": entries},
               results_dir / f"{name}.json")
    task_path.unlink(missing_ok=True)
    claim.unlink(missing_ok=True)
    return len(pairs)


def run_worker(queue, store=None, max_shards: int | None = None,
               idle_exit_s: float | None = None,
               poll_s: float = _WORKER_POLL_S,
               faults: FaultInjector | None = None) -> dict:
    """The ``repro worker`` claim-and-execute loop.

    Scans ``<queue>/tasks/`` in sorted order (primary shards before
    speculative prefetch), claims the first unclaimed task via
    ``O_EXCL``, executes it against the shared store, and repeats.
    ``store`` defaults to ``<queue>/store``; pass a path or an open
    :class:`~repro.api.store.RunStore` to point elsewhere.
    ``max_shards`` bounds how many *primary* shards this worker
    executes (prefetch tasks ride free); ``idle_exit_s`` exits after
    that long with nothing claimable — ``None`` loops forever (the
    service-deployment shape; tests and CI always bound it).  With no
    explicit ``faults`` the ``REPRO_FAULTS`` environment injector
    applies, and rules shipped inside task files override both.

    Returns ``{"shards": n, "jobs": n, "prefetched": n}``.
    """
    root = ensure_queue(queue)
    tasks_dir, claims_dir, results_dir = _queue_dirs(root)
    if isinstance(store, RunStore):
        run_store: RunStore | None = store
    else:
        run_store = RunStore(default_store_root(root) if store is None
                             else store)
    if faults is None:
        faults = FaultInjector.from_env()
    done = {"shards": 0, "jobs": 0, "prefetched": 0}
    last_work = time.monotonic()
    while True:
        claimed_any = False
        for task_path in sorted(tasks_dir.glob("*.json")):
            name = task_path.stem
            if (claims_dir / f"{name}.claim").exists():
                continue
            claim = _try_claim(claims_dir, name)
            if claim is None:
                continue
            try:
                payload = json.loads(task_path.read_text())
            except (OSError, ValueError):
                # The task raced away (reclaim or stream close) between
                # scan and read; release the orphan claim and move on.
                claim.unlink(missing_ok=True)
                continue
            claimed_any = True
            try:
                handled = _run_task(payload, name, task_path, claim,
                                    results_dir, run_store, faults)
            except _ClaimLost:
                continue
            if payload.get("kind") == "prefetch":
                done["prefetched"] += handled
            else:
                done["shards"] += 1
                done["jobs"] += handled
            last_work = time.monotonic()
            if max_shards is not None and done["shards"] >= max_shards:
                return done
        if not claimed_any:
            _sweep_orphan_results(results_dir)
            if (idle_exit_s is not None
                    and time.monotonic() - last_work >= idle_exit_s):
                return done
            time.sleep(poll_s)


def _sweep_orphan_results(results_dir: Path,
                          horizon_s: float = _RESULT_GC_S) -> None:
    """Drop result files no submitter will ever consume.

    A shard claimed before its stream closed still completes (and warms
    the store), but its result file is orphaned — submitters only watch
    task names from their own live run.  Idle workers sweep anything
    older than the horizon, keeping a long-lived queue bounded.
    """
    for path in results_dir.glob("*.json"):
        try:
            if time.time() - path.stat().st_mtime > horizon_s:
                path.unlink(missing_ok=True)
        except OSError:
            continue


# -- speculative sweep prefetch ---------------------------------------------


def sweep_prefetch_assays(sweep: SweepSpec,
                          limit: int = _MAX_PREFETCH) -> list[AssaySpec]:
    """The near-miss grid points a sweep's idle workers should warm.

    Only the *last* axis in sorted-key order is extrapolated — one step
    past its final value, at the grid's own spacing.  That is the one
    direction that preserves naming: compiled grid points are numbered
    by ``itertools.product`` over sorted axes, and appending to the
    last axis keeps every existing point's enumeration index (hence its
    ``name`` and :class:`~repro.api.jobs.JobKey`) unchanged, so the
    speculative points are exactly the records a widened re-sweep will
    look up.  Non-numeric, boolean, single-value and zero-step axes
    yield nothing, as does any extension the spec layer rejects.
    """
    axes = sorted(sweep.grid.items())
    if not axes:
        return []
    dotted, values = axes[-1]
    values = tuple(values)
    if len(values) < 2:
        return []
    last, prev = values[-1], values[-2]
    for value in (last, prev):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return []
    step = last - prev
    if not step:
        return []
    grown = dict(sweep.grid)
    grown[dotted] = values + (last + step,)
    try:
        extended = SweepSpec(name=sweep.name, base=sweep.base, grid=grown,
                             execution=sweep.execution,
                             screening=sweep.screening)
        known = {JobKey.for_payload(assay.to_dict()).digest
                 for assay in sweep.compile().assays}
        fresh = [assay for assay in extended.compile().assays
                 if JobKey.for_payload(assay.to_dict()).digest not in known]
    except ReproError:
        return []
    return fresh[:limit]


# -- the submitting executor ------------------------------------------------


class DistributedExecutor:
    """Publish a fleet's shards to a shared queue and re-merge results.

    Parameters
    ----------
    queue:
        The coordination directory workers watch (created on demand).
    workers:
        How many shards to publish — match or exceed the worker
        processes you plan to run; ``None`` publishes one per submitter
        CPU core.  Unlike the process backend nothing is spawned here:
        parallelism comes from however many ``repro worker`` processes
        are attached to the queue.
    shard:
        Job partitioning strategy — see
        :func:`~repro.api.executors.shard_indices`.
    retry / on_error / faults:
        Supervision knobs, same meanings as everywhere: the retry
        policy's ``max_attempts`` bounds republish attempts for both
        failed jobs and reclaimed shards, its ``timeout_s`` sets the
        claim-staleness horizon, and ``on_error="partial"`` degrades
        exhausted jobs to
        :class:`~repro.api.records.FailedAssayRecord` slots.
    prefetch:
        Arm speculative sweep prefetch (see
        :func:`sweep_prefetch_assays`); only effective when the runner
        hands the executor the originating sweep via
        :meth:`publish_prefetch`.

    The stream is bit-identical to the inline backend (results cross
    the boundary as lossless
    :func:`~repro.io.export.panel_result_to_payload` payloads); store
    warm-hits stream as :class:`~repro.api.records.CachedAssayRecord`
    with their original provenance, exactly like submitter-side
    memoisation.  Closing the stream early removes this run's remaining
    queue artefacts; claimed shards finish (and warm the store) on
    their own.
    """

    name = "distributed"

    def __init__(self, queue, workers: int | None = None,
                 shard: str = "interleave",
                 retry: RetryPolicy | None = None,
                 on_error: str = "raise",
                 prefetch: bool = False,
                 faults: FaultInjector | None = None,
                 poll_s: float = _SUBMIT_POLL_S) -> None:
        # One validation authority: the declarative block this executor
        # is the programmatic face of.
        ExecutionSpec(backend="distributed", queue=str(queue),
                      workers=workers, shard=shard, retry=retry,
                      on_error=on_error, prefetch=bool(prefetch))
        self.queue = Path(queue)
        self.workers = workers
        self.shard = shard
        self.retry = retry
        self.on_error = on_error
        self.prefetch = bool(prefetch)
        self.faults = faults if faults is not None \
            else FaultInjector.from_env()
        self.poll_s = float(poll_s)
        self._seq = 0
        self._sweep: SweepSpec | None = None

    def _supervised(self) -> bool:
        return (self.retry is not None or self.on_error != "raise"
                or self.faults is not None)

    def __repr__(self) -> str:
        extra = (f", retry={self.retry!r}, on_error={self.on_error!r}"
                 if self._supervised() else "")
        return (f"DistributedExecutor(queue={str(self.queue)!r}, "
                f"workers={self.workers!r}, shard={self.shard!r}{extra})")

    def close(self) -> None:
        """Nothing persistent to release: each stream cleans its own
        queue artefacts, and workers are independent processes."""

    def publish_prefetch(self, sweep: SweepSpec) -> None:
        """Arm speculative prefetch for the next ``run_fleet`` call.

        The runner calls this (duck-typed — other backends simply lack
        the method) when a sweep compiles with ``prefetch`` enabled, so
        the executor still sees the *grid* its fleet came from.
        """
        if self.prefetch and isinstance(sweep, SweepSpec):
            self._sweep = sweep

    # -- publishing -----------------------------------------------------------

    def _publish(self, tasks_dir: Path, live: dict, run_id: str,
                 label: str, attempt: int, indices: list[int],
                 payloads: list[dict], hang_s: float,
                 stale_s: float) -> None:
        name = f"{run_id}-{label}-a{attempt}"
        write_json({"kind": "shard", "run": run_id, "attempt": attempt,
                    "schema_version": SCHEMA_VERSION,
                    "hang_s": hang_s, "stale_s": stale_s,
                    "faults": (self.faults.describe()
                               if self.faults is not None else None),
                    "faults_seed": (self.faults.seed
                                    if self.faults is not None else 0),
                    "jobs": [[index, payloads[index]] for index in indices]},
                   tasks_dir / f"{name}.json")
        live[name] = {"indices": list(indices), "attempt": attempt,
                      "label": label}

    def _publish_prefetch_tasks(self, tasks_dir: Path, run_id: str,
                                stale_s: float) -> list[str]:
        sweep, self._sweep = self._sweep, None
        if sweep is None:
            return []
        names = []
        for k, assay in enumerate(sweep_prefetch_assays(sweep)):
            name = f"{_PREFETCH_PREFIX}-{run_id}-p{k:03d}"
            write_json({"kind": "prefetch", "run": run_id, "attempt": 0,
                        "schema_version": SCHEMA_VERSION,
                        "stale_s": stale_s,
                        "jobs": [[k, assay.to_dict()]]},
                       tasks_dir / f"{name}.json")
            names.append(name)
        return names

    # -- the submit / poll / re-merge loop ------------------------------------

    def run_fleet(self, spec: FleetSpec) -> Iterator[AssayRunRecord]:
        tasks_dir, claims_dir, results_dir = _queue_dirs(self.queue)
        ensure_queue(self.queue)
        assays = spec.assays
        n_jobs = len(assays)
        payloads = [assay.to_dict() for assay in assays]
        names = [assay.name if assay.name else f"job{index}"
                 for index, assay in enumerate(assays)]
        n_shards = (self.workers if self.workers is not None
                    else (os.cpu_count() or 1))
        shards = shard_indices(n_jobs, n_shards, self.shard)
        self._seq += 1
        run_id = (f"{JobKey.for_payload({'fleet': payloads}).digest[:12]}"
                  f"-{os.getpid()}-{self._seq}")
        policy = self.retry
        max_attempts = policy.max_attempts if policy is not None else 1
        stale_s = (policy.timeout_s
                   if policy is not None and policy.timeout_s is not None
                   else _CLAIM_STALE_S)
        # Same stall horizon convention as supervise_fleet: injected
        # hangs outlast the detection window by a comfortable margin.
        hang_s = (3600.0 if policy is None or policy.timeout_s is None
                  else max(4.0 * policy.timeout_s, 1.0))
        live: dict[str, dict] = {}
        for k, shard in enumerate(shards):
            self._publish(tasks_dir, live, run_id, f"s{k:03d}", 0, shard,
                          payloads, hang_s, stale_s)
        prefetch_names = self._publish_prefetch_tasks(tasks_dir, run_id,
                                                      stale_s)
        counters = {"retries": 0, "worker_crashes": 0, "worker_hangs": 0,
                    "engine_errors": 0, "failed_jobs": 0}
        buffered: dict[int, dict] = {}
        cum = [0, 0, 0]
        next_index = 0
        start = time.perf_counter()
        launched = time.monotonic()
        seen_activity = False
        warned_idle = False
        try:
            while next_index < n_jobs:
                progressed = False
                # Consume finished shards.
                for name in list(live):
                    result_path = results_dir / f"{name}.json"
                    try:
                        result = json.loads(result_path.read_text())
                    except (OSError, ValueError):
                        continue
                    info = live.pop(name)
                    self._scrub(name, tasks_dir, claims_dir, results_dir)
                    progressed = True
                    seen_activity = True
                    for entry in result.get("entries", []):
                        index = int(entry["index"])
                        if not entry.get("failed"):
                            buffered[index] = entry
                            continue
                        counters["engine_errors"] += 1
                        used = info["attempt"] + 1
                        if used < max_attempts:
                            counters["retries"] += 1
                            self._publish(tasks_dir, live, run_id,
                                          f"r{index:04d}", used, [index],
                                          payloads, hang_s, stale_s)
                        else:
                            counters["failed_jobs"] += 1
                            entry = dict(entry)
                            entry["attempts"] = used
                            buffered[index] = entry
                # Reclaim stale claims — dead or wedged workers.
                now = time.monotonic()
                for name in list(live):
                    if (results_dir / f"{name}.json").exists():
                        continue
                    claim_path = claims_dir / f"{name}.claim"
                    try:
                        age = time.time() - claim_path.stat().st_mtime
                    except OSError:
                        continue  # unclaimed, or completing right now
                    seen_activity = True
                    if age <= stale_s:
                        continue
                    info = live.pop(name)
                    kind = self._death_kind(claim_path)
                    counters[kind] += 1
                    self._scrub(name, tasks_dir, claims_dir, results_dir)
                    used = info["attempt"] + 1
                    if used >= max_attempts:
                        raise ExecutionError(
                            f"worker executing {name} stalled or died "
                            f"(claim went {age:.1f}s without progress) and "
                            f"the retry budget is exhausted after {used} "
                            f"attempt(s)")
                    counters["retries"] += 1
                    self._publish(tasks_dir, live, run_id, info["label"],
                                  used, info["indices"], payloads, hang_s,
                                  stale_s)
                    progressed = True
                # Yield everything ready, in fleet job order.
                while next_index in buffered:
                    yield self._merged_record(
                        buffered.pop(next_index), next_index, payloads,
                        names, assays, cum, start, max_attempts, counters)
                    next_index += 1
                if next_index >= n_jobs:
                    break
                if not live and next_index not in buffered:
                    raise ExecutionError(
                        f"workers completed without producing job "
                        f"{next_index} — shard bookkeeping bug")
                if not seen_activity and not warned_idle and \
                        now - launched > _NO_WORKER_WARN_S:
                    warned_idle = True
                    warnings.warn(
                        f"no worker has claimed any of this fleet's shards "
                        f"after {_NO_WORKER_WARN_S:.0f}s — is a `repro "
                        f"worker --queue {self.queue}` process running?",
                        RuntimeWarning, stacklevel=2)
                if not progressed:
                    time.sleep(self.poll_s)
        finally:
            for name in list(live):
                self._scrub(name, tasks_dir, claims_dir, results_dir,
                            keep_claimed=True)
            for name in prefetch_names:
                # Unclaimed speculative tasks die with the stream;
                # claimed ones finish into the store on their own.
                if not (claims_dir / f"{name}.claim").exists():
                    (tasks_dir / f"{name}.json").unlink(missing_ok=True)

    # -- merge helpers --------------------------------------------------------

    def _merged_record(self, entry: dict, index: int, payloads: list[dict],
                       names: list[str], assays, cum: list[int],
                       start: float, max_attempts: int,
                       counters: dict) -> AssayRunRecord:
        payload = payloads[index]
        if entry.get("failed"):
            attempts = int(entry.get("attempts", max_attempts))
            if self.on_error != "partial":
                raise ExecutionError(
                    f"job {names[index]} failed after {attempts} "
                    f"attempt(s): {entry['error_type']}: {entry['error']}")
            record: AssayRunRecord = FailedAssayRecord(
                spec=payload,
                spec_hash=JobKey.for_payload(payload).digest,
                schema_version=SCHEMA_VERSION, seed=assays[index].seed,
                wall_time_s=time.perf_counter() - start,
                job_name=names[index], error_type=entry["error_type"],
                error=entry["error"], traceback=entry.get("traceback", ""),
                attempts=attempts)
        elif entry.get("cached"):
            engine = entry.get("engine")
            record = CachedAssayRecord(
                spec=payload,
                spec_hash=JobKey.for_payload(payload).digest,
                schema_version=SCHEMA_VERSION, seed=assays[index].seed,
                wall_time_s=float(entry.get("wall_s", 0.0)),
                job_name=names[index],
                result=panel_result_from_payload(entry["samples"]),
                engine=None if engine is None else EngineStats(
                    n_fused_dwells=int(engine[0]),
                    n_dwell_groups=int(engine[1]),
                    n_solve_steps=int(engine[2])))
        else:
            cum[0] += int(entry["d_fused"])
            cum[1] += int(entry["d_groups"])
            cum[2] += int(entry["d_steps"])
            record = _record(payload, assays[index].seed, names[index],
                             panel_result_from_payload(entry["samples"]),
                             cum[0], cum[1], cum[2], start)
        if self._supervised():
            object.__setattr__(record, "resilience",
                               ResilienceStats(**counters))
        return record

    def _death_kind(self, claim_path: Path) -> str:
        """Crash or hang?  Probe the claimant's pid when it is local —
        a live pid means wedged, a dead one means crashed; cross-host
        claims (unprobeable) count as crashes."""
        try:
            meta = json.loads(claim_path.read_text())
        except (OSError, ValueError):
            return "worker_crashes"
        if meta.get("host") != socket.gethostname():
            return "worker_crashes"
        try:
            os.kill(int(meta.get("pid", -1)), 0)
        except (OSError, ValueError):
            return "worker_crashes"
        return "worker_hangs"

    @staticmethod
    def _scrub(name: str, tasks_dir: Path, claims_dir: Path,
               results_dir: Path, keep_claimed: bool = False) -> None:
        """Best-effort removal of one task's queue artefacts.

        ``keep_claimed`` (stream close) leaves a claimed task's claim
        alone: the worker holding it deletes it when it finishes, and
        deleting it out from under a live worker would look like a
        reclaim.
        """
        if keep_claimed and (claims_dir / f"{name}.claim").exists():
            (tasks_dir / f"{name}.json").unlink(missing_ok=True)
            return
        (tasks_dir / f"{name}.json").unlink(missing_ok=True)
        (claims_dir / f"{name}.claim").unlink(missing_ok=True)
        (results_dir / f"{name}.json").unlink(missing_ok=True)
