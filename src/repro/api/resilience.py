"""Fault-tolerant execution: retry policy, supervision, fault injection.

The paper's platform is a *clinical* pipeline: a crashed worker, a hung
solve or a corrupt cached record must degrade into an attributable
per-assay failure, never a lost fleet.  This module is the resilience
layer under :mod:`repro.api`:

- :class:`RetryPolicy` — the spec-level description of how hard to try:
  attempt budget, per-dispatch timeout, exponential backoff with
  deterministic (seeded) jitter.  Rides in the fleet's ``execution``
  block (schema v4) and round-trips through JSON like every other spec.
- :func:`supervise_fleet` — the supervised process backend.  Each work
  *unit* (initially one shard) runs in its **own single-worker process
  pool**, so a crash (``BrokenProcessPool``), a hang (deadline expiry →
  the pool is killed) or a raising job is attributed to exactly that
  unit — a shared pool would fail every pending future at once and make
  the culprit unknowable.  Failed units are re-dispatched at finer
  granularity (shard → split halves → single jobs) after the policy's
  backoff, so one poisoned job costs only its own attempt budget, and
  completions stream in job order exactly like the plain backends.
- :func:`supervise_inline` — the same retry/degradation semantics for
  the inline backend (one job per fused pass; worker faults have no
  meaning in-process, so every injected fault surfaces as a transient
  engine error).
- :class:`FaultInjector` — a deterministic, seeded harness that turns
  the failure modes into reproducible test fixtures: ``worker_crash``
  (``os._exit`` mid-shard), ``worker_hang`` (sleep past the timeout),
  ``engine_error`` (a raised :class:`~repro.errors.ExecutionError`) and
  ``store_corrupt`` (scramble a just-written store payload).  Rules are
  count-based (``"worker_crash:1"`` — fire on a unit's first attempt
  only, so retries provably recover) or rate-based
  (``"engine_error:0.25"`` — a seeded hash decides, reproducibly), with
  an optional ``@substring`` job-name filter, and load from the
  ``REPRO_FAULTS`` / ``REPRO_FAULTS_SEED`` environment so CI can fault
  an unmodified program.

Because injected faults live in the *executor*, never in the spec
payload, a faulted run and its fault-free twin share every spec hash
and :class:`~repro.api.jobs.JobKey` — which is exactly what lets tests
assert the recovered stream is **bit-identical** to the undisturbed
one.  Retry/fault counts are stamped on every streamed record as a
:class:`ResilienceStats` snapshot (``provenance()["resilience"]``);
jobs that exhaust their budget under ``on_error="partial"`` yield
:class:`~repro.api.records.FailedAssayRecord` instead of aborting the
fleet, and under ``on_error="raise"`` the whole run fails with
:class:`~repro.errors.ExecutionError` after a bounded cleanup.
"""

from __future__ import annotations

import hashlib
import math
import os
import time
import traceback as traceback_module
from collections.abc import Iterator, Mapping, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.api.records import FailedAssayRecord, ResilienceStats
from repro.errors import ExecutionError, SpecError

__all__ = [
    "RetryPolicy", "FaultInjector", "FaultRule",
    "supervise_fleet", "supervise_inline", "kill_pool",
    "ENV_FAULTS", "ENV_FAULTS_SEED",
]

#: Environment variables the :class:`FaultInjector` loads from:
#: ``REPRO_FAULTS="worker_crash:1;engine_error:2@cell05"`` and an
#: optional integer ``REPRO_FAULTS_SEED`` for rate-based rules.
ENV_FAULTS = "REPRO_FAULTS"
ENV_FAULTS_SEED = "REPRO_FAULTS_SEED"

_FAULT_KINDS = ("worker_crash", "worker_hang", "engine_error",
                "store_corrupt")

#: Exit status an injected worker crash dies with — distinctive in
#: worker logs, irrelevant to the parent (any abrupt death breaks the
#: unit's pool the same way).
_CRASH_EXIT_STATUS = 170


def _seeded_unit_interval(*parts) -> float:
    """A deterministic number in ``[0, 1)`` from the given parts."""
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


def _policy_float(value, label: str, *, optional: bool = False):
    if optional and value is None:
        return None
    if isinstance(value, (bool, str)):
        raise SpecError(f"{label}: expected a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{label}: expected a number, got {value!r}"
                        ) from exc


def _policy_int(value, label: str) -> int:
    if isinstance(value, (bool, str)) or (isinstance(value, float)
                                          and not value.is_integer()):
        raise SpecError(f"{label}: expected an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise SpecError(f"{label}: expected an integer, got {value!r}"
                        ) from exc


@dataclass(frozen=True)
class RetryPolicy:
    """How hard a backend tries before a job is declared failed.

    ``max_attempts`` is the per-*job* budget (1 = no retries) — a job
    consumes one attempt every time a unit containing it crashes, hangs,
    or raises.  ``timeout_s`` bounds each dispatched unit's wall time
    (``None`` = never time out); a unit past its deadline is treated as
    hung and its worker killed.  Re-dispatch waits ``backoff_s *
    backoff_factor**(attempt-1)`` seconds plus a deterministic jitter in
    ``[0, jitter_s)`` derived from ``jitter_seed`` and the job name —
    seeded, so two runs of the same faulted fleet back off identically
    (and the recovered stream stays reproducible end to end).
    """

    max_attempts: int = 3
    timeout_s: float | None = None
    backoff_s: float = 0.0
    backoff_factor: float = 2.0
    jitter_s: float = 0.0
    jitter_seed: int = 2011

    def __post_init__(self) -> None:
        if not isinstance(self.max_attempts, int) \
                or isinstance(self.max_attempts, bool) \
                or self.max_attempts < 1:
            raise SpecError(f"retry policy: max_attempts must be an "
                            f"integer >= 1, got {self.max_attempts!r}")
        if self.timeout_s is not None and not self.timeout_s > 0.0:
            raise SpecError(f"retry policy: timeout_s must be > 0 or "
                            f"null, got {self.timeout_s!r}")
        if self.backoff_s < 0.0:
            raise SpecError(f"retry policy: backoff_s must be >= 0, "
                            f"got {self.backoff_s!r}")
        if self.backoff_factor < 1.0:
            raise SpecError(f"retry policy: backoff_factor must be "
                            f">= 1, got {self.backoff_factor!r}")
        if self.jitter_s < 0.0:
            raise SpecError(f"retry policy: jitter_s must be >= 0, "
                            f"got {self.jitter_s!r}")

    def delay_s(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before re-dispatching after failure number
        ``attempt`` (1-based).  Deterministic for a given ``key``."""
        attempt = max(1, int(attempt))
        delay = self.backoff_s * self.backoff_factor ** (attempt - 1)
        if self.jitter_s > 0.0:
            delay += self.jitter_s * _seeded_unit_interval(
                self.jitter_seed, key, attempt)
        return delay

    def to_dict(self) -> dict:
        return {"max_attempts": int(self.max_attempts),
                "timeout_s": (float(self.timeout_s)
                              if self.timeout_s is not None else None),
                "backoff_s": float(self.backoff_s),
                "backoff_factor": float(self.backoff_factor),
                "jitter_s": float(self.jitter_s),
                "jitter_seed": int(self.jitter_seed)}

    @classmethod
    def from_dict(cls, payload: Mapping,
                  path: str = "retry policy") -> "RetryPolicy":
        if not isinstance(payload, Mapping):
            raise SpecError(f"{path}: expected a JSON object or null")
        return cls(
            max_attempts=_policy_int(payload.get("max_attempts", 3),
                                     f"{path}.max_attempts"),
            timeout_s=_policy_float(payload.get("timeout_s"),
                                    f"{path}.timeout_s", optional=True),
            backoff_s=_policy_float(payload.get("backoff_s", 0.0),
                                    f"{path}.backoff_s"),
            backoff_factor=_policy_float(
                payload.get("backoff_factor", 2.0),
                f"{path}.backoff_factor"),
            jitter_s=_policy_float(payload.get("jitter_s", 0.0),
                                   f"{path}.jitter_s"),
            jitter_seed=_policy_int(payload.get("jitter_seed", 2011),
                                    f"{path}.jitter_seed"))


# --------------------------------------------------------------------------
# Deterministic fault injection
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *which* fault, *when*, and *where*.

    ``count`` fires the fault while a unit's attempt number is below it
    (``1`` = first attempt only, so the retry provably recovers);
    ``rate`` fires with that probability per opportunity, decided by a
    seeded hash (reproducible across runs).  Exactly one of the two is
    active.  ``match`` restricts the rule to units containing a job
    whose name has it as a substring (for ``store_corrupt``: the record
    key).
    """

    kind: str
    count: int = 0
    rate: float = 0.0
    match: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in _FAULT_KINDS:
            raise SpecError(f"fault rule: unknown fault kind "
                            f"{self.kind!r} "
                            f"(known: {', '.join(_FAULT_KINDS)})")
        if self.count < 0:
            raise SpecError(f"fault rule: count must be >= 0, "
                            f"got {self.count}")
        if not 0.0 <= self.rate < 1.0:
            raise SpecError(f"fault rule: rate must be in [0, 1), "
                            f"got {self.rate}")
        if bool(self.count) == bool(self.rate):
            raise SpecError("fault rule: exactly one of count/rate "
                            "must be set")


class FaultInjector:
    """Deterministic, seeded injection of the failure modes under test.

    Build one programmatically (:meth:`parse`) or from the environment
    (:meth:`from_env`; format ``"kind:count[@match]"`` or
    ``"kind:rate[@match]"``, ``;``-separated).  Executors consult
    :meth:`command` once per dispatched unit — in the single-threaded
    supervisor, so decisions never depend on worker scheduling — and
    the store consults :meth:`corrupts` once per record write.  All
    decisions are pure functions of (rule, seed, names, attempt), so a
    faulted run replays identically.
    """

    def __init__(self, rules: Sequence[FaultRule] = (),
                 seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._write_counts: dict[str, int] = {}

    def __repr__(self) -> str:
        return (f"FaultInjector({self.describe()!r}, seed={self.seed})")

    def describe(self) -> str:
        """The injector's rules back in :meth:`parse` syntax."""
        parts = []
        for rule in self.rules:
            amount = rule.count if rule.count else rule.rate
            suffix = f"@{rule.match}" if rule.match is not None else ""
            parts.append(f"{rule.kind}:{amount}{suffix}")
        return ";".join(parts)

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultInjector":
        """``"worker_crash:1;engine_error:2@cell05"`` → an injector."""
        rules = []
        for item in text.replace(",", ";").split(";"):
            item = item.strip()
            if not item:
                continue
            kind, sep, amount = item.partition(":")
            if not sep:
                raise SpecError(f"fault spec {item!r}: expected "
                                f"kind:count or kind:rate")
            amount, _, match = amount.partition("@")
            try:
                value = float(amount)
            except ValueError:
                raise SpecError(f"fault spec {item!r}: {amount!r} is "
                                f"not a count or rate") from None
            if value >= 1.0 or value.is_integer():
                rule = FaultRule(kind=kind.strip(), count=int(value),
                                 match=match or None)
            else:
                rule = FaultRule(kind=kind.strip(), rate=value,
                                 match=match or None)
            rules.append(rule)
        if not rules:
            raise SpecError(f"fault spec {text!r}: no rules")
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, environ: Mapping | None = None
                 ) -> "FaultInjector | None":
        """The injector ``REPRO_FAULTS`` describes, or ``None``."""
        environ = os.environ if environ is None else environ
        text = environ.get(ENV_FAULTS, "").strip()
        if not text:
            return None
        seed_text = environ.get(ENV_FAULTS_SEED, "").strip()
        try:
            seed = int(seed_text) if seed_text else 0
        except ValueError:
            raise SpecError(f"{ENV_FAULTS_SEED}={seed_text!r}: expected "
                            f"an integer") from None
        return cls.parse(text, seed=seed)

    def _fires(self, rule: FaultRule, names: Sequence[str],
               attempt: int) -> bool:
        if rule.match is not None and not any(
                rule.match in name for name in names):
            return False
        if rule.count:
            return attempt < rule.count
        return _seeded_unit_interval(
            self.seed, rule.kind, *names, attempt) < rule.rate

    def command(self, names: Sequence[str],
                attempt: int) -> str | None:
        """The fault a dispatched unit should suffer, if any.

        ``names`` are the unit's job names and ``attempt`` the unit's
        attempt number (0 = first try).  Crash beats hang beats error
        when several rules fire at once.
        """
        for kind, command in (("worker_crash", "crash"),
                              ("worker_hang", "hang"),
                              ("engine_error", "error")):
            for rule in self.rules:
                if rule.kind == kind and self._fires(rule, names, attempt):
                    return command
        return None

    def corrupts(self, key: str) -> bool:
        """Whether this write of record ``key`` should be scrambled.

        Counts write opportunities per key, so ``store_corrupt:1``
        corrupts a record's first write and lets the re-write after
        quarantine land clean.
        """
        opportunity = self._write_counts.get(key, 0)
        self._write_counts[key] = opportunity + 1
        return any(rule.kind == "store_corrupt"
                   and self._fires(rule, (key,), opportunity)
                   for rule in self.rules)


# --------------------------------------------------------------------------
# Worker entry + pool teardown
# --------------------------------------------------------------------------


def _execute_unit(shard: list, fault: str | None = None,
                  hang_s: float = 3600.0) -> list:
    """Worker entry point: one unit's jobs, with an optional injected
    fault.  ``shard`` is ``[(fleet_index, assay_payload), ...]`` exactly
    as :func:`repro.api.executors._execute_shard` takes it; the fault
    command was decided parent-side so worker scheduling can never
    change what fails."""
    if fault == "crash":
        # An abrupt death — no exception, no cleanup — exactly what a
        # segfault or OOM kill looks like to the parent pool.
        os._exit(_CRASH_EXIT_STATUS)
    if fault == "hang":
        time.sleep(hang_s)
        raise ExecutionError("injected hung worker outlived its timeout")
    if fault == "error":
        raise ExecutionError("injected transient engine error")
    from repro.api.executors import _execute_shard

    return _execute_shard(shard)


def kill_pool(pool: ProcessPoolExecutor, grace_s: float = 2.0) -> None:
    """Shut a worker pool down without waiting on hung workers.

    ``shutdown(wait=True)`` blocks until every running future returns —
    forever, if a worker is hung — so supervised teardown (and an
    abandoned stream's ``close()``) goes through here instead: cancel
    everything queued, give live workers ``grace_s`` seconds to exit,
    then terminate and finally SIGKILL the stragglers.  Bounded wall
    time, guaranteed release of the worker processes.
    """
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None)
    workers = list(processes.values()) if processes else []
    for worker in workers:
        if worker.is_alive():
            worker.terminate()
    deadline = time.monotonic() + grace_s
    for worker in workers:
        worker.join(max(0.0, deadline - time.monotonic()))
    for worker in workers:
        if worker.is_alive():  # pragma: no cover - SIGTERM ignored
            worker.kill()
            worker.join(grace_s)


# --------------------------------------------------------------------------
# The supervised backends
# --------------------------------------------------------------------------


@dataclass
class _Unit:
    """One dispatchable chunk of a fleet: job indices + earliest start."""

    indices: tuple[int, ...]
    not_before: float = 0.0


class _Counters:
    """Mutable fault/retry tallies; snapshotted onto every record."""

    __slots__ = ("retries", "worker_crashes", "worker_hangs",
                 "engine_errors", "failed_jobs")

    def __init__(self) -> None:
        self.retries = 0
        self.worker_crashes = 0
        self.worker_hangs = 0
        self.engine_errors = 0
        self.failed_jobs = 0

    def snapshot(self) -> ResilienceStats:
        return ResilienceStats(
            retries=self.retries, worker_crashes=self.worker_crashes,
            worker_hangs=self.worker_hangs,
            engine_errors=self.engine_errors,
            failed_jobs=self.failed_jobs)


@dataclass(frozen=True)
class _Failure:
    """What felled a unit — carried to records and error messages."""

    error_type: str
    message: str
    traceback: str = ""

    @classmethod
    def of(cls, exc: BaseException) -> "_Failure":
        text = "".join(traceback_module.format_exception(
            type(exc), exc, exc.__traceback__)).strip()
        return cls(error_type=type(exc).__name__, message=str(exc),
                   traceback=text)


def _check_on_error(on_error: str) -> str:
    if on_error not in ("raise", "partial"):
        raise SpecError(f"on_error must be 'raise' or 'partial', "
                        f"got {on_error!r}")
    return on_error


def _split_unit(indices: Sequence[int]) -> list[list[int]]:
    """Shard → halves → single jobs: the re-dispatch granularity ladder.

    Halving (rather than jumping straight to singles) re-isolates a
    poisoned job in O(log n) failed dispatches while keeping surviving
    neighbours fused — the collateral attempts a poisoned shard-mate
    costs them stay bounded by the ladder depth.
    """
    indices = list(indices)
    if len(indices) <= 1:
        return [indices]
    middle = (len(indices) + 1) // 2
    return [indices[:middle], indices[middle:]]


def supervise_fleet(spec, *, workers: int | None = None,
                    shard_mode: str = "interleave",
                    policy: RetryPolicy | None = None,
                    on_error: str = "raise",
                    injector: FaultInjector | None = None) -> Iterator:
    """Run a fleet across supervised worker processes, streaming records
    in job order.

    The execution engine behind the resilient
    :class:`~repro.api.executors.ProcessExecutor`: every unit runs in
    its own single-worker pool (exact failure attribution), deadline
    expiry kills the pool (hang detection), failed units re-enter the
    queue at finer granularity after the policy's backoff, and a job
    whose budget is exhausted either fails the run
    (``on_error="raise"``, bounded cleanup) or streams a
    :class:`~repro.api.records.FailedAssayRecord` in its slot
    (``"partial"``).  Successful records are bit-identical to the plain
    backends' — retries rebuild jobs from canonical payloads with fresh
    seeded RNGs, so attempt count can never leak into results.
    """
    from repro.api.executors import _record, shard_indices
    from repro.api.jobs import JobKey
    from repro.api.specs import SCHEMA_VERSION

    policy = policy if policy is not None else RetryPolicy(max_attempts=1)
    on_error = _check_on_error(on_error)
    assays = spec.assays
    n_jobs = len(assays)
    payloads = [assay.to_dict() for assay in assays]
    names = [assay.name if assay.name else f"job{i}"
             for i, assay in enumerate(assays)]
    n_workers = workers if workers is not None else (os.cpu_count() or 1)
    n_workers = max(1, min(n_workers, n_jobs))
    hang_s = (3600.0 if policy.timeout_s is None
              else max(4.0 * policy.timeout_s, 1.0))

    counters = _Counters()
    attempts = [0] * n_jobs
    queue: list[_Unit] = [
        _Unit(tuple(indices))
        for indices in shard_indices(n_jobs, n_workers, shard_mode)]
    active: dict = {}          # future -> (pool, unit, deadline)
    buffered: dict[int, tuple] = {}   # index -> (result, d_fused, ...)
    failed: dict[int, _Failure] = {}  # index -> what exhausted it
    failed_attempts: dict[int, int] = {}
    cum_fused = cum_groups = cum_steps = 0
    next_index = 0
    start = time.perf_counter()

    def _launch(unit: _Unit) -> None:
        unit_attempt = min(attempts[i] for i in unit.indices)
        fault = (injector.command([names[i] for i in unit.indices],
                                  unit_attempt)
                 if injector is not None else None)
        shard = [(i, payloads[i]) for i in unit.indices]
        pool = ProcessPoolExecutor(max_workers=1)
        future = pool.submit(_execute_unit, shard, fault, hang_s)
        deadline = (math.inf if policy.timeout_s is None
                    else time.monotonic() + policy.timeout_s)
        active[future] = (pool, unit, deadline)

    def _register_failure(unit: _Unit, failure: _Failure) -> None:
        now = time.monotonic()
        survivors = []
        for i in unit.indices:
            attempts[i] += 1
            if attempts[i] < policy.max_attempts:
                survivors.append(i)
                continue
            failed[i] = failure
            failed_attempts[i] = attempts[i]
            counters.failed_jobs += 1
            if on_error == "raise":
                raise ExecutionError(
                    f"fleet job {names[i]!r} failed after "
                    f"{attempts[i]} attempt(s): {failure.error_type}: "
                    f"{failure.message}")
        if survivors:
            counters.retries += len(survivors)
            delay = policy.delay_s(
                max(attempts[i] for i in survivors),
                key=names[survivors[0]])
            for part in _split_unit(survivors):
                queue.append(_Unit(tuple(part), now + delay))

    try:
        while queue or active:
            now = time.monotonic()
            if queue and len(active) < n_workers:
                waiting = []
                for unit in queue:
                    if len(active) < n_workers and unit.not_before <= now:
                        _launch(unit)
                    else:
                        waiting.append(unit)
                queue[:] = waiting
            if active:
                horizons = [deadline for _, _, deadline in active.values()]
                if queue and len(active) < n_workers:
                    horizons.extend(unit.not_before for unit in queue)
                horizon = min(horizons)
                timeout = (None if horizon == math.inf
                           else max(0.0, horizon - time.monotonic()))
                done, _ = wait(set(active), timeout=timeout,
                               return_when=FIRST_COMPLETED)
                now = time.monotonic()
                for future in done:
                    pool, unit, _ = active.pop(future)
                    try:
                        results = future.result()
                    except BrokenProcessPool as exc:
                        kill_pool(pool)
                        counters.worker_crashes += 1
                        _register_failure(unit, _Failure.of(exc))
                    # repro: lint-ignore[REP002] supervision boundary:
                    # any worker-side failure is classified and fed to
                    # the retry policy, never propagated raw
                    except Exception as exc:
                        kill_pool(pool)
                        counters.engine_errors += 1
                        _register_failure(unit, _Failure.of(exc))
                    else:
                        pool.shutdown(wait=False)
                        for at, result, d_fused, d_groups, d_steps \
                                in results:
                            buffered[at] = (result, d_fused, d_groups,
                                            d_steps)
                expired = [future
                           for future, (_, _, deadline) in active.items()
                           if deadline <= now]
                for future in expired:
                    pool, unit, _ = active.pop(future)
                    kill_pool(pool)
                    counters.worker_hangs += 1
                    _register_failure(unit, _Failure(
                        error_type="ExecutionError",
                        message=(f"worker exceeded the per-dispatch "
                                 f"timeout of {policy.timeout_s} s and "
                                 f"was killed")))
            elif queue:
                # Every queued unit is backing off: sleep to the
                # earliest wake-up.
                pause = min(unit.not_before for unit in queue) \
                    - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
                continue
            while next_index < n_jobs and (next_index in buffered
                                           or next_index in failed):
                if next_index in buffered:
                    result, d_fused, d_groups, d_steps = \
                        buffered.pop(next_index)
                    cum_fused += d_fused
                    cum_groups += d_groups
                    cum_steps += d_steps
                    record = _record(
                        payloads[next_index], assays[next_index].seed,
                        names[next_index], result, cum_fused,
                        cum_groups, cum_steps, start)
                else:
                    failure = failed.pop(next_index)
                    record = FailedAssayRecord(
                        spec=payloads[next_index],
                        spec_hash=JobKey.for_payload(
                            payloads[next_index]).digest,
                        schema_version=SCHEMA_VERSION,
                        seed=assays[next_index].seed,
                        wall_time_s=time.perf_counter() - start,
                        job_name=names[next_index],
                        error_type=failure.error_type,
                        error=failure.message,
                        traceback=failure.traceback,
                        attempts=failed_attempts.pop(next_index))
                object.__setattr__(record, "resilience",
                                   counters.snapshot())
                yield record
                next_index += 1
    finally:
        # Bounded teardown on every exit — normal completion (pools are
        # already drained; this is a no-op), ExecutionError, or an
        # abandoned stream's GeneratorExit with workers mid-shard.
        for pool, _, _ in active.values():
            kill_pool(pool)
        active.clear()
    if next_index < n_jobs:  # pragma: no cover - supervisor invariant
        raise ExecutionError(
            f"supervised executor: workers completed without producing "
            f"job {next_index} — unit bookkeeping bug")


def supervise_inline(spec, *, policy: RetryPolicy | None = None,
                     on_error: str = "raise",
                     injector: FaultInjector | None = None) -> Iterator:
    """Retry/degradation semantics for the inline backend.

    Jobs run one fused scheduler pass at a time (bit-identical to the
    per-job shards of the process backend), each rebuilt from its
    canonical payload on retry so the RNG stream restarts cleanly.
    There is no worker process to crash or hang in-process, so every
    injected fault surfaces as a transient engine error, and
    ``timeout_s`` is not enforced (a hung inline solve hangs the
    caller; run under the process backend to get deadlines).
    """
    from repro.api.executors import _record
    from repro.api.jobs import JobKey
    from repro.api.specs import AssaySpec, SCHEMA_VERSION
    from repro.engine.scheduler import AssayScheduler

    policy = policy if policy is not None else RetryPolicy(max_attempts=1)
    on_error = _check_on_error(on_error)
    counters = _Counters()
    cum_fused = cum_groups = cum_steps = 0
    start = time.perf_counter()
    for index, assay in enumerate(spec.assays):
        payload = assay.to_dict()
        name = assay.name if assay.name else f"job{index}"
        attempt = 0
        while True:
            fault = (injector.command([name], attempt)
                     if injector is not None else None)
            try:
                if fault is not None:
                    raise ExecutionError(
                        "injected transient engine error")
                job = AssaySpec.from_dict(payload).build_job()
                item = next(AssayScheduler().run_iter([job]))
            # repro: lint-ignore[REP002] supervision boundary: inline
            # retry loop must classify any engine failure for backoff
            except Exception as exc:
                counters.engine_errors += 1
                attempt += 1
                if attempt < policy.max_attempts:
                    counters.retries += 1
                    delay = policy.delay_s(attempt, key=name)
                    if delay > 0.0:
                        time.sleep(delay)
                    continue
                counters.failed_jobs += 1
                if on_error == "raise":
                    raise ExecutionError(
                        f"fleet job {name!r} failed after {attempt} "
                        f"attempt(s): {type(exc).__name__}: {exc}"
                    ) from exc
                failure = _Failure.of(exc)
                record = FailedAssayRecord(
                    spec=payload,
                    spec_hash=JobKey.for_payload(payload).digest,
                    schema_version=SCHEMA_VERSION, seed=assay.seed,
                    wall_time_s=time.perf_counter() - start,
                    job_name=name, error_type=failure.error_type,
                    error=failure.message,
                    traceback=failure.traceback, attempts=attempt)
            else:
                cum_fused += item.n_fused_dwells
                cum_groups += item.n_dwell_groups
                cum_steps += item.n_solve_steps
                record = _record(payload, assay.seed, name, item.result,
                                 cum_fused, cum_groups, cum_steps, start)
            object.__setattr__(record, "resilience", counters.snapshot())
            yield record
            break
