"""``run(spec)`` / ``iter_results(spec)`` — the platform's front door.

One entry point, six dispatch paths:

==============  ==============================================  =======================
spec kind       executes through                                returns
==============  ==============================================  =======================
``assay``       :class:`~repro.engine.scheduler.AssayScheduler`
                (single-job fused batch), or
                :meth:`~repro.measurement.panel.PanelProtocol.
                run` when ``batch_electrodes`` is off            :class:`AssayRunRecord`
``fleet``       a pluggable :class:`~repro.api.executors.
                Executor` backend (inline scheduler pass or
                multi-process sharding)                          :class:`FleetRunRecord`
``sweep``       compiled to a ``fleet`` (grid of overrides
                over a base assay), then as above                :class:`FleetRunRecord`
``calibration`` :func:`~repro.analysis.calibration.
                run_calibration` over the bench chain            :class:`CalibrationRunRecord`
``platform``    :meth:`~repro.core.platform.BiosensingPlatform.
                run`                                             :class:`PlatformRunRecord`
``explore``     :func:`~repro.core.explorer.explore`             :class:`ExploreRunRecord`
==============  ==============================================  =======================

:func:`iter_results` is the streaming form of the fleet path: it yields
one :class:`AssayRunRecord` per job, in job order, as each assay
completes on the selected backend — a consumer can export or react to
job ``k`` while jobs ``k+1..N`` are still digitising, and
``run(fleet_spec)`` is exactly this stream collected.

Execution is orthogonal to description: ``backend=`` (an
:class:`~repro.api.executors.Executor`, ``"inline"`` or ``"process"``)
overrides the fleet's declarative ``execution`` block, and results are
bit-identical across backends.  ``store=`` (a
:class:`~repro.api.store.RunStore` or its root path) memoises at two
granularities:

- **whole runs** by spec hash — a repeated ``run(spec, store=store)``
  returns the stored record (``cached=True``) without touching the
  engine;
- **individual assay jobs** by :class:`~repro.api.jobs.JobKey` — on a
  whole-run miss, a fleet/sweep is planned job by job
  (:class:`~repro.api.jobs.JobPlan`): warm jobs rehydrate live
  :class:`~repro.api.records.CachedAssayRecord` results from the
  store, only the *miss fleet* reaches the execution backend (cached
  jobs are dropped before sharding), and cached + fresh records are
  re-merged in job order — bit-identical to the uncached stream.  A
  sweep sharing 90 of 100 grid points with an earlier study simulates
  only the 10 new points; a fully warm sweep performs zero engine
  solves.

Runs that consulted a store carry a :class:`~repro.api.store.StoreStats`
delta (job hits/misses/evictions plus the store footprint) in their
provenance under ``"store"``.

Execution is also *supervised* on request: ``retry=`` (a
:class:`~repro.api.resilience.RetryPolicy`), ``on_error=`` (``"raise"``
or ``"partial"``) and ``faults=`` (a deterministic
:class:`~repro.api.resilience.FaultInjector`, normally driven by the
``REPRO_FAULTS`` environment variable) route fleet/sweep/assay runs
through the resilience layer: crashed, hung or failing shards are
re-dispatched at finer granularity under the retry budget, and under
``on_error="partial"`` exhausted jobs degrade to
:class:`~repro.api.records.FailedAssayRecord` entries instead of
aborting the fleet.  Failed records are never persisted to a store —
a later warm run re-executes exactly the jobs that failed.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping

import numpy as np

from repro.api.records import (
    AssayRunRecord,
    CalibrationRunRecord,
    EngineStats,
    ExploreRunRecord,
    FleetRunRecord,
    PlatformRunRecord,
    RunRecord,
)
from repro.api.specs import (
    SCHEMA_VERSION,
    AssaySpec,
    CalibrationSpec,
    ExploreSpec,
    FleetSpec,
    PlatformSpec,
    RunnableSpec,
    SweepSpec,
    hash_payload,
    spec_from_dict,
)
from repro.errors import ProtocolError, SpecError

__all__ = ["run", "iter_results"]


def _coerce(spec):
    if isinstance(spec, Mapping):
        return spec_from_dict(spec)
    return spec


def _coerce_store(store):
    from repro.api.store import RunStore

    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


def _apply_screening(spec, screening):
    """Re-target a spec at the screening (or full-fidelity) profile.

    ``None`` leaves the spec as written — the only way a screening run
    happens is an explicit opt-in, either here or in the spec file
    itself.  The flag lands in the canonical payload before any store
    lookup, so screening runs and their full-fidelity twins never share
    a spec hash or a :class:`~repro.api.jobs.JobKey`.
    """
    if screening is None:
        return spec
    import dataclasses

    flag = bool(screening)
    if isinstance(spec, AssaySpec):
        return dataclasses.replace(spec, screening=flag)
    if isinstance(spec, FleetSpec):
        return dataclasses.replace(spec, assays=tuple(
            dataclasses.replace(assay, screening=flag)
            for assay in spec.assays))
    if isinstance(spec, SweepSpec):
        return dataclasses.replace(spec, screening=flag)
    raise SpecError(f"screening applies to assay/fleet/sweep specs, "
                    f"not {type(spec).__name__}")


def _has_failures(record) -> bool:
    """Whether a record (or any of a fleet's members) degraded."""
    if isinstance(record, FleetRunRecord):
        return any(r.failed for r in record.records)
    return bool(getattr(record, "failed", False))


def run(spec, backend=None, store=None, screening=None,
        retry=None, on_error=None, faults=None) -> RunRecord:
    """Execute any runnable spec (dataclass or payload dict).

    ``backend`` selects the fleet execution backend (fleet/sweep/assay
    kinds; see :func:`~repro.api.executors.resolve_executor`);
    ``store`` memoises — whole runs by spec hash, and fleet/sweep
    *jobs* by :class:`~repro.api.jobs.JobKey`, so a partially warm
    study simulates only its missing grid points.  The returned record
    carries the run's :class:`~repro.api.store.StoreStats` delta in its
    provenance.  ``screening=True`` opts an assay/fleet/sweep into the
    coarse-grid screening profile (``False`` forces full fidelity;
    ``None`` — the default — runs the spec as written); the flag joins
    the spec payload before hashing, so screening results are stored
    and recalled under their own content addresses.

    ``retry`` (a :class:`~repro.api.resilience.RetryPolicy`),
    ``on_error`` (``"raise"`` | ``"partial"``) and ``faults`` (a
    :class:`~repro.api.resilience.FaultInjector`) opt the run into
    supervised execution; ``None`` defers to the spec's ``execution``
    block.  A fleet containing :class:`FailedAssayRecord` entries is
    never persisted as a whole-run store record, and failed jobs are
    never persisted at job granularity — a later warm run re-executes
    exactly the jobs that failed.
    """
    spec = _apply_screening(_coerce(spec), screening)
    if not isinstance(spec, RunnableSpec):
        raise SpecError(f"not a runnable spec: {type(spec).__name__}")
    store = _coerce_store(store)
    supervised = (retry is not None or on_error is not None
                  or faults is not None)
    if store is None:
        return _dispatch(spec, backend, None, retry, on_error, faults)
    from repro.api.jobs import JobKey
    from repro.api.store import StoreStats

    before = store.stats()
    if isinstance(spec, AssaySpec):
        # A standalone assay *is* a job: its per-job record (samples
        # included) may have been warmed by an earlier fleet or sweep.
        # With an explicit backend (or supervision) the one-job fleet's
        # JobPlan performs the same lookup, so don't double-count it
        # here.
        record = (store.get_job(JobKey.for_assay(spec))
                  if backend is None and not supervised else None)
    else:
        # The spec is already canonical (a parsed dataclass), so its
        # hash needs one to_dict, not a serialise/re-parse round trip.
        record = store.get(hash_payload(spec.to_dict()))
    if record is None:
        record = _dispatch(spec, backend, store, retry, on_error, faults)
        if _has_failures(record):
            # A degraded run is not a reusable result: persisting it
            # would turn a transient fault into a permanently cached
            # failure.  Per-job successes were already persisted as
            # they streamed, so a warm retry re-runs only the failures.
            pass
        elif isinstance(record, AssayRunRecord):
            # With an explicit backend the one-job fleet's store path
            # already persisted the record as it streamed.
            if backend is None and not supervised:
                store.put_job(record)
        else:
            store.put(record)
    after = store.stats()
    # Stamp the run's store delta (job hits/misses/evictions) plus the
    # store's resulting footprint; records are frozen, so this rides as
    # the documented class-attribute override on RunRecord.
    object.__setattr__(record, "store_stats", StoreStats(
        hits=after.hits - before.hits,
        misses=after.misses - before.misses,
        evictions=after.evictions - before.evictions,
        records=after.records, bytes=after.bytes,
        quarantined=after.quarantined - before.quarantined,
        lock_waits=after.lock_waits - before.lock_waits))
    return record


def _dispatch(spec, backend, store, retry=None, on_error=None,
              faults=None) -> RunRecord:
    supervised = (retry is not None or on_error is not None
                  or faults is not None)
    if isinstance(spec, AssaySpec):
        if backend is not None or supervised:
            # A one-job fleet through the requested backend; records
            # are backend-independent, so this is the same assay.
            fleet = FleetSpec(name=spec.name, assays=(spec,))
            return _run_fleet(fleet, backend, store=store, retry=retry,
                              on_error=on_error, faults=faults).records[0]
        return _run_assay(spec)
    if isinstance(spec, FleetSpec):
        return _run_fleet(spec, backend, store=store, retry=retry,
                          on_error=on_error, faults=faults)
    if isinstance(spec, SweepSpec):
        return _run_sweep(spec, backend, store, retry=retry,
                          on_error=on_error, faults=faults)
    if backend is not None or supervised:
        raise SpecError(f"execution backends apply to assay/fleet/sweep "
                        f"specs, not {type(spec).__name__}")
    if isinstance(spec, CalibrationSpec):
        return _run_calibration(spec)
    if isinstance(spec, PlatformSpec):
        return _run_platform(spec)
    return _run_explore(spec)


def iter_results(spec, backend=None, store=None, screening=None,
                 retry=None, on_error=None,
                 faults=None) -> Iterator[AssayRunRecord]:
    """Stream a fleet: one per-job record as each assay completes.

    Job order, results, and provenance match ``run(fleet_spec)`` exactly
    on every backend (``backend=None`` defers to the spec's
    ``execution`` block); each yielded record carries its *own* assay
    spec payload and hash, its job's seed, and — cumulative since the
    stream started, like ``wall_time_s`` — the engine fusion statistics
    of the backend at the moment it completed.  Sweep specs are
    compiled to their fleet first; a bare assay streams as a one-job
    fleet.  Streaming granularity depends on the backend: inline yields
    as each job's dwells drain, while the process backend yields a
    shard at a time (in job order either way).  The stream may be
    abandoned early (``close()`` or a partial iteration): backends
    release their scheduler state — the process backend cancels shards
    not yet running — and a fresh call replays from the spec
    bit-identically.

    ``store`` enables job-level memoisation: warm jobs are yielded as
    rehydrated :class:`~repro.api.records.CachedAssayRecord` objects
    (live, bit-identical results; ``cached=True``), only the misses
    reach the backend — dropped before sharding — and every fresh
    record is persisted as it streams.  Cached records keep their
    *original* run's wall time and engine statistics; fresh records'
    cumulative statistics cover the miss fleet only.

    ``screening`` opts the whole stream into (``True``) or out of
    (``False``) the coarse-grid screening profile, exactly as on
    :func:`run`; ``None`` runs the spec as written.  ``retry`` /
    ``on_error`` / ``faults`` opt the stream into supervised execution
    (see :func:`run`); under ``on_error="partial"`` exhausted jobs
    stream as :class:`~repro.api.records.FailedAssayRecord` entries in
    their job-order slots.
    """
    from repro.api.executors import resolve_executor

    spec = _apply_screening(_coerce(spec), screening)
    if isinstance(spec, AssaySpec):
        spec = FleetSpec(name=spec.name, assays=(spec,))
    sweep = spec if isinstance(spec, SweepSpec) else None
    if sweep is not None:
        spec = sweep.compile()
    if not isinstance(spec, FleetSpec):
        raise SpecError(f"iter_results needs a fleet, sweep or assay "
                        f"spec, got {type(spec).__name__}")
    store = _coerce_store(store)
    if store is None:
        executor = resolve_executor(backend, spec.execution, retry=retry,
                                    on_error=on_error, faults=faults)
        _offer_prefetch(executor, sweep)
        yield from executor.run_fleet(spec)
    else:
        yield from _iter_fleet_store(spec, backend, store, retry=retry,
                                     on_error=on_error, faults=faults,
                                     sweep=sweep)


def _offer_prefetch(executor, sweep) -> None:
    """Hand a prefetch-capable backend the sweep its fleet compiled
    from — the grid is what speculative neighbour extrapolation needs,
    and it is gone by the time the executor sees the fleet.  Duck-typed
    so only backends that opted in (the distributed executor) react."""
    if sweep is None:
        return
    publish = getattr(executor, "publish_prefetch", None)
    if publish is not None:
        publish(sweep)


def _iter_fleet_store(spec: FleetSpec, backend, store, retry=None,
                      on_error=None, faults=None, sweep=None
                      ) -> Iterator[AssayRunRecord]:
    """Merge warm store records and fresh backend records in job order.

    The job-level pipeline: plan (key every job, pull warm records),
    execute the miss fleet on the selected backend (cached jobs never
    reach the scheduler or the process shards), persist each fresh
    per-job record as it completes, and yield records in the original
    fleet job order — bit-identical to the uncached stream.
    """
    from repro.api.executors import resolve_executor
    from repro.api.jobs import JobPlan

    plan = JobPlan.plan(spec, store)
    miss = plan.miss_fleet()
    if miss is None:
        fresh = iter(())
    else:
        executor = resolve_executor(backend, spec.execution, retry=retry,
                                    on_error=on_error, faults=faults)
        _offer_prefetch(executor, sweep)
        fresh = executor.run_fleet(miss)
    prev_engine = None
    prev_wall = 0.0
    try:
        with store.batched():
            for index in range(len(spec.assays)):
                record = plan.cached.get(index)
                if record is None:
                    record = next(fresh)
                    if record.failed:
                        # A FailedAssayRecord is not a result; leaving
                        # it out of the store keeps its job a miss, so
                        # a later warm run re-executes exactly this job.
                        yield record
                        continue
                    store.put_job(_per_job_snapshot(record, prev_engine,
                                                    prev_wall))
                    prev_engine = record.engine
                    prev_wall = record.wall_time_s
                yield record
    finally:
        close = getattr(fresh, "close", None)
        if close is not None:
            close()


def _per_job_snapshot(record: AssayRunRecord, prev_engine, prev_wall: float
                      ) -> AssayRunRecord:
    """The copy of a streamed record that is persisted per job.

    Streamed records carry stream-*cumulative* engine statistics and
    wall time (documented on :func:`iter_results`); a per-job store
    record must describe only its own job, so the cumulative values are
    converted to deltas against the previous fresh record before
    persisting.  Attribution follows the stream: a fused dwell group is
    charged to the first job that triggered it (later members of the
    group added no solves of their own), and the deltas of a fleet's
    per-job records always sum to its live totals.
    """
    import dataclasses

    engine = record.engine
    if engine is not None and prev_engine is not None:
        engine = EngineStats(
            n_fused_dwells=(engine.n_fused_dwells
                            - prev_engine.n_fused_dwells),
            n_dwell_groups=(engine.n_dwell_groups
                            - prev_engine.n_dwell_groups),
            n_solve_steps=(engine.n_solve_steps
                           - prev_engine.n_solve_steps))
    return dataclasses.replace(
        record, engine=engine,
        wall_time_s=record.wall_time_s - prev_wall)


def _run_assay(spec: AssaySpec) -> AssayRunRecord:
    from repro.engine.scheduler import AssayScheduler

    payload = spec.to_dict()
    start = time.perf_counter()
    job = spec.build_job()
    if spec.protocol.batch_electrodes:
        # A single-job fleet: same fused solve as PanelProtocol.run's
        # batched path (pinned bit-identical), plus engine statistics.
        item = next(AssayScheduler().run_iter([job]))
        result = item.result
        engine = EngineStats(n_fused_dwells=item.n_fused_dwells,
                             n_dwell_groups=item.n_dwell_groups,
                             n_solve_steps=item.n_solve_steps)
    else:
        result = job.protocol.run(job.cell, job.chain, rng=job.rng)
        engine = None
    return AssayRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        job_name=spec.name, result=result, engine=engine)


def _run_fleet(spec: FleetSpec, backend=None,
               payload: dict | None = None,
               store=None, retry=None, on_error=None,
               faults=None, sweep=None) -> FleetRunRecord:
    """Collect a fleet stream; ``payload`` lets sweeps stamp their own
    spec (the record's provenance names what the user asked for, not
    the compiled expansion)."""
    from repro.api.executors import resolve_executor

    payload = payload if payload is not None else spec.to_dict()
    start = time.perf_counter()
    if store is None:
        executor = resolve_executor(backend, spec.execution, retry=retry,
                                    on_error=on_error, faults=faults)
        _offer_prefetch(executor, sweep)
        records = tuple(executor.run_fleet(spec))
    else:
        records = tuple(_iter_fleet_store(spec, backend, store,
                                          retry=retry, on_error=on_error,
                                          faults=faults, sweep=sweep))
    # FleetSpec guarantees at least one assay, so records is non-empty
    # and the last *fresh* record's cumulative stats are the fleet's
    # live totals — degraded FailedAssayRecord slots carry no engine,
    # and cached records (store warm-hits, whether found by the
    # submitter or short-circuited inside a distributed worker) carry
    # their original run's, so both are skipped over.
    engine = _live_engine_totals(records)
    fleet_record = FleetRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        records=records, engine=engine,
        seeds=tuple(assay.seed for assay in spec.assays))
    # Supervised runs stamp cumulative retry/fault counters on each
    # streamed record; surface the final totals on the fleet record so
    # whole-run provenance carries them.
    for record in reversed(records):
        stats = getattr(record, "resilience", None)
        if stats is not None:
            object.__setattr__(fleet_record, "resilience", stats)
            break
    return fleet_record


def _live_engine_totals(records) -> EngineStats:
    """The engine work *this* run actually performed.

    Cached records carry their original runs' statistics; the fleet
    totals must describe the live pass, so they come from the last
    fresh record (cumulative over the miss fleet) — and are all zero
    for a fully warm run, which is exactly the observable the
    zero-engine-solves acceptance bar pins.
    """
    for record in reversed(records):
        if not record.cached and record.engine is not None:
            return record.engine
    return EngineStats(n_fused_dwells=0, n_dwell_groups=0, n_solve_steps=0)


def _run_sweep(spec: SweepSpec, backend=None, store=None, retry=None,
               on_error=None, faults=None) -> FleetRunRecord:
    return _run_fleet(spec.compile(), backend, payload=spec.to_dict(),
                      store=store, retry=retry, on_error=on_error,
                      faults=faults, sweep=spec)


def _run_calibration(spec: CalibrationSpec) -> CalibrationRunRecord:
    from repro.analysis import run_calibration
    from repro.data import bench_chain, performance_record, reference_cell
    from repro.data.catalog import table1_working_electrode

    payload = spec.to_dict()
    start = time.perf_counter()
    try:
        record = performance_record(spec.target)
    except KeyError as exc:
        raise SpecError(f"calibration spec: {exc.args[0]}") from exc
    if record.method != "chronoamperometry":
        raise ProtocolError(
            f"{spec.target} is CV-detected; use the T3 bench for "
            f"peak-height calibration")
    cell = reference_cell(spec.target)
    chain = bench_chain(seed=spec.seed)
    we = cell.working_electrodes[0]
    e_applied = table1_working_electrode(
        spec.target).effective_h2o2_wave().potential_for_efficiency(0.95)

    def signal_at(concentration: float) -> tuple[float, float]:
        cell.chamber.set_bulk(spec.target, concentration)
        true = cell.measured_current(we.name, e_applied)
        return chain.measure_constant(true, duration=5.0, we=we)

    lo, hi = record.linear_range
    ladder = list(np.linspace(lo, hi * 1.5, spec.points))
    curve = run_calibration(signal_at, ladder)
    return CalibrationRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        target=spec.target, curve=curve,
        e_applied=float(e_applied), we_area=float(we.area))


def _run_platform(spec: PlatformSpec) -> PlatformRunRecord:
    from repro.core.platform import BiosensingPlatform

    payload = spec.to_dict()
    start = time.perf_counter()
    platform = BiosensingPlatform(
        spec.build_design(), ca_dwell=spec.ca_dwell,
        sample_rate=spec.sample_rate, seed=spec.seed,
        readout_class=spec.readout_class)
    if spec.concentrations is not None:
        platform.load_sample(dict(spec.concentrations))
    result = platform.run()
    return PlatformRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        result=result, summary=platform.summary())


def _run_explore(spec: ExploreSpec) -> ExploreRunRecord:
    from repro.core.explorer import explore

    payload = spec.to_dict()
    start = time.perf_counter()
    result = explore(spec.build_panel())
    return ExploreRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        result=result)
