"""``run(spec)`` / ``iter_results(spec)`` — the platform's front door.

One entry point, six dispatch paths:

==============  ==============================================  =======================
spec kind       executes through                                returns
==============  ==============================================  =======================
``assay``       :class:`~repro.engine.scheduler.AssayScheduler`
                (single-job fused batch), or
                :meth:`~repro.measurement.panel.PanelProtocol.
                run` when ``batch_electrodes`` is off            :class:`AssayRunRecord`
``fleet``       a pluggable :class:`~repro.api.executors.
                Executor` backend (inline scheduler pass or
                multi-process sharding)                          :class:`FleetRunRecord`
``sweep``       compiled to a ``fleet`` (grid of overrides
                over a base assay), then as above                :class:`FleetRunRecord`
``calibration`` :func:`~repro.analysis.calibration.
                run_calibration` over the bench chain            :class:`CalibrationRunRecord`
``platform``    :meth:`~repro.core.platform.BiosensingPlatform.
                run`                                             :class:`PlatformRunRecord`
``explore``     :func:`~repro.core.explorer.explore`             :class:`ExploreRunRecord`
==============  ==============================================  =======================

:func:`iter_results` is the streaming form of the fleet path: it yields
one :class:`AssayRunRecord` per job, in job order, as each assay
completes on the selected backend — a consumer can export or react to
job ``k`` while jobs ``k+1..N`` are still digitising, and
``run(fleet_spec)`` is exactly this stream collected.

Execution is orthogonal to description: ``backend=`` (an
:class:`~repro.api.executors.Executor`, ``"inline"`` or ``"process"``)
overrides the fleet's declarative ``execution`` block, and results are
bit-identical across backends.  ``store=`` (a
:class:`~repro.api.store.RunStore` or its root path) memoises whole
runs by spec hash: a repeated ``run(spec, store=store)`` returns the
stored record — marked ``cached=True`` — without touching the engine.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping

import numpy as np

from repro.api.records import (
    AssayRunRecord,
    CalibrationRunRecord,
    EngineStats,
    ExploreRunRecord,
    FleetRunRecord,
    PlatformRunRecord,
    RunRecord,
)
from repro.api.specs import (
    SCHEMA_VERSION,
    AssaySpec,
    CalibrationSpec,
    ExploreSpec,
    FleetSpec,
    PlatformSpec,
    RunnableSpec,
    SweepSpec,
    hash_payload,
    spec_from_dict,
)
from repro.errors import ProtocolError, SpecError

__all__ = ["run", "iter_results"]


def _coerce(spec):
    if isinstance(spec, Mapping):
        return spec_from_dict(spec)
    return spec


def _coerce_store(store):
    from repro.api.store import RunStore

    if store is None or isinstance(store, RunStore):
        return store
    return RunStore(store)


def run(spec, backend=None, store=None) -> RunRecord:
    """Execute any runnable spec (dataclass or payload dict).

    ``backend`` selects the fleet execution backend (fleet/sweep/assay
    kinds; see :func:`~repro.api.executors.resolve_executor`);
    ``store`` short-circuits to a cached record when this exact spec
    has run before, and persists the fresh record otherwise.
    """
    spec = _coerce(spec)
    if not isinstance(spec, RunnableSpec):
        raise SpecError(f"not a runnable spec: {type(spec).__name__}")
    store = _coerce_store(store)
    if store is not None:
        # The spec is already canonical (a parsed dataclass), so its
        # hash needs one to_dict, not a serialise/re-parse round trip.
        hit = store.get(hash_payload(spec.to_dict()))
        if hit is not None:
            return hit
    record = _dispatch(spec, backend)
    if store is not None:
        store.put(record)
    return record


def _dispatch(spec, backend) -> RunRecord:
    if isinstance(spec, AssaySpec):
        if backend is not None:
            # A one-job fleet through the requested backend; records
            # are backend-independent, so this is the same assay.
            fleet = FleetSpec(name=spec.name, assays=(spec,))
            return _run_fleet(fleet, backend).records[0]
        return _run_assay(spec)
    if isinstance(spec, FleetSpec):
        return _run_fleet(spec, backend)
    if isinstance(spec, SweepSpec):
        return _run_sweep(spec, backend)
    if backend is not None:
        raise SpecError(f"execution backends apply to assay/fleet/sweep "
                        f"specs, not {type(spec).__name__}")
    if isinstance(spec, CalibrationSpec):
        return _run_calibration(spec)
    if isinstance(spec, PlatformSpec):
        return _run_platform(spec)
    return _run_explore(spec)


def iter_results(spec, backend=None) -> Iterator[AssayRunRecord]:
    """Stream a fleet: one per-job record as each assay completes.

    Job order, results, and provenance match ``run(fleet_spec)`` exactly
    on every backend (``backend=None`` defers to the spec's
    ``execution`` block); each yielded record carries its *own* assay
    spec payload and hash, its job's seed, and — cumulative since the
    stream started, like ``wall_time_s`` — the engine fusion statistics
    of the backend at the moment it completed.  Sweep specs are
    compiled to their fleet first; a bare assay streams as a one-job
    fleet.  Streaming granularity depends on the backend: inline yields
    as each job's dwells drain, while the process backend yields a
    shard at a time (in job order either way).  The stream may be
    abandoned early (``close()`` or a partial iteration): backends
    release their scheduler state — the process backend cancels shards
    not yet running — and a fresh call replays from the spec
    bit-identically.
    """
    from repro.api.executors import resolve_executor

    spec = _coerce(spec)
    if isinstance(spec, AssaySpec):
        spec = FleetSpec(name=spec.name, assays=(spec,))
    if isinstance(spec, SweepSpec):
        spec = spec.compile()
    if not isinstance(spec, FleetSpec):
        raise SpecError(f"iter_results needs a fleet, sweep or assay "
                        f"spec, got {type(spec).__name__}")
    executor = resolve_executor(backend, spec.execution)
    yield from executor.run_fleet(spec)


def _run_assay(spec: AssaySpec) -> AssayRunRecord:
    from repro.engine.scheduler import AssayScheduler

    payload = spec.to_dict()
    start = time.perf_counter()
    job = spec.build_job()
    if spec.protocol.batch_electrodes:
        # A single-job fleet: same fused solve as PanelProtocol.run's
        # batched path (pinned bit-identical), plus engine statistics.
        item = next(AssayScheduler().run_iter([job]))
        result = item.result
        engine = EngineStats(n_fused_dwells=item.n_fused_dwells,
                             n_dwell_groups=item.n_dwell_groups)
    else:
        result = job.protocol.run(job.cell, job.chain, rng=job.rng)
        engine = None
    return AssayRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        job_name=spec.name, result=result, engine=engine)


def _run_fleet(spec: FleetSpec, backend=None,
               payload: dict | None = None) -> FleetRunRecord:
    """Collect a fleet stream; ``payload`` lets sweeps stamp their own
    spec (the record's provenance names what the user asked for, not
    the compiled expansion)."""
    from repro.api.executors import resolve_executor

    payload = payload if payload is not None else spec.to_dict()
    start = time.perf_counter()
    executor = resolve_executor(backend, spec.execution)
    records = tuple(executor.run_fleet(spec))
    # FleetSpec guarantees at least one assay, so records is non-empty
    # and the last record's cumulative stats are the fleet totals.
    engine = records[-1].engine
    return FleetRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        records=records, engine=engine,
        seeds=tuple(assay.seed for assay in spec.assays))


def _run_sweep(spec: SweepSpec, backend=None) -> FleetRunRecord:
    return _run_fleet(spec.compile(), backend, payload=spec.to_dict())


def _run_calibration(spec: CalibrationSpec) -> CalibrationRunRecord:
    from repro.analysis import run_calibration
    from repro.data import bench_chain, performance_record, reference_cell
    from repro.data.catalog import table1_working_electrode

    payload = spec.to_dict()
    start = time.perf_counter()
    try:
        record = performance_record(spec.target)
    except KeyError as exc:
        raise SpecError(f"calibration spec: {exc.args[0]}") from exc
    if record.method != "chronoamperometry":
        raise ProtocolError(
            f"{spec.target} is CV-detected; use the T3 bench for "
            f"peak-height calibration")
    cell = reference_cell(spec.target)
    chain = bench_chain(seed=spec.seed)
    we = cell.working_electrodes[0]
    e_applied = table1_working_electrode(
        spec.target).effective_h2o2_wave().potential_for_efficiency(0.95)

    def signal_at(concentration: float) -> tuple[float, float]:
        cell.chamber.set_bulk(spec.target, concentration)
        true = cell.measured_current(we.name, e_applied)
        return chain.measure_constant(true, duration=5.0, we=we)

    lo, hi = record.linear_range
    ladder = list(np.linspace(lo, hi * 1.5, spec.points))
    curve = run_calibration(signal_at, ladder)
    return CalibrationRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        target=spec.target, curve=curve,
        e_applied=float(e_applied), we_area=float(we.area))


def _run_platform(spec: PlatformSpec) -> PlatformRunRecord:
    from repro.core.platform import BiosensingPlatform

    payload = spec.to_dict()
    start = time.perf_counter()
    platform = BiosensingPlatform(
        spec.build_design(), ca_dwell=spec.ca_dwell,
        sample_rate=spec.sample_rate, seed=spec.seed,
        readout_class=spec.readout_class)
    if spec.concentrations is not None:
        platform.load_sample(dict(spec.concentrations))
    result = platform.run()
    return PlatformRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        result=result, summary=platform.summary())


def _run_explore(spec: ExploreSpec) -> ExploreRunRecord:
    from repro.core.explorer import explore

    payload = spec.to_dict()
    start = time.perf_counter()
    result = explore(spec.build_panel())
    return ExploreRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        result=result)
