"""``run(spec)`` / ``iter_results(spec)`` — the platform's front door.

One entry point, five dispatch paths:

==============  ==============================================  =======================
spec kind       executes through                                returns
==============  ==============================================  =======================
``assay``       :class:`~repro.engine.scheduler.AssayScheduler`
                (single-job fused batch), or
                :meth:`~repro.measurement.panel.PanelProtocol.
                run` when ``batch_electrodes`` is off            :class:`AssayRunRecord`
``fleet``       :meth:`~repro.engine.scheduler.AssayScheduler.
                run_iter` (streamed, then collected)             :class:`FleetRunRecord`
``calibration`` :func:`~repro.analysis.calibration.
                run_calibration` over the bench chain            :class:`CalibrationRunRecord`
``platform``    :meth:`~repro.core.platform.BiosensingPlatform.
                run`                                             :class:`PlatformRunRecord`
``explore``     :func:`~repro.core.explorer.explore`             :class:`ExploreRunRecord`
==============  ==============================================  =======================

:func:`iter_results` is the streaming form of the fleet path: it yields
one :class:`AssayRunRecord` per job, in job order, as each assay's
dwells drain from the fused engine batches — a consumer can export or
react to job ``k`` while jobs ``k+1..N`` are still digitising, and
``run(fleet_spec)`` is exactly this stream collected.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping

import numpy as np

from repro.api.records import (
    AssayRunRecord,
    CalibrationRunRecord,
    EngineStats,
    ExploreRunRecord,
    FleetRunRecord,
    PlatformRunRecord,
    RunRecord,
)
from repro.api.specs import (
    SCHEMA_VERSION,
    AssaySpec,
    CalibrationSpec,
    ExploreSpec,
    FleetSpec,
    PlatformSpec,
    hash_payload,
    spec_from_dict,
)
from repro.errors import ProtocolError, SpecError

__all__ = ["run", "iter_results"]


def _coerce(spec):
    if isinstance(spec, Mapping):
        return spec_from_dict(spec)
    return spec


def run(spec) -> RunRecord:
    """Execute any runnable spec (dataclass or payload dict)."""
    spec = _coerce(spec)
    if isinstance(spec, AssaySpec):
        return _run_assay(spec)
    if isinstance(spec, FleetSpec):
        return _run_fleet(spec)
    if isinstance(spec, CalibrationSpec):
        return _run_calibration(spec)
    if isinstance(spec, PlatformSpec):
        return _run_platform(spec)
    if isinstance(spec, ExploreSpec):
        return _run_explore(spec)
    raise SpecError(f"not a runnable spec: {type(spec).__name__}")


def iter_results(spec) -> Iterator[AssayRunRecord]:
    """Stream a fleet: one per-job record as each assay completes.

    Job order, results, and engine statistics match ``run(fleet_spec)``
    exactly (both drain :meth:`~repro.engine.scheduler.AssayScheduler.
    run_iter`); each yielded record carries its *own* assay spec payload
    and hash, its job's seed, and — cumulative since the stream started,
    like ``wall_time_s`` — the fused-engine statistics at the moment it
    completed.
    """
    from repro.engine.scheduler import AssayScheduler

    spec = _coerce(spec)
    if isinstance(spec, AssaySpec):
        spec = FleetSpec(name=spec.name, assays=(spec,))
    if not isinstance(spec, FleetSpec):
        raise SpecError(f"iter_results needs a fleet (or assay) spec, "
                        f"got {type(spec).__name__}")
    jobs = spec.build_jobs()
    start = time.perf_counter()
    for item in AssayScheduler().run_iter(jobs):
        assay = spec.assays[item.index]
        payload = assay.to_dict()
        yield AssayRunRecord(
            spec=payload, spec_hash=hash_payload(payload),
            schema_version=SCHEMA_VERSION, seed=assay.seed,
            wall_time_s=time.perf_counter() - start,
            job_name=item.name, result=item.result,
            engine=EngineStats(n_fused_dwells=item.n_fused_dwells,
                               n_dwell_groups=item.n_dwell_groups))


def _run_assay(spec: AssaySpec) -> AssayRunRecord:
    from repro.engine.scheduler import AssayScheduler

    payload = spec.to_dict()
    start = time.perf_counter()
    job = spec.build_job()
    if spec.protocol.batch_electrodes:
        # A single-job fleet: same fused solve as PanelProtocol.run's
        # batched path (pinned bit-identical), plus engine statistics.
        item = next(AssayScheduler().run_iter([job]))
        result = item.result
        engine = EngineStats(n_fused_dwells=item.n_fused_dwells,
                             n_dwell_groups=item.n_dwell_groups)
    else:
        result = job.protocol.run(job.cell, job.chain, rng=job.rng)
        engine = None
    return AssayRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        job_name=spec.name, result=result, engine=engine)


def _run_fleet(spec: FleetSpec) -> FleetRunRecord:
    payload = spec.to_dict()
    start = time.perf_counter()
    records = tuple(iter_results(spec))
    # FleetSpec guarantees at least one assay, so records is non-empty
    # and the last record's cumulative stats are the fleet totals.
    engine = records[-1].engine
    return FleetRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        records=records, engine=engine)


def _run_calibration(spec: CalibrationSpec) -> CalibrationRunRecord:
    from repro.analysis import run_calibration
    from repro.data import bench_chain, performance_record, reference_cell
    from repro.data.catalog import table1_working_electrode

    payload = spec.to_dict()
    start = time.perf_counter()
    try:
        record = performance_record(spec.target)
    except KeyError as exc:
        raise SpecError(f"calibration spec: {exc.args[0]}") from exc
    if record.method != "chronoamperometry":
        raise ProtocolError(
            f"{spec.target} is CV-detected; use the T3 bench for "
            f"peak-height calibration")
    cell = reference_cell(spec.target)
    chain = bench_chain(seed=spec.seed)
    we = cell.working_electrodes[0]
    e_applied = table1_working_electrode(
        spec.target).effective_h2o2_wave().potential_for_efficiency(0.95)

    def signal_at(concentration: float) -> tuple[float, float]:
        cell.chamber.set_bulk(spec.target, concentration)
        true = cell.measured_current(we.name, e_applied)
        return chain.measure_constant(true, duration=5.0, we=we)

    lo, hi = record.linear_range
    ladder = list(np.linspace(lo, hi * 1.5, spec.points))
    curve = run_calibration(signal_at, ladder)
    return CalibrationRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        target=spec.target, curve=curve,
        e_applied=float(e_applied), we_area=float(we.area))


def _run_platform(spec: PlatformSpec) -> PlatformRunRecord:
    from repro.core.platform import BiosensingPlatform

    payload = spec.to_dict()
    start = time.perf_counter()
    platform = BiosensingPlatform(
        spec.build_design(), ca_dwell=spec.ca_dwell,
        sample_rate=spec.sample_rate, seed=spec.seed,
        readout_class=spec.readout_class)
    if spec.concentrations is not None:
        platform.load_sample(dict(spec.concentrations))
    result = platform.run()
    return PlatformRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=spec.seed,
        wall_time_s=time.perf_counter() - start,
        result=result, summary=platform.summary())


def _run_explore(spec: ExploreSpec) -> ExploreRunRecord:
    from repro.core.explorer import explore

    payload = spec.to_dict()
    start = time.perf_counter()
    result = explore(spec.build_panel())
    return ExploreRunRecord(
        spec=payload, spec_hash=hash_payload(payload),
        schema_version=SCHEMA_VERSION, seed=None,
        wall_time_s=time.perf_counter() - start,
        result=result)
