"""Content-addressed persistence of run records — run once, replay free.

A :class:`RunStore` keys every persisted :class:`~repro.api.records.
RunRecord` by its ``spec_hash`` (SHA-256 over the canonical spec
payload), so the store *is* the memoisation table of the front door:
``run(spec, store=store)`` consults it before touching the engine and
returns a :class:`~repro.api.records.StoredRunRecord` (``cached=True``)
on a hit.  Because the hash covers the complete canonical payload —
seeds, injection schedules, execution block and all — two specs collide
only when they would execute identically, and a spec edited in any
meaningful way misses cleanly.

Layout on disk (git-friendly, one JSON file per record, sharded by the
first hash byte so a million records don't share one directory)::

    <root>/
      ab/
        ab3f...e2.json     # record.to_dict(): provenance + spec + result
      c0/
        c04d...91.json

Records are persisted through :func:`repro.io.export.write_json`, which
writes atomically (temp file + ``os.replace``) — concurrent workers
racing on the same spec hash simply last-write-wins a bit-identical
payload, and a reader can never observe a truncated record.  What is
stored is the record's ``to_dict()`` summary: provenance, the canonical
spec, and the quantified results — raw sample arrays stay with live
runs (re-run without a store to regenerate them).
"""

from __future__ import annotations

import json
from collections.abc import Iterator
from pathlib import Path

from repro.api.records import RunRecord, StoredRunRecord
from repro.api.specs import spec_hash
from repro.errors import StoreError
from repro.io.export import write_json

__all__ = ["RunStore"]

_HASH_LENGTH = 64  # hex sha-256


class RunStore:
    """A directory of run records, content-addressed by spec hash."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r})"

    @staticmethod
    def _key(spec_or_hash) -> str:
        """Accept a spec (dataclass or payload dict) or a literal hash."""
        if isinstance(spec_or_hash, str):
            key = spec_or_hash.lower()
            if len(key) != _HASH_LENGTH or any(
                    c not in "0123456789abcdef" for c in key):
                raise StoreError(f"not a spec hash: {spec_or_hash!r} "
                                 f"(need {_HASH_LENGTH} hex characters)")
            return key
        return spec_hash(spec_or_hash)

    def path_for(self, spec_or_hash) -> Path:
        key = self._key(spec_or_hash)
        return self.root / key[:2] / f"{key}.json"

    def __contains__(self, spec_or_hash) -> bool:
        return self.path_for(spec_or_hash).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.hashes())

    def hashes(self) -> Iterator[str]:
        """Every stored spec hash, sorted for stable listings."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(
            path.stem for path in self.root.glob("??/*.json")
            if len(path.stem) == _HASH_LENGTH))

    def get(self, spec_or_hash) -> StoredRunRecord | None:
        """The stored record for a spec/hash, or ``None`` on a miss."""
        path = self.path_for(spec_or_hash)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read stored record {path}: "
                             f"{exc}") from exc
        except json.JSONDecodeError as exc:
            raise StoreError(f"stored record {path} is not valid JSON "
                             f"({exc}); delete it or clear the store"
                             ) from exc
        try:
            provenance = payload["provenance"]
            return StoredRunRecord(
                spec=payload["spec"],
                spec_hash=provenance["spec_hash"],
                schema_version=provenance["schema_version"],
                seed=provenance.get("seed"),
                wall_time_s=provenance["wall_time_s"],
                result=payload.get("result", {}),
                stored_provenance=dict(provenance))
        except (KeyError, TypeError) as exc:
            raise StoreError(f"stored record {path} is malformed "
                             f"({exc!r}); delete it or clear the store"
                             ) from exc

    def put(self, record: RunRecord) -> Path:
        """Persist a live record under its spec hash; returns the path.

        Cached records are already in a store and are not re-persisted
        (their summaries would round-trip unchanged anyway).
        """
        if record.cached:
            return self.path_for(record.spec_hash)
        path = self.path_for(record.spec_hash)
        path.parent.mkdir(parents=True, exist_ok=True)
        return write_json(record.to_dict(), path)

    def records(self) -> Iterator[StoredRunRecord]:
        """Every stored record, in hash order."""
        for key in self.hashes():
            record = self.get(key)
            if record is not None:
                yield record

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = 0
        for key in list(self.hashes()):
            path = self.path_for(key)
            try:
                path.unlink()
                removed += 1
            except FileNotFoundError:  # pragma: no cover - racing clear
                pass
            shard = path.parent
            if shard.is_dir() and not any(shard.iterdir()):
                shard.rmdir()
        return removed
