"""Content-addressed persistence of run records — run once, replay free.

A :class:`RunStore` keys every persisted record by its ``spec_hash``
(SHA-256 over the canonical spec payload), so the store *is* the
memoisation table of the front door.  Two granularities share one
sharded layout:

- **Whole-run records** (any spec kind): the record's ``to_dict()``
  summary — provenance, canonical spec, quantified results.  A repeated
  ``run(spec, store=store)`` returns a
  :class:`~repro.api.records.StoredRunRecord` (``cached=True``) without
  touching the engine.
- **Per-job records** (kind ``assay``; :meth:`put_job` /
  :meth:`get_job`): the same summary *plus* a ``samples`` section — the
  lossless :func:`~repro.io.export.panel_result_to_payload` payload of
  the live result.  A hit rehydrates a
  :class:`~repro.api.records.CachedAssayRecord` whose
  :class:`~repro.measurement.panel.PanelResult` is bit-identical to the
  original solve, so warm jobs drop straight back into a merged fleet
  stream (see :class:`~repro.api.jobs.JobPlan`).  Because the per-job
  key is the assay payload hash, fleet members, sweep grid points and
  standalone assay runs all share one cache entry.

Because every hash covers the complete canonical payload — seeds,
injection schedules and all — two specs collide only when they would
execute identically, and a spec edited in any meaningful way misses
cleanly.

Layout on disk (git-friendly, one JSON file per record, sharded by the
first hash byte so a million records don't share one directory)::

    <root>/
      index.json           # LRU/size index + lifetime hit counters
      ab/
        ab3f...e2.json     # record.to_dict() [+ "samples" for jobs]
      c0/
        c04d...91.json

Records are persisted through :func:`repro.io.export.write_json`, which
writes atomically (temp file + ``os.replace``) — concurrent workers
racing on the same spec hash simply last-write-wins a bit-identical
payload, and a reader can never observe a truncated record.  The
``index.json`` read-modify-write is additionally serialised across
processes by an ``os.O_EXCL`` lockfile (``<root>/index.lock``, bounded
wait, stale locks broken) with a merge-on-save that unions record
entries and max-merges the monotone counters, and across threads by a
per-store reentrant mutex — many service requests can multiplex onto
one warm store without dropping each other's LRU-clock updates.

Integrity and quarantine
========================

Every record written carries an ``integrity`` section — a SHA-256
checksum over the rest of the payload (the same canonical-JSON recipe
as spec hashing) — and every read verifies it.  A record that fails to
parse, fails its checksum, or is structurally malformed is
**quarantined**: moved aside to ``<root>/quarantine/`` (named so the
``??/`` shard glob never lists it), dropped from the index, counted in
the lifetime ``quarantined`` statistic, and reported once as a
:class:`RuntimeWarning` naming the file and the reason.  The lookup
that found it counts as a miss, so the affected job simply re-runs and
re-persists a clean record — corruption degrades to recomputation, not
to an exception five layers up.  Records from older stores without an
``integrity`` section still load (parse and structure checks only).

Eviction and statistics
=======================

``index.json`` tracks per-record byte sizes and a logical LRU clock,
plus lifetime ``hits`` / ``misses`` / ``evictions`` counters.  It is a
best-effort cache, not a source of truth: a missing or corrupt index is
rebuilt from the record files, and :meth:`gc` / :meth:`stats` reconcile
it against the directory first.  ``RunStore(root, max_count=, max_bytes=)``
enforces the limits after every write; :meth:`gc` applies them (or
one-off limits) on demand, evicting least-recently-used records first.
:meth:`stats` returns a :class:`StoreStats` snapshot — the same numbers
the CLI ``cache stats`` subcommand prints and :func:`repro.api.run`
stamps into record provenance.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.api.jobs import JobKey
from repro.api.records import (
    AssayRunRecord,
    CachedAssayRecord,
    EngineStats,
    RunRecord,
    StoredRunRecord,
)
from repro.api.resilience import FaultInjector
from repro.api.specs import hash_payload, spec_hash
from repro.errors import ReproError, StoreError
from repro.io.export import (
    panel_result_from_payload,
    panel_result_to_payload,
    write_json,
)

__all__ = ["RunStore", "StoreStats"]

_HASH_LENGTH = 64  # hex sha-256
_INDEX_VERSION = 1
_LOCK_WAIT_S = 5.0   # bounded wait for index.lock before proceeding
_LOCK_STALE_S = 30.0  # a lockfile older than this belongs to a dead writer


@dataclass(frozen=True)
class StoreStats:
    """One snapshot of a store's counters and footprint.

    ``hits``/``misses``/``evictions``/``quarantined`` are lifetime
    counters persisted in the index (or, when stamped into a record's
    provenance by :func:`repro.api.run`, the *deltas* of that one run);
    ``records`` and ``bytes`` are the store's current footprint.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    records: int = 0
    bytes: int = 0
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "records": self.records,
                "bytes": self.bytes, "quarantined": self.quarantined}


class RunStore:
    """A directory of run records, content-addressed by spec hash.

    ``max_count`` / ``max_bytes`` (optional) cap the store: after every
    write the least-recently-used records are evicted until both limits
    hold.  Limits may also be applied one-off through :meth:`gc`.

    ``faults`` (a :class:`~repro.api.resilience.FaultInjector`, default
    from the ``REPRO_FAULTS`` environment variable) arms deterministic
    ``store_corrupt`` fault rules: matched writes land on disk
    deliberately truncated, exercising the verify-on-read + quarantine
    path end to end.  Production stores simply leave it unset.
    """

    def __init__(self, root: str | Path, max_count: int | None = None,
                 max_bytes: int | None = None,
                 faults: FaultInjector | None = None) -> None:
        if max_count is not None and max_count < 0:
            raise StoreError(f"max_count must be >= 0, got {max_count}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.max_count = max_count
        self.max_bytes = max_bytes
        self.faults = faults if faults is not None else (
            FaultInjector.from_env())
        self._index: dict | None = None
        self._defer = 0          # batched() nesting depth
        self._dirty = False      # index changed while deferred
        self._gc_pending = False  # limits to enforce at batch exit
        # In-process index guard: every public read/write path holds it,
        # so threads sharing one RunStore (the service's dispatchers on
        # one warm store) cannot interleave a read-modify-write of the
        # in-memory index.  Reentrant because puts call gc which calls
        # _save_index_locked.  Cross-*process* safety is the lockfile's job —
        # see _index_lock.
        self._mutex = threading.RLock()

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r})"

    # -- keys and paths ----------------------------------------------------------

    @staticmethod
    def _key(spec_or_hash) -> str:
        """Accept a spec (dataclass or payload dict), a JobKey, or a
        literal hash."""
        if isinstance(spec_or_hash, JobKey):
            return spec_or_hash.digest
        if isinstance(spec_or_hash, str):
            key = spec_or_hash.lower()
            if len(key) != _HASH_LENGTH or any(
                    c not in "0123456789abcdef" for c in key):
                raise StoreError(f"not a spec hash: {spec_or_hash!r} "
                                 f"(need {_HASH_LENGTH} hex characters)")
            return key
        return spec_hash(spec_or_hash)

    def path_for(self, spec_or_hash) -> Path:
        key = self._key(spec_or_hash)
        return self.root / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def __contains__(self, spec_or_hash) -> bool:
        return self.path_for(spec_or_hash).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.hashes())

    def hashes(self) -> Iterator[str]:
        """Every stored spec hash, sorted for stable listings."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(
            path.stem for path in self.root.glob("??/*.json")
            if len(path.stem) == _HASH_LENGTH))

    # -- the LRU/size index ------------------------------------------------------

    @staticmethod
    def _empty_index() -> dict:
        return {"version": _INDEX_VERSION, "clock": 0,
                "hits": 0, "misses": 0, "evictions": 0,
                "quarantined": 0, "records": {}}

    def _load_index_locked(self) -> dict:
        if self._index is not None:
            return self._index
        payload = None
        try:
            payload = json.loads(self.index_path.read_text())
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            payload = None
        if (not isinstance(payload, dict)
                or payload.get("version") != _INDEX_VERSION
                or not isinstance(payload.get("records"), dict)):
            payload = self._rebuild_index()
        for counter in ("clock", "hits", "misses", "evictions",
                        "quarantined"):
            if not isinstance(payload.get(counter), int):
                payload[counter] = 0
        self._index = payload
        return payload

    def _rebuild_index(self) -> dict:
        """Re-derive the index from the record files (LRU order is lost;
        hash order stands in, which only biases the first evictions)."""
        index = self._empty_index()
        for key in self.hashes():
            path = self.path_for(key)
            try:
                size = path.stat().st_size
            except OSError:  # pragma: no cover - racing delete
                continue
            index["clock"] += 1
            index["records"][key] = {"bytes": size, "used": index["clock"],
                                     "kind": self._peek_kind(path)}
        return index

    @staticmethod
    def _peek_kind(path: Path) -> str:
        try:
            payload = json.loads(path.read_text())
            return str(payload["provenance"]["kind"])
        except (OSError, json.JSONDecodeError, KeyError, TypeError):
            return "?"

    @contextmanager
    def _index_lock(self, wait_s: float = _LOCK_WAIT_S):
        """Hold ``<root>/index.lock`` around an ``index.json``
        read-modify-write.

        The lock is an ``os.O_EXCL`` create — the one primitive that is
        atomic on every local filesystem — so two processes multiplexed
        onto one warm store serialise their index saves instead of
        last-writer-winning each other's LRU-clock updates.  The wait is
        bounded: after ``wait_s`` the caller proceeds *without* the lock
        (a RuntimeWarning notes it) because a cache index must degrade
        to best-effort, never deadlock the pipeline.  A lockfile older
        than ``_LOCK_STALE_S`` belongs to a writer that died mid-save
        and is broken on sight.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        lock = self.root / "index.lock"
        deadline = time.monotonic() + wait_s
        acquired = False
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
                acquired = True
                break
            except FileExistsError:
                try:
                    age = time.time() - lock.stat().st_mtime
                except OSError:
                    continue  # holder just released; retry immediately
                if age > _LOCK_STALE_S:
                    try:
                        lock.unlink()
                    except OSError:  # pragma: no cover - racing break
                        pass
                    continue
                if time.monotonic() >= deadline:
                    warnings.warn(
                        f"run store: could not acquire {lock} within "
                        f"{wait_s:.1f}s; saving index without the lock "
                        f"(concurrent LRU updates may be lost)",
                        RuntimeWarning, stacklevel=3)
                    break
                time.sleep(0.005)
        try:
            yield
        finally:
            if acquired:
                try:
                    lock.unlink()
                except OSError:  # pragma: no cover - racing cleanup
                    pass

    def _merge_disk_index(self, index: dict) -> dict:
        """Fold another writer's ``index.json`` into ours before saving.

        Called under :meth:`_index_lock`.  Lifetime counters and the LRU
        clock take the elementwise max (monotone, so concurrent
        increments cannot move them backwards; simultaneous increments
        may still undercount — they are statistics, not invariants).
        Record entries are unioned: another writer's keys are adopted
        only when the record file still exists, so our own evictions
        and quarantines are not resurrected.
        """
        try:
            disk = json.loads(self.index_path.read_text())
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return index
        if (not isinstance(disk, dict)
                or disk.get("version") != _INDEX_VERSION
                or not isinstance(disk.get("records"), dict)):
            return index
        for counter in ("clock", "hits", "misses", "evictions",
                        "quarantined"):
            other = disk.get(counter)
            if isinstance(other, int) and other > index[counter]:
                index[counter] = other
        ours = index["records"]
        for key, entry in disk["records"].items():
            if key in ours or not isinstance(entry, dict):
                continue
            if self.path_for(key).exists():
                ours[key] = entry
        return index

    def _save_index_locked(self) -> None:
        if self._index is None:  # pragma: no cover - defensive
            return
        if self._defer:
            self._dirty = True
            return
        self._dirty = False
        self.root.mkdir(parents=True, exist_ok=True)
        with self._index_lock():
            write_json(self._merge_disk_index(self._index),
                       self.index_path)

    @contextmanager
    def batched(self):
        """Coalesce index writes across many lookups/puts.

        Inside the context every get/put updates only the in-memory
        index; one ``index.json`` write (and, when ``max_count`` /
        ``max_bytes`` are set, one eviction pass) happens at exit
        instead of one per operation — the difference between O(N) and
        O(N^2) file I/O when a JobPlan keys an N-point sweep.  Nests
        safely; the runner wraps whole fleet merges in one batch.
        """
        self._defer += 1
        try:
            yield self
        finally:
            self._defer -= 1
            if self._defer == 0:
                with self._mutex:
                    if self._gc_pending:
                        self._gc_pending = False
                        self.gc()  # syncs and saves the index itself
                    elif self._dirty:
                        self._save_index_locked()

    def _sync_index_locked(self) -> dict:
        """Reconcile the index against the directory (records written or
        deleted by other processes), without counting hits/misses."""
        index = self._load_index_locked()
        records = index["records"]
        on_disk = {path.stem: path
                   for path in (self.root.glob("??/*.json")
                                if self.root.is_dir() else ())
                   if len(path.stem) == _HASH_LENGTH}
        for key in set(records) - set(on_disk):
            del records[key]
        for key, path in on_disk.items():
            if key not in records:
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - racing delete
                    continue
                index["clock"] += 1
                records[key] = {"bytes": size, "used": index["clock"],
                                "kind": self._peek_kind(path)}
        return index

    def _note_lookup(self, key: str | None, hit: bool) -> None:
        """Count a hit/miss; hits also refresh the record's LRU clock."""
        with self._mutex:
            self._note_lookup_locked(key, hit)

    def _note_lookup_locked(self, key: str | None, hit: bool) -> None:
        index = self._load_index_locked()
        if hit and key is not None:
            index["hits"] += 1
            index["clock"] += 1
            entry = index["records"].get(key)
            if entry is None:
                # A record the index has not seen (written by another
                # process, or a pre-index store): adopt it on access.
                path = self.path_for(key)
                try:
                    size = path.stat().st_size
                except OSError:  # pragma: no cover - racing delete
                    size = 0
                entry = {"bytes": size, "kind": self._peek_kind(path)}
                index["records"][key] = entry
            entry["used"] = index["clock"]
        else:
            index["misses"] += 1
        self._save_index_locked()

    # -- quarantine --------------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a corrupt record aside instead of serving or raising.

        The file lands in ``<root>/quarantine/`` (preserved for
        post-mortem, invisible to the ``??/`` shard glob so listings
        and index rebuilds never see it again), its index entry is
        dropped, the lifetime ``quarantined`` counter ticks, and a
        :class:`RuntimeWarning` names the file and the reason.
        """
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:  # pragma: no cover - racing delete
            pass
        shard = path.parent
        if shard.is_dir() and not any(shard.iterdir()):
            shard.rmdir()
        with self._mutex:
            index = self._load_index_locked()
            index["quarantined"] += 1
            index["records"].pop(path.stem, None)
            self._save_index_locked()
        warnings.warn(f"run store: quarantined corrupt record "
                      f"{path.name}: {reason}", RuntimeWarning,
                      stacklevel=4)

    # -- reads -------------------------------------------------------------------

    def _read_payload(self, path: Path) -> dict | None:
        """The verified JSON payload at ``path`` — ``None`` when absent
        *or* quarantined as corrupt (unparseable, non-object, or failing
        its ``integrity`` checksum); :class:`~repro.errors.StoreError`
        only for I/O failures reading an existing file."""
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read stored record {path}: "
                             f"{exc}") from exc
        except json.JSONDecodeError as exc:
            self._quarantine(path, f"not valid JSON ({exc})")
            return None
        if not isinstance(payload, dict):
            self._quarantine(path, "not a JSON object")
            return None
        integrity = payload.get("integrity")
        if integrity is not None:
            digest = (integrity.get("digest")
                      if isinstance(integrity, dict) else None)
            body = {k: v for k, v in payload.items() if k != "integrity"}
            if digest != hash_payload(body):
                self._quarantine(path, "integrity checksum mismatch")
                return None
        return payload

    @staticmethod
    def _stored_record(payload: dict, path: Path) -> StoredRunRecord:
        try:
            provenance = payload["provenance"]
            return StoredRunRecord(
                spec=payload["spec"],
                spec_hash=provenance["spec_hash"],
                schema_version=provenance["schema_version"],
                seed=provenance.get("seed"),
                wall_time_s=provenance["wall_time_s"],
                result=payload.get("result", {}),
                stored_provenance=dict(provenance))
        except (KeyError, TypeError) as exc:
            raise StoreError(f"stored record {path} is malformed "
                             f"({exc!r}); delete it or clear the store"
                             ) from exc

    def get(self, spec_or_hash) -> StoredRunRecord | None:
        """The stored record for a spec/hash, or ``None`` on a miss.

        Counts one hit or miss in the store statistics.  Corrupt
        records (bad JSON, failed checksum, malformed structure) are
        quarantined with a :class:`RuntimeWarning` and count as a miss
        — the caller simply re-runs the spec.
        """
        key = self._key(spec_or_hash)
        path = self.path_for(key)
        payload = self._read_payload(path)
        if payload is None:
            self._note_lookup(None, hit=False)
            return None
        try:
            record = self._stored_record(payload, path)
        except StoreError as exc:
            self._quarantine(path, str(exc))
            self._note_lookup(None, hit=False)
            return None
        self._note_lookup(key, hit=True)
        return record

    def get_job(self, key) -> AssayRunRecord | StoredRunRecord | None:
        """The per-job record for a :class:`~repro.api.jobs.JobKey`
        (or hash/assay spec), or ``None`` on a miss.

        Full-sample records rehydrate as live
        :class:`~repro.api.records.CachedAssayRecord` objects —
        bit-identical traces, voltammograms and readouts.  Legacy
        records persisted without samples fall back to the summary-only
        :class:`~repro.api.records.StoredRunRecord` (still a hit, but
        they cannot rejoin a live fleet stream).  Corrupt records are
        quarantined and count as a miss, so the job re-runs.
        """
        digest = self._key(key)
        path = self.path_for(digest)
        payload = self._read_payload(path)
        if payload is None:
            self._note_lookup(None, hit=False)
            return None
        samples = payload.get("samples")
        if samples is None:
            try:
                record = self._stored_record(payload, path)
            except StoreError as exc:
                self._quarantine(path, str(exc))
                self._note_lookup(None, hit=False)
                return None
            self._note_lookup(digest, hit=True)
            return record
        try:
            provenance = payload["provenance"]
            result_summary = payload.get("result", {})
            engine = result_summary.get("engine")
            record = CachedAssayRecord(
                spec=payload["spec"],
                spec_hash=provenance["spec_hash"],
                schema_version=provenance["schema_version"],
                seed=provenance.get("seed"),
                wall_time_s=provenance["wall_time_s"],
                job_name=result_summary.get(
                    "job_name", str(payload["spec"].get("name", ""))),
                result=panel_result_from_payload(samples),
                engine=(EngineStats.from_dict(engine)
                        if engine is not None else None))
        except (KeyError, TypeError, ValueError, AttributeError,
                ReproError) as exc:
            self._quarantine(path, f"malformed job record ({exc!r})")
            self._note_lookup(None, hit=False)
            return None
        self._note_lookup(digest, hit=True)
        return record

    def records(self) -> Iterator[StoredRunRecord]:
        """Every stored record's summary, in hash order.

        Corrupt records are quarantined (with a :class:`RuntimeWarning`
        naming the file) rather than listed — one bad entry must not
        make the whole store unlistable, and it must not resurface on
        the next listing either.  Records that exist but cannot be
        *read* (I/O errors) are skipped with a warning.  Listing does
        not count hits/misses.
        """
        for key in self.hashes():
            path = self.path_for(key)
            try:
                payload = self._read_payload(path)
            except StoreError as exc:
                warnings.warn(f"run store: skipping unreadable record: "
                              f"{exc}", RuntimeWarning, stacklevel=2)
                continue
            if payload is None:
                continue
            try:
                yield self._stored_record(payload, path)
            except StoreError as exc:
                self._quarantine(path, str(exc))

    # -- writes ------------------------------------------------------------------

    def _write(self, key: str, payload: dict, kind: str) -> Path:
        # Seal the payload: checksum over everything *but* the seal
        # itself, using the same canonical-JSON recipe as spec hashing,
        # so any later on-disk mutation fails verify-on-read.
        body = {k: v for k, v in payload.items() if k != "integrity"}
        payload = dict(body)
        payload["integrity"] = {"algo": "sha256",
                                "digest": hash_payload(body)}
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        write_json(payload, path)
        if self.faults is not None and self.faults.corrupts(key):
            # Deterministic fault injection: truncate the just-written
            # record mid-payload, as a crash or full disk would.
            text = path.read_text()
            path.write_text(text[: max(len(text) // 2, 1)])
        with self._mutex:
            index = self._load_index_locked()
            index["clock"] += 1
            index["records"][key] = {"bytes": path.stat().st_size,
                                     "used": index["clock"], "kind": kind}
            self._save_index_locked()
            if self.max_count is not None or self.max_bytes is not None:
                if self._defer:
                    self._gc_pending = True
                else:
                    self.gc()
        return path

    def put(self, record: RunRecord) -> Path:
        """Persist a live record's summary under its spec hash.

        Cached records are already in a store and are not re-persisted
        (their summaries would round-trip unchanged anyway).  Assay
        records carrying a live result should go through
        :meth:`put_job`, which also persists the sample arrays.
        """
        if record.cached:
            return self.path_for(record.spec_hash)
        return self._write(record.spec_hash, record.to_dict(), record.kind)

    def put_job(self, record: AssayRunRecord) -> Path:
        """Persist a per-job assay record, samples included.

        The payload is the record's ``to_dict()`` summary plus a
        ``samples`` section (:func:`~repro.io.export.
        panel_result_to_payload`), so a later :meth:`get_job` hit
        rehydrates the live result bit for bit.
        """
        if record.cached:
            return self.path_for(record.spec_hash)
        payload = record.to_dict()
        payload["samples"] = panel_result_to_payload(record.result)
        return self._write(record.spec_hash, payload, record.kind)

    # -- eviction, statistics, clearing ------------------------------------------

    def _unlink(self, key: str) -> None:
        path = self.path_for(key)
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - racing delete
            pass
        shard = path.parent
        if shard.is_dir() and not any(shard.iterdir()):
            shard.rmdir()

    def gc(self, max_count: int | None = None,
           max_bytes: int | None = None) -> tuple[int, int]:
        """Evict least-recently-used records until the limits hold.

        Limits default to the store's own ``max_count``/``max_bytes``;
        pass either explicitly for a one-off collection.  Returns
        ``(n_evicted, bytes_freed)``.  A limit of ``None`` does not
        constrain that axis; ``gc()`` with no limits anywhere is a no-op.
        """
        max_count = self.max_count if max_count is None else max_count
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        with self._mutex:
            index = self._sync_index_locked()
            records = index["records"]
            count = len(records)
            total = sum(entry["bytes"] for entry in records.values())
            evicted = 0
            freed = 0
            if max_count is not None or max_bytes is not None:
                for key, entry in sorted(records.items(),
                                         key=lambda kv: kv[1]["used"]):
                    over_count = max_count is not None and count > max_count
                    over_bytes = max_bytes is not None and total > max_bytes
                    if not over_count and not over_bytes:
                        break
                    self._unlink(key)
                    del records[key]
                    count -= 1
                    total -= entry["bytes"]
                    freed += entry["bytes"]
                    evicted += 1
            index["evictions"] += evicted
            self._save_index_locked()
        return evicted, freed

    def stats(self) -> StoreStats:
        """Lifetime counters plus the store's current footprint."""
        with self._mutex:
            index = self._sync_index_locked()
            self._save_index_locked()
            records = index["records"]
            return StoreStats(
                hits=index["hits"], misses=index["misses"],
                evictions=index["evictions"], records=len(records),
                bytes=sum(entry["bytes"] for entry in records.values()),
                quarantined=index["quarantined"])

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed.

        Lifetime hit/miss/eviction counters survive a clear (they
        describe the store's history, not its contents).
        """
        with self._mutex:
            removed = 0
            for key in list(self.hashes()):
                self._unlink(key)
                removed += 1
            if removed or self.index_path.exists():
                index = self._load_index_locked()
                index["records"] = {}
                self._save_index_locked()
            return removed
