"""Content-addressed persistence of run records — run once, replay free.

A :class:`RunStore` keys every persisted record by its ``spec_hash``
(SHA-256 over the canonical spec payload), so the store *is* the
memoisation table of the front door.  Two granularities share one
sharded layout:

- **Whole-run records** (any spec kind): the record's ``to_dict()``
  summary — provenance, canonical spec, quantified results.  A repeated
  ``run(spec, store=store)`` returns a
  :class:`~repro.api.records.StoredRunRecord` (``cached=True``) without
  touching the engine.
- **Per-job records** (kind ``assay``; :meth:`put_job` /
  :meth:`get_job`): the same summary *plus* a ``samples`` section — the
  lossless :func:`~repro.io.export.panel_result_to_payload` payload of
  the live result.  A hit rehydrates a
  :class:`~repro.api.records.CachedAssayRecord` whose
  :class:`~repro.measurement.panel.PanelResult` is bit-identical to the
  original solve, so warm jobs drop straight back into a merged fleet
  stream (see :class:`~repro.api.jobs.JobPlan`).  Because the per-job
  key is the assay payload hash, fleet members, sweep grid points and
  standalone assay runs all share one cache entry.

Because every hash covers the complete canonical payload — seeds,
injection schedules and all — two specs collide only when they would
execute identically, and a spec edited in any meaningful way misses
cleanly.

Storage drivers
===============

The *cache semantics* (integrity seal, quarantine policy, LRU
accounting, lock policy, statistics) live in :class:`RunStore`; the
*persistence substrate* lives behind a :class:`StorageDriver` — a small
read/write/delete/list surface over opaque text blobs plus an index
blob and an advisory index lock.  :class:`LocalDirDriver` is the
reference implementation (the sharded local directory below); an
object-store driver can drop in by implementing the same eleven
methods, and every semantic above — including cluster-wide warm hits
for :mod:`repro.api.distributed` workers sharing one root — carries
over unchanged.

Layout on disk (git-friendly, one JSON file per record, sharded by the
first hash byte so a million records don't share one directory)::

    <root>/
      index.json           # LRU/size index + lifetime hit counters
      ab/
        ab3f...e2.json     # record.to_dict() [+ "samples" for jobs]
      c0/
        c04d...91.json

Records are persisted atomically (temp file + ``os.replace``) —
concurrent workers racing on the same spec hash simply last-write-wins
a bit-identical payload, and a reader can never observe a truncated
record.  The ``index.json`` read-modify-write is additionally
serialised across processes by an ``os.O_EXCL`` lockfile
(``<root>/index.lock``, bounded wait, stale locks broken) with a
merge-on-save that unions record entries and max-merges the monotone
counters, and across threads by a per-store reentrant mutex — many
service requests can multiplex onto one warm store without dropping
each other's LRU-clock updates.  Contended lock acquisitions tick the
lifetime ``lock_waits`` counter, so index-lock churn under a worker
fleet is visible in provenance rather than guessed at.

Integrity and quarantine
========================

Every record written carries an ``integrity`` section — a SHA-256
checksum over the rest of the payload (the same canonical-JSON recipe
as spec hashing) — and every read verifies it.  A record that fails to
parse, fails its checksum, or is structurally malformed is
**quarantined**: moved aside to ``<root>/quarantine/`` (named so the
``??/`` shard glob never lists it), dropped from the index, counted in
the lifetime ``quarantined`` statistic, and reported once as a
:class:`RuntimeWarning` naming the file and the reason.  The lookup
that found it counts as a miss, so the affected job simply re-runs and
re-persists a clean record — corruption degrades to recomputation, not
to an exception five layers up.  Records from older stores without an
``integrity`` section still load (parse and structure checks only).

Eviction and statistics
=======================

``index.json`` tracks per-record byte sizes and a logical LRU clock,
plus lifetime ``hits`` / ``misses`` / ``evictions`` counters.  It is a
best-effort cache, not a source of truth: a missing or corrupt index is
rebuilt from the record files, and :meth:`gc` / :meth:`stats` reconcile
it against the directory first.  ``RunStore(root, max_count=, max_bytes=)``
enforces the limits after every write; :meth:`gc` applies them (or
one-off limits) on demand, evicting least-recently-used records first.
:meth:`stats` returns a :class:`StoreStats` snapshot — the same numbers
the CLI ``cache stats`` subcommand prints and :func:`repro.api.run`
stamps into record provenance.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.api.jobs import JobKey
from repro.api.records import (
    AssayRunRecord,
    CachedAssayRecord,
    EngineStats,
    RunRecord,
    StoredRunRecord,
)
from repro.api.resilience import FaultInjector
from repro.api.specs import hash_payload, spec_hash
from repro.errors import ReproError, StoreError

__all__ = ["RunStore", "StoreStats", "StorageDriver", "LocalDirDriver"]

_HASH_LENGTH = 64  # hex sha-256
_INDEX_VERSION = 1
_LOCK_WAIT_S = 5.0   # bounded wait for index.lock before proceeding
_LOCK_STALE_S = 30.0  # a lockfile older than this belongs to a dead writer

#: Lifetime counters persisted in (and max-merged across) ``index.json``.
_INDEX_COUNTERS = ("clock", "hits", "misses", "evictions",
                   "quarantined", "lock_waits")


@dataclass(frozen=True)
class StoreStats:
    """One snapshot of a store's counters and footprint.

    ``hits``/``misses``/``evictions``/``quarantined``/``lock_waits``
    are lifetime counters persisted in the index (or, when stamped into
    a record's provenance by :func:`repro.api.run`, the *deltas* of
    that one run); ``records`` and ``bytes`` are the store's current
    footprint.  ``lock_waits`` counts contended index-lock
    acquisitions — how often this store met another writer on the
    shared index, the observable for index churn under a worker fleet.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    records: int = 0
    bytes: int = 0
    quarantined: int = 0
    lock_waits: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "records": self.records,
                "bytes": self.bytes, "quarantined": self.quarantined,
                "lock_waits": self.lock_waits}


class StorageDriver:
    """The persistence substrate behind a :class:`RunStore`.

    A driver stores opaque *text blobs* under spec-hash keys, one index
    blob, and an advisory index lock.  Everything semantic — integrity
    sealing and verification, quarantine policy, LRU accounting, the
    lock *policy* (bounded wait, stale break), statistics — stays in
    :class:`RunStore`, so a driver is deliberately dumb: eleven small
    methods, and an object-store implementation (keys → objects, the
    lock → a conditional put) drops in without touching any cache
    semantics.  :class:`LocalDirDriver` is the reference.
    """

    # -- record blobs ------------------------------------------------------------

    def read(self, key: str) -> str | None:
        """The record text under ``key`` — ``None`` when absent;
        :class:`~repro.errors.StoreError` for I/O failures reading an
        existing record."""
        raise NotImplementedError

    def write(self, key: str, text: str) -> int:
        """Store ``text`` under ``key`` atomically (a concurrent
        :meth:`read` sees the old blob or the new one, never a
        truncation).  Returns the stored size in bytes."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Remove the record under ``key`` (absent keys are a no-op)."""
        raise NotImplementedError

    def size(self, key: str) -> int | None:
        """Stored size in bytes, or ``None`` when the key is absent."""
        raise NotImplementedError

    def list(self) -> list[tuple[str, int]]:
        """Every stored ``(key, bytes)``, sorted by key (quarantined
        records excluded)."""
        raise NotImplementedError

    def quarantine(self, key: str) -> None:
        """Move the record under ``key`` aside for post-mortem: it must
        never appear in :meth:`list`/:meth:`read` again, but should be
        preserved rather than destroyed where the substrate allows."""
        raise NotImplementedError

    # -- the index blob ----------------------------------------------------------

    def read_index(self) -> str | None:
        """The index blob, or ``None`` when absent/unreadable (the
        store rebuilds from :meth:`list`)."""
        raise NotImplementedError

    def write_index(self, text: str) -> None:
        """Store the index blob atomically."""
        raise NotImplementedError

    # -- the advisory index lock -------------------------------------------------

    def try_lock_index(self) -> bool:
        """One atomic, non-blocking attempt to take the index lock."""
        raise NotImplementedError

    def unlock_index(self) -> None:
        """Release (or break) the index lock; absent locks are a no-op."""
        raise NotImplementedError

    def index_lock_age_s(self) -> float | None:
        """Age of the current lock holder in seconds — ``None`` when
        the lock just disappeared (the store retries immediately)."""
        raise NotImplementedError


class LocalDirDriver(StorageDriver):
    """The reference driver: a sharded local directory.

    One JSON file per record at ``<root>/<key[:2]>/<key>.json``, the
    index at ``<root>/index.json``, quarantined records preserved under
    ``<root>/quarantine/`` (invisible to the ``??/`` shard glob), and
    the index lock as an ``os.O_EXCL``-created ``<root>/index.lock`` —
    the one creation primitive that is atomic on every local (and NFS)
    filesystem.  Writes stage to a temp file in the target directory
    and ``os.replace`` into place, so readers never observe a
    truncated blob.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"LocalDirDriver({str(self.root)!r})"

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    @staticmethod
    def _replace_text(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.parent / f".{path.name}.{os.getpid()}.tmp"
        try:
            tmp.write_text(text)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    @staticmethod
    def _prune(shard: Path) -> None:
        if shard.is_dir() and not any(shard.iterdir()):
            shard.rmdir()

    def read(self, key: str) -> str | None:
        path = self._path(key)
        try:
            return path.read_text()
        except FileNotFoundError:
            return None
        except OSError as exc:
            raise StoreError(f"cannot read stored record {path}: "
                             f"{exc}") from exc

    def write(self, key: str, text: str) -> int:
        path = self._path(key)
        self._replace_text(path, text)
        return path.stat().st_size

    def delete(self, key: str) -> None:
        path = self._path(key)
        try:
            path.unlink()
        except FileNotFoundError:  # pragma: no cover - racing delete
            pass
        self._prune(path.parent)

    def size(self, key: str) -> int | None:
        try:
            return self._path(key).stat().st_size
        except OSError:
            return None

    def list(self) -> list[tuple[str, int]]:
        if not self.root.is_dir():
            return []
        out = []
        for path in sorted(self.root.glob("??/*.json")):
            if len(path.stem) != _HASH_LENGTH:
                continue
            try:
                out.append((path.stem, path.stat().st_size))
            except OSError:  # pragma: no cover - racing delete
                continue
        return out

    def quarantine(self, key: str) -> None:
        path = self._path(key)
        qdir = self.root / "quarantine"
        qdir.mkdir(parents=True, exist_ok=True)
        try:
            os.replace(path, qdir / path.name)
        except OSError:  # pragma: no cover - racing delete
            pass
        self._prune(path.parent)

    def read_index(self) -> str | None:
        try:
            return (self.root / "index.json").read_text()
        except (FileNotFoundError, OSError):
            return None

    def write_index(self, text: str) -> None:
        self._replace_text(self.root / "index.json", text)

    def try_lock_index(self) -> bool:
        self.root.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(self.root / "index.lock",
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def unlock_index(self) -> None:
        try:
            (self.root / "index.lock").unlink()
        except OSError:  # pragma: no cover - racing cleanup
            pass

    def index_lock_age_s(self) -> float | None:
        try:
            return time.time() - (self.root / "index.lock").stat().st_mtime
        except OSError:
            return None


class RunStore:
    """A directory of run records, content-addressed by spec hash.

    ``max_count`` / ``max_bytes`` (optional) cap the store: after every
    write the least-recently-used records are evicted until both limits
    hold.  Limits may also be applied one-off through :meth:`gc`.

    ``driver`` (optional) swaps the persistence substrate — any
    :class:`StorageDriver`; the default is a :class:`LocalDirDriver`
    rooted at ``root``.  All cache semantics (locking, quarantine,
    LRU, statistics) are driver-independent.

    ``faults`` (a :class:`~repro.api.resilience.FaultInjector`, default
    from the ``REPRO_FAULTS`` environment variable) arms deterministic
    ``store_corrupt`` fault rules: matched writes land on disk
    deliberately truncated, exercising the verify-on-read + quarantine
    path end to end.  Production stores simply leave it unset.
    """

    def __init__(self, root: str | Path, max_count: int | None = None,
                 max_bytes: int | None = None,
                 faults: FaultInjector | None = None,
                 driver: StorageDriver | None = None) -> None:
        if max_count is not None and max_count < 0:
            raise StoreError(f"max_count must be >= 0, got {max_count}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = Path(root)
        self.driver = driver if driver is not None else \
            LocalDirDriver(self.root)
        self.max_count = max_count
        self.max_bytes = max_bytes
        self.faults = faults if faults is not None else (
            FaultInjector.from_env())
        self._index: dict | None = None
        self._defer = 0          # batched() nesting depth
        self._dirty = False      # index changed while deferred
        self._gc_pending = False  # limits to enforce at batch exit
        # In-process index guard: every public read/write path holds it,
        # so threads sharing one RunStore (the service's dispatchers on
        # one warm store) cannot interleave a read-modify-write of the
        # in-memory index.  Reentrant because puts call gc which calls
        # _save_index_locked.  Cross-*process* safety is the lockfile's job —
        # see _index_lock.
        self._mutex = threading.RLock()

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r})"

    # -- keys and paths ----------------------------------------------------------

    @staticmethod
    def _key(spec_or_hash) -> str:
        """Accept a spec (dataclass or payload dict), a JobKey, or a
        literal hash."""
        if isinstance(spec_or_hash, JobKey):
            return spec_or_hash.digest
        if isinstance(spec_or_hash, str):
            key = spec_or_hash.lower()
            if len(key) != _HASH_LENGTH or any(
                    c not in "0123456789abcdef" for c in key):
                raise StoreError(f"not a spec hash: {spec_or_hash!r} "
                                 f"(need {_HASH_LENGTH} hex characters)")
            return key
        return spec_hash(spec_or_hash)

    def path_for(self, spec_or_hash) -> Path:
        """The record's location under the reference local-dir layout
        (nominal for drivers that are not directory-backed)."""
        key = self._key(spec_or_hash)
        return self.root / key[:2] / f"{key}.json"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def __contains__(self, spec_or_hash) -> bool:
        return self.driver.size(self._key(spec_or_hash)) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.hashes())

    def hashes(self) -> Iterator[str]:
        """Every stored spec hash, sorted for stable listings."""
        return iter([key for key, _ in self.driver.list()])

    # -- the LRU/size index ------------------------------------------------------

    @staticmethod
    def _empty_index() -> dict:
        return {"version": _INDEX_VERSION, "clock": 0,
                "hits": 0, "misses": 0, "evictions": 0,
                "quarantined": 0, "lock_waits": 0, "records": {}}

    def _load_index_locked(self) -> dict:
        if self._index is not None:
            return self._index
        payload = None
        text = self.driver.read_index()
        if text is not None:
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = None
        if (not isinstance(payload, dict)
                or payload.get("version") != _INDEX_VERSION
                or not isinstance(payload.get("records"), dict)):
            payload = self._rebuild_index()
        for counter in _INDEX_COUNTERS:
            if not isinstance(payload.get(counter), int):
                payload[counter] = 0
        self._index = payload
        return payload

    def _rebuild_index(self) -> dict:
        """Re-derive the index from the record files (LRU order is lost;
        hash order stands in, which only biases the first evictions)."""
        index = self._empty_index()
        for key, size in self.driver.list():
            index["clock"] += 1
            index["records"][key] = {"bytes": size, "used": index["clock"],
                                     "kind": self._peek_kind(key)}
        return index

    def _peek_kind(self, key: str) -> str:
        try:
            payload = json.loads(self.driver.read(key) or "null")
            return str(payload["provenance"]["kind"])
        except (StoreError, json.JSONDecodeError, KeyError, TypeError):
            return "?"

    @contextmanager
    def _index_lock(self, wait_s: float = _LOCK_WAIT_S):
        """Hold the driver's index lock around an index
        read-modify-write; yields ``True`` when acquisition was
        contended (the signal behind the ``lock_waits`` statistic).

        The lock itself is one atomic driver primitive (``os.O_EXCL``
        creation for the local driver), so two processes multiplexed
        onto one warm store serialise their index saves instead of
        last-writer-winning each other's LRU-clock updates; the
        *policy* here is driver-independent.  The wait is bounded:
        after ``wait_s`` the caller proceeds *without* the lock (a
        RuntimeWarning notes it) because a cache index must degrade to
        best-effort, never deadlock the pipeline.  A lock older than
        ``_LOCK_STALE_S`` belongs to a writer that died mid-save and is
        broken on sight.
        """
        deadline = time.monotonic() + wait_s
        acquired = False
        waited = False
        while True:
            if self.driver.try_lock_index():
                acquired = True
                break
            waited = True
            age = self.driver.index_lock_age_s()
            if age is None:
                continue  # holder just released; retry immediately
            if age > _LOCK_STALE_S:
                self.driver.unlock_index()  # break a dead writer's lock
                continue
            if time.monotonic() >= deadline:
                warnings.warn(
                    f"run store: could not acquire index.lock within "
                    f"{wait_s:.1f}s; saving index without the lock "
                    f"(concurrent LRU updates may be lost)",
                    RuntimeWarning, stacklevel=3)
                break
            time.sleep(0.005)
        try:
            yield waited
        finally:
            if acquired:
                self.driver.unlock_index()

    def _merge_disk_index(self, index: dict) -> dict:
        """Fold another writer's saved index into ours before saving.

        Called under :meth:`_index_lock`.  Lifetime counters and the LRU
        clock take the elementwise max (monotone, so concurrent
        increments cannot move them backwards; simultaneous increments
        may still undercount — they are statistics, not invariants).
        Record entries are unioned: another writer's keys are adopted
        only when the record still exists, so our own evictions
        and quarantines are not resurrected.
        """
        text = self.driver.read_index()
        if text is None:
            return index
        try:
            disk = json.loads(text)
        except json.JSONDecodeError:
            return index
        if (not isinstance(disk, dict)
                or disk.get("version") != _INDEX_VERSION
                or not isinstance(disk.get("records"), dict)):
            return index
        for counter in _INDEX_COUNTERS:
            other = disk.get(counter)
            if isinstance(other, int) and other > index[counter]:
                index[counter] = other
        ours = index["records"]
        for key, entry in disk["records"].items():
            if key in ours or not isinstance(entry, dict):
                continue
            if self.driver.size(key) is not None:
                ours[key] = entry
        return index

    def _save_index_locked(self) -> None:
        if self._index is None:  # pragma: no cover - defensive
            return
        if self._defer:
            self._dirty = True
            return
        self._dirty = False
        with self._index_lock() as waited:
            if waited:
                self._index["lock_waits"] += 1
            merged = self._merge_disk_index(self._index)
            self.driver.write_index(
                json.dumps(merged, indent=2, sort_keys=True) + "\n")

    @contextmanager
    def batched(self):
        """Coalesce index writes across many lookups/puts.

        Inside the context every get/put updates only the in-memory
        index; one index save (and, when ``max_count`` /
        ``max_bytes`` are set, one eviction pass) happens at exit
        instead of one per operation — the difference between O(N) and
        O(N^2) file I/O when a JobPlan keys an N-point sweep.  Nests
        safely; the runner wraps whole fleet merges in one batch, and
        distributed workers wrap each claimed shard's lookups and
        write-backs the same way.
        """
        self._defer += 1
        try:
            yield self
        finally:
            self._defer -= 1
            if self._defer == 0:
                with self._mutex:
                    if self._gc_pending:
                        self._gc_pending = False
                        self.gc()  # syncs and saves the index itself
                    elif self._dirty:
                        self._save_index_locked()

    def _sync_index_locked(self) -> dict:
        """Reconcile the index against the substrate (records written or
        deleted by other processes), without counting hits/misses."""
        index = self._load_index_locked()
        records = index["records"]
        stored = dict(self.driver.list())
        for key in set(records) - set(stored):
            del records[key]
        for key, size in stored.items():
            if key not in records:
                index["clock"] += 1
                records[key] = {"bytes": size, "used": index["clock"],
                                "kind": self._peek_kind(key)}
        return index

    def _note_lookup(self, key: str | None, hit: bool) -> None:
        """Count a hit/miss; hits also refresh the record's LRU clock."""
        with self._mutex:
            self._note_lookup_locked(key, hit)

    def _note_lookup_locked(self, key: str | None, hit: bool) -> None:
        index = self._load_index_locked()
        if hit and key is not None:
            index["hits"] += 1
            index["clock"] += 1
            entry = index["records"].get(key)
            if entry is None:
                # A record the index has not seen (written by another
                # process, or a pre-index store): adopt it on access.
                size = self.driver.size(key)
                entry = {"bytes": size if size is not None else 0,
                         "kind": self._peek_kind(key)}
                index["records"][key] = entry
            entry["used"] = index["clock"]
        else:
            index["misses"] += 1
        self._save_index_locked()

    # -- quarantine --------------------------------------------------------------

    def _quarantine(self, key: str, reason: str) -> None:
        """Move a corrupt record aside instead of serving or raising.

        The record is preserved by the driver for post-mortem
        (``<root>/quarantine/`` locally, invisible to listings and
        index rebuilds), its index entry is dropped, the lifetime
        ``quarantined`` counter ticks, and a :class:`RuntimeWarning`
        names the record and the reason.
        """
        self.driver.quarantine(key)
        with self._mutex:
            index = self._load_index_locked()
            index["quarantined"] += 1
            index["records"].pop(key, None)
            self._save_index_locked()
        warnings.warn(f"run store: quarantined corrupt record "
                      f"{key}.json: {reason}", RuntimeWarning,
                      stacklevel=4)

    # -- reads -------------------------------------------------------------------

    def _read_payload(self, key: str) -> dict | None:
        """The verified JSON payload under ``key`` — ``None`` when
        absent *or* quarantined as corrupt (unparseable, non-object, or
        failing its ``integrity`` checksum); :class:`~repro.errors.
        StoreError` only for I/O failures reading an existing record."""
        text = self.driver.read(key)
        if text is None:
            return None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            self._quarantine(key, f"not valid JSON ({exc})")
            return None
        if not isinstance(payload, dict):
            self._quarantine(key, "not a JSON object")
            return None
        integrity = payload.get("integrity")
        if integrity is not None:
            digest = (integrity.get("digest")
                      if isinstance(integrity, dict) else None)
            body = {k: v for k, v in payload.items() if k != "integrity"}
            if digest != hash_payload(body):
                self._quarantine(key, "integrity checksum mismatch")
                return None
        return payload

    @staticmethod
    def _stored_record(payload: dict, key: str) -> StoredRunRecord:
        try:
            provenance = payload["provenance"]
            return StoredRunRecord(
                spec=payload["spec"],
                spec_hash=provenance["spec_hash"],
                schema_version=provenance["schema_version"],
                seed=provenance.get("seed"),
                wall_time_s=provenance["wall_time_s"],
                result=payload.get("result", {}),
                stored_provenance=dict(provenance))
        except (KeyError, TypeError) as exc:
            raise StoreError(f"stored record {key}.json is malformed "
                             f"({exc!r}); delete it or clear the store"
                             ) from exc

    def get(self, spec_or_hash) -> StoredRunRecord | None:
        """The stored record for a spec/hash, or ``None`` on a miss.

        Counts one hit or miss in the store statistics.  Corrupt
        records (bad JSON, failed checksum, malformed structure) are
        quarantined with a :class:`RuntimeWarning` and count as a miss
        — the caller simply re-runs the spec.
        """
        key = self._key(spec_or_hash)
        payload = self._read_payload(key)
        if payload is None:
            self._note_lookup(None, hit=False)
            return None
        try:
            record = self._stored_record(payload, key)
        except StoreError as exc:
            self._quarantine(key, str(exc))
            self._note_lookup(None, hit=False)
            return None
        self._note_lookup(key, hit=True)
        return record

    def get_job(self, key) -> AssayRunRecord | StoredRunRecord | None:
        """The per-job record for a :class:`~repro.api.jobs.JobKey`
        (or hash/assay spec), or ``None`` on a miss.

        Full-sample records rehydrate as live
        :class:`~repro.api.records.CachedAssayRecord` objects —
        bit-identical traces, voltammograms and readouts.  Legacy
        records persisted without samples fall back to the summary-only
        :class:`~repro.api.records.StoredRunRecord` (still a hit, but
        they cannot rejoin a live fleet stream).  Corrupt records are
        quarantined and count as a miss, so the job re-runs.
        """
        from repro.io.export import panel_result_from_payload

        digest = self._key(key)
        payload = self._read_payload(digest)
        if payload is None:
            self._note_lookup(None, hit=False)
            return None
        samples = payload.get("samples")
        if samples is None:
            try:
                record = self._stored_record(payload, digest)
            except StoreError as exc:
                self._quarantine(digest, str(exc))
                self._note_lookup(None, hit=False)
                return None
            self._note_lookup(digest, hit=True)
            return record
        try:
            provenance = payload["provenance"]
            result_summary = payload.get("result", {})
            engine = result_summary.get("engine")
            record = CachedAssayRecord(
                spec=payload["spec"],
                spec_hash=provenance["spec_hash"],
                schema_version=provenance["schema_version"],
                seed=provenance.get("seed"),
                wall_time_s=provenance["wall_time_s"],
                job_name=result_summary.get(
                    "job_name", str(payload["spec"].get("name", ""))),
                result=panel_result_from_payload(samples),
                engine=(EngineStats.from_dict(engine)
                        if engine is not None else None))
        except (KeyError, TypeError, ValueError, AttributeError,
                ReproError) as exc:
            self._quarantine(digest, f"malformed job record ({exc!r})")
            self._note_lookup(None, hit=False)
            return None
        self._note_lookup(digest, hit=True)
        return record

    def records(self) -> Iterator[StoredRunRecord]:
        """Every stored record's summary, in hash order.

        Corrupt records are quarantined (with a :class:`RuntimeWarning`
        naming the record) rather than listed — one bad entry must not
        make the whole store unlistable, and it must not resurface on
        the next listing either.  Records that exist but cannot be
        *read* (I/O errors) are skipped with a warning.  Listing does
        not count hits/misses.
        """
        for key in self.hashes():
            try:
                payload = self._read_payload(key)
            except StoreError as exc:
                warnings.warn(f"run store: skipping unreadable record: "
                              f"{exc}", RuntimeWarning, stacklevel=2)
                continue
            if payload is None:
                continue
            try:
                yield self._stored_record(payload, key)
            except StoreError as exc:
                self._quarantine(key, str(exc))

    # -- writes ------------------------------------------------------------------

    def _write(self, key: str, payload: dict, kind: str) -> Path:
        # Seal the payload: checksum over everything *but* the seal
        # itself, using the same canonical-JSON recipe as spec hashing,
        # so any later on-disk mutation fails verify-on-read.
        body = {k: v for k, v in payload.items() if k != "integrity"}
        payload = dict(body)
        payload["integrity"] = {"algo": "sha256",
                                "digest": hash_payload(body)}
        text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        nbytes = self.driver.write(key, text)
        if self.faults is not None and self.faults.corrupts(key):
            # Deterministic fault injection: truncate the just-written
            # record mid-payload, as a crash or full disk would.
            stored = self.driver.read(key) or text
            nbytes = self.driver.write(
                key, stored[: max(len(stored) // 2, 1)])
        with self._mutex:
            index = self._load_index_locked()
            index["clock"] += 1
            index["records"][key] = {"bytes": nbytes,
                                     "used": index["clock"], "kind": kind}
            self._save_index_locked()
            if self.max_count is not None or self.max_bytes is not None:
                if self._defer:
                    self._gc_pending = True
                else:
                    self.gc()
        return self.path_for(key)

    def put(self, record: RunRecord) -> Path:
        """Persist a live record's summary under its spec hash.

        Cached records are already in a store and are not re-persisted
        (their summaries would round-trip unchanged anyway).  Assay
        records carrying a live result should go through
        :meth:`put_job`, which also persists the sample arrays.
        """
        if record.cached:
            return self.path_for(record.spec_hash)
        return self._write(record.spec_hash, record.to_dict(), record.kind)

    def put_job(self, record: AssayRunRecord) -> Path:
        """Persist a per-job assay record, samples included.

        The payload is the record's ``to_dict()`` summary plus a
        ``samples`` section (:func:`~repro.io.export.
        panel_result_to_payload`), so a later :meth:`get_job` hit
        rehydrates the live result bit for bit.
        """
        from repro.io.export import panel_result_to_payload

        if record.cached:
            return self.path_for(record.spec_hash)
        payload = record.to_dict()
        payload["samples"] = panel_result_to_payload(record.result)
        return self._write(record.spec_hash, payload, record.kind)

    # -- eviction, statistics, clearing ------------------------------------------

    def gc(self, max_count: int | None = None,
           max_bytes: int | None = None) -> tuple[int, int]:
        """Evict least-recently-used records until the limits hold.

        Limits default to the store's own ``max_count``/``max_bytes``;
        pass either explicitly for a one-off collection.  Returns
        ``(n_evicted, bytes_freed)``.  A limit of ``None`` does not
        constrain that axis; ``gc()`` with no limits anywhere is a no-op.
        """
        max_count = self.max_count if max_count is None else max_count
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        with self._mutex:
            index = self._sync_index_locked()
            records = index["records"]
            count = len(records)
            total = sum(entry["bytes"] for entry in records.values())
            evicted = 0
            freed = 0
            if max_count is not None or max_bytes is not None:
                for key, entry in sorted(records.items(),
                                         key=lambda kv: kv[1]["used"]):
                    over_count = max_count is not None and count > max_count
                    over_bytes = max_bytes is not None and total > max_bytes
                    if not over_count and not over_bytes:
                        break
                    self.driver.delete(key)
                    del records[key]
                    count -= 1
                    total -= entry["bytes"]
                    freed += entry["bytes"]
                    evicted += 1
            index["evictions"] += evicted
            self._save_index_locked()
        return evicted, freed

    def stats(self) -> StoreStats:
        """Lifetime counters plus the store's current footprint."""
        with self._mutex:
            index = self._sync_index_locked()
            self._save_index_locked()
            records = index["records"]
            return StoreStats(
                hits=index["hits"], misses=index["misses"],
                evictions=index["evictions"], records=len(records),
                bytes=sum(entry["bytes"] for entry in records.values()),
                quarantined=index["quarantined"],
                lock_waits=index["lock_waits"])

    def clear(self) -> int:
        """Delete every stored record; returns how many were removed.

        Lifetime hit/miss/eviction counters survive a clear (they
        describe the store's history, not its contents).
        """
        with self._mutex:
            removed = 0
            for key in list(self.hashes()):
                self.driver.delete(key)
                removed += 1
            if removed or self.driver.read_index() is not None:
                index = self._load_index_locked()
                index["records"] = {}
                self._save_index_locked()
            return removed
