"""Voltammetric peak detection and target assignment.

Cyclic voltammetry identifies molecules by *where* current peaks appear and
quantifies them by *how tall* the peaks are (paper Sec. I-B: "position
gives information on the type of molecules ... like an electrochemical
signature").  This module turns a
:class:`~repro.measurement.trace.Voltammogram` into :class:`Peak` records
and matches them against a candidate table (Table II) — the machinery
behind the T2 bench, the F4 panel and the A2 scan-rate ablation.

Two detection methods are provided:

- ``"raw"`` — peaks of the current itself; positions sit
  ``1.109*RT/nF`` below the formal potential for reversible waves.
- ``"semiderivative"`` — peaks of the Riemann-Liouville half-derivative
  of the current (Grunwald-Letnikov expansion).  Semi-differentiation
  converts diffusion waves, whose ``t^-1/2`` tails bury later waves, into
  symmetric peaks centred on the half-wave potential — the classic trick
  for resolving closely spaced targets such as the benzphetamine /
  aminopyrine pair on one CYP2B4 electrode (paper Sec. III).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.signal import fftconvolve
from scipy.signal import find_peaks as _scipy_find_peaks

from repro.chem import constants as C
from repro.errors import AnalysisError
from repro.measurement.trace import Voltammogram
from repro.units import ensure_positive

__all__ = [
    "Peak",
    "PeakAssignment",
    "semi_derivative",
    "find_peaks",
    "assign_peaks",
    "reversible_peak_offset",
]


def reversible_peak_offset(n_electrons: int = 2) -> float:
    """|Ep - E0| of a reversible wave, volts (1.109 RT/nF)."""
    if n_electrons < 1:
        raise AnalysisError("n_electrons must be >= 1")
    return C.REVERSIBLE_PEAK_OFFSET / (n_electrons * C.F_OVER_RT)


def semi_derivative(values: np.ndarray, dt: float) -> np.ndarray:
    """Half-order derivative of a uniformly sampled series.

    Grunwald-Letnikov weights: ``w0 = 1``, ``wk = w(k-1)*(k - 3/2)/k``;
    the semi-derivative is the running convolution scaled by
    ``dt^-1/2``.  Linear in its input, so peak heights remain
    concentration-proportional.
    """
    ensure_positive(dt, "dt")
    series = np.asarray(values, dtype=float)
    if series.ndim != 1 or series.size < 2:
        raise AnalysisError("semi_derivative needs a 1-D series of >= 2 samples")
    n = series.size
    weights = np.empty(n)
    weights[0] = 1.0
    for k in range(1, n):
        weights[k] = weights[k - 1] * (k - 1.5) / k
    out = fftconvolve(series, weights, mode="full")[:n]
    return out / math.sqrt(dt)


@dataclass(frozen=True)
class Peak:
    """One detected voltammetric peak.

    ``height`` is the prominence above the local baseline (the
    concentration-proportional quantity); ``current`` the signed current
    at the apex; ``width`` the full width at half prominence in volts.
    ``method`` records how it was found (``"raw"`` peaks carry the
    reversible offset, ``"semiderivative"`` peaks sit at the half-wave
    potential).
    """

    potential: float
    current: float
    height: float
    width: float
    cathodic: bool
    method: str = "raw"

    def formal_potential_estimate(self, n_electrons: int = 2) -> float:
        """Best estimate of the couple's formal potential, volts.

        Raw cathodic peaks sit ``1.109 RT/nF`` below E0; semiderivative
        peaks sit at the half-wave potential, which equals E0 for equal
        diffusivities of both forms.
        """
        if self.method == "semiderivative":
            return self.potential
        offset = reversible_peak_offset(n_electrons)
        return (self.potential + offset if self.cathodic
                else self.potential - offset)


@dataclass(frozen=True)
class PeakAssignment:
    """The result of matching detected peaks against candidate targets."""

    matches: dict[str, Peak]
    unassigned_peaks: tuple[Peak, ...]
    missing_targets: tuple[str, ...]

    @property
    def all_assigned(self) -> bool:
        return not self.missing_targets


def find_peaks(voltammogram: Voltammogram, cathodic: bool = True,
               cycle: int = 0, min_height: float = 1.0e-9,
               min_separation: float = 0.03,
               method: str = "raw",
               smooth_samples: int = 1) -> tuple[Peak, ...]:
    """Detect peaks on one sweep leg.

    Parameters
    ----------
    cathodic:
        Reduction peaks (the CYP signatures of Table II) when True.
    min_height:
        Prominence threshold; amperes for ``"raw"``, A/sqrt(s) for
        ``"semiderivative"``.  Set a few sigma above the channel noise.
    min_separation:
        Minimum peak spacing in volts; closer features merge (which is
        also what happens physically — see torsemide/diclofenac at
        -19/-41 mV).
    method:
        ``"raw"`` or ``"semiderivative"`` (see module docstring).
    smooth_samples:
        Moving-average window applied before detection (odd, >= 1).
        Noisy records need it: prominence is measured against local
        minima, which unsmoothed noise drags down, inflating every
        height by a few sigma.
    """
    ensure_positive(min_height, "min_height")
    ensure_positive(min_separation, "min_separation")
    if method not in ("raw", "semiderivative"):
        raise AnalysisError(
            f"method must be 'raw' or 'semiderivative', got {method!r}")
    if smooth_samples < 1 or smooth_samples % 2 == 0:
        raise AnalysisError("smooth_samples must be an odd integer >= 1")
    leg = voltammogram.leg(cathodic=cathodic, cycle=cycle)
    signal = -leg.current if cathodic else leg.current
    if smooth_samples > 1 and signal.size > smooth_samples:
        kernel = np.ones(smooth_samples) / smooth_samples
        signal = np.convolve(signal, kernel, mode="same")
    if method == "semiderivative":
        dt = float(leg.times[1] - leg.times[0])
        signal = semi_derivative(signal, dt)
    potentials = leg.potentials
    if potentials.size < 5:
        raise AnalysisError("leg too short for peak detection")
    step = float(np.median(np.abs(np.diff(potentials))))
    if step <= 0.0:
        raise AnalysisError("degenerate potential axis")
    distance = max(int(min_separation / step), 1)
    idx, props = _scipy_find_peaks(signal, prominence=min_height,
                                   distance=distance, width=1)
    peaks = []
    for k, i in enumerate(idx):
        peaks.append(Peak(
            potential=float(potentials[i]),
            current=float(leg.current[i]),
            height=float(props["prominences"][k]),
            width=float(props["widths"][k]) * step,
            cathodic=cathodic,
            method=method,
        ))
    return tuple(sorted(peaks, key=lambda p: p.potential, reverse=True))


def assign_peaks(peaks: tuple[Peak, ...], candidates: dict[str, float],
                 tolerance: float = 0.045,
                 n_electrons: int = 2) -> PeakAssignment:
    """Match detected peaks to candidate formal potentials.

    ``candidates`` maps target names to formal potentials (volts, the
    Table II column).  Greedy nearest-distance matching within
    ``tolerance``, after correcting each peak's position to its formal-
    potential estimate; each peak and each target is used at most once.
    """
    ensure_positive(tolerance, "tolerance")
    pairs: list[tuple[float, int, str]] = []
    for k, peak in enumerate(peaks):
        position = peak.formal_potential_estimate(n_electrons)
        for name, e_formal in candidates.items():
            distance = abs(position - e_formal)
            if distance <= tolerance:
                pairs.append((distance, k, name))
    pairs.sort()
    matches: dict[str, Peak] = {}
    used_peaks: set[int] = set()
    for distance, k, name in pairs:
        if name in matches or k in used_peaks:
            continue
        matches[name] = peaks[k]
        used_peaks.add(k)
    unassigned = tuple(p for k, p in enumerate(peaks) if k not in used_peaks)
    missing = tuple(sorted(set(candidates) - set(matches)))
    return PeakAssignment(matches=matches, unassigned_peaks=unassigned,
                          missing_targets=missing)
