"""Multiplexed multi-target panel measurement (paper Fig. 4 / Sec. III).

"In the proposed configuration, the different working electrodes share the
same counter and reference electrodes, so it is necessary to multiplex the
signal of the working electrodes, in order to activate them sequentially."

:class:`PanelProtocol` sequences a full assay over every working electrode
of a cell through one shared acquisition chain:

- oxidase WEs get a chronoamperometric dwell at their recommended applied
  potential (Table I),
- CYP WEs get a full cyclic voltammetry sweep over a window covering all
  of their channels' reduction potentials,
- blank WEs get a chronoamperometric dwell (their record is the CDS
  reference),

with mux settling inserted between channels.  The result carries per-WE
traces/voltammograms, per-target quantities, and the assay timing that
feeds the paper's *sample throughput* property.

Every per-WE protocol the panel sequences routes its chemistry through
:class:`repro.engine.simulation.SimulationEngine`: a CYP sweep advances
all of its substrate channels in one batched solve per sample, and a
chronoamperometric dwell advances all of its surface mechanisms the same
way — the panel is therefore the engine's heaviest workload (its
throughput is tracked by ``benchmarks/bench_engine_throughput.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.electronics.chain import AcquisitionChain
from repro.electronics.waveform import TriangleWaveform
from repro.errors import ProtocolError
from repro.measurement.chronoamperometry import Chronoamperometry
from repro.measurement.peaks import Peak, assign_peaks, find_peaks
from repro.measurement.trace import Trace, Voltammogram
from repro.measurement.voltammetry import CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.units import ensure_positive

__all__ = ["PanelProtocol", "PanelResult", "TargetReadout"]


@dataclass(frozen=True)
class TargetReadout:
    """One quantified target from the panel.

    ``signal`` is the concentration-proportional raw quantity: the steady
    current for oxidase channels, the peak height for CYP channels.
    """

    target: str
    we_name: str
    method: str
    signal: float
    peak: Peak | None = None


@dataclass(frozen=True)
class PanelResult:
    """Everything one multiplexed assay produced."""

    traces: dict[str, Trace]
    voltammograms: dict[str, Voltammogram]
    readouts: dict[str, TargetReadout]
    assay_time: float
    blank_current: float | None

    def signal_for(self, target: str) -> float:
        """The raw signal of ``target``; raises when it was not measured."""
        if target not in self.readouts:
            raise ProtocolError(
                f"target {target!r} was not measured "
                f"(have: {', '.join(sorted(self.readouts))})")
        return self.readouts[target].signal


class PanelProtocol:
    """Sequential multiplexed assay over every WE of a cell.

    Parameters
    ----------
    ca_dwell:
        Chronoamperometric dwell per oxidase/blank WE, seconds (long
        enough to reach steady state; the default comfortably covers the
        ~30 s settling of Fig. 3).
    cv_window_margin:
        Potential margin around the outermost CYP reduction potentials
        for the sweep window, volts.
    scan_rate:
        CV scan rate, V/s; the paper's accuracy rule says <= 20 mV/s.
    sample_rate:
        Chain sampling rate, Hz.
    settle_between:
        Extra idle time after each mux switch, seconds.
    peak_min_height:
        Peak-detection prominence threshold, amperes.
    """

    def __init__(self, ca_dwell: float = 60.0,
                 cv_window_margin: float = 0.25,
                 scan_rate: float = 0.020,
                 sample_rate: float = 10.0,
                 settle_between: float = 1.0,
                 peak_min_height: float = 2.0e-9) -> None:
        self.ca_dwell = ensure_positive(ca_dwell, "ca_dwell")
        self.cv_window_margin = ensure_positive(
            cv_window_margin, "cv_window_margin")
        self.scan_rate = ensure_positive(scan_rate, "scan_rate")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.settle_between = ensure_positive(settle_between, "settle_between")
        self.peak_min_height = ensure_positive(
            peak_min_height, "peak_min_height")

    def run(self, cell: ElectrochemicalCell, chain: AcquisitionChain,
            rng: np.random.Generator | None = None) -> PanelResult:
        """Measure every WE in order; return the assembled panel result."""
        generator = rng if rng is not None else np.random.default_rng(2011)
        traces: dict[str, Trace] = {}
        voltammograms: dict[str, Voltammogram] = {}
        readouts: dict[str, TargetReadout] = {}
        blank_current: float | None = None
        assay_time = 0.0

        for we in cell.working_electrodes:
            assay_time += self.settle_between
            probe = we.probe
            if isinstance(probe, CytochromeP450):
                voltammogram = self._run_cv(cell, we.name, chain, generator)
                voltammograms[we.name] = voltammogram
                assay_time += voltammogram.times[-1]
                self._extract_cyp_readouts(we.name, probe, voltammogram,
                                           readouts)
            else:
                trace, e_used = self._run_ca(cell, we.name, chain, generator)
                traces[we.name] = trace
                assay_time += trace.duration
                if isinstance(probe, Oxidase):
                    readouts[probe.substrate] = TargetReadout(
                        target=probe.substrate, we_name=we.name,
                        method="chronoamperometry",
                        signal=trace.tail_mean())
                else:
                    blank_current = trace.tail_mean()
        return PanelResult(traces=traces, voltammograms=voltammograms,
                           readouts=readouts, assay_time=assay_time,
                           blank_current=blank_current)

    # -- per-mode runners ----------------------------------------------------------

    def _run_ca(self, cell: ElectrochemicalCell, we_name: str,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> tuple[Trace, float]:
        we = cell.working_electrode(we_name)
        if isinstance(we.probe, Oxidase):
            e_set = we.effective_h2o2_wave().potential_for_efficiency(0.95)
        else:
            e_set = 0.65  # the generic H2O2 potential of Sec. I-B
        protocol = Chronoamperometry(
            e_setpoint=e_set, duration=self.ca_dwell,
            sample_rate=self.sample_rate)
        result = protocol.run(cell, we_name, chain, rng=rng)
        return result.trace, result.e_applied

    def _run_cv(self, cell: ElectrochemicalCell, we_name: str,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> Voltammogram:
        we = cell.working_electrode(we_name)
        probe = we.probe
        assert isinstance(probe, CytochromeP450)
        potentials = [ch.reduction_potential for ch in probe.channels]
        e_start = max(potentials) + self.cv_window_margin
        e_vertex = min(potentials) - self.cv_window_margin
        waveform = TriangleWaveform(e_start=e_start, e_vertex=e_vertex,
                                    scan_rate=self.scan_rate)
        protocol = CyclicVoltammetry(waveform, sample_rate=self.sample_rate)
        return protocol.run(cell, we_name, chain, rng=rng).voltammogram

    def _extract_cyp_readouts(self, we_name: str, probe: CytochromeP450,
                              voltammogram: Voltammogram,
                              readouts: dict[str, TargetReadout]) -> None:
        candidates = {ch.substrate: ch.reduction_potential
                      for ch in probe.channels}
        # Semi-derivative detection: diffusion tails of large waves bury
        # small neighbours' raw prominences (benzphetamine under
        # aminopyrine at panel loadings); the half-derivative returns to
        # baseline between waves and resolves the shoulder honestly.
        peaks = find_peaks(voltammogram, cathodic=True,
                           min_height=self.peak_min_height,
                           smooth_samples=7, method="semiderivative")
        assignment = assign_peaks(peaks, candidates)
        for target, peak in assignment.matches.items():
            readouts[target] = TargetReadout(
                target=target, we_name=we_name, method="cyclic_voltammetry",
                signal=peak.height, peak=peak)
