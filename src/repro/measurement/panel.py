"""Multiplexed multi-target panel measurement (paper Fig. 4 / Sec. III).

"In the proposed configuration, the different working electrodes share the
same counter and reference electrodes, so it is necessary to multiplex the
signal of the working electrodes, in order to activate them sequentially."

:class:`PanelProtocol` sequences a full assay over every working electrode
of a cell through one shared acquisition chain:

- oxidase WEs get a chronoamperometric dwell at their recommended applied
  potential (Table I),
- CYP WEs get a full cyclic voltammetry sweep over a window covering all
  of their channels' reduction potentials,
- blank WEs get a chronoamperometric dwell (their record is the CDS
  reference),

with mux settling inserted between channels.  The result carries per-WE
traces/voltammograms, per-target quantities, and the assay timing that
feeds the paper's *sample throughput* property.

The chemistry is batched at the *panel* level: all chronoamperometric
dwells of the cell — oxidase and blank WEs alike — advance together
through one :class:`~repro.engine.scheduler.DwellBatch`, i.e. one fused
:class:`~repro.engine.simulation.SimulationEngine` solve per time step
across every electrode's mechanisms.  Digitisation then runs per WE in
the original electrode order, so the chain's RNG stream — and therefore
every :class:`PanelResult` — is bit-identical to the sequential per-WE
path (kept available via ``batch_electrodes=False`` as the reference).
CYP sweeps keep their per-sweep batched engine and are interleaved in
electrode order.  The panel is the engine's heaviest workload; its
throughput is tracked by ``benchmarks/bench_panel_throughput.py`` and
fleets of panels fuse further through
:class:`~repro.engine.scheduler.AssayScheduler`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.chem.solution import InjectionSchedule
from repro.electronics.chain import AcquisitionChain
from repro.electronics.waveform import TriangleWaveform, uniform_sample_times
from repro.engine.scheduler import DwellBatch
from repro.errors import ProtocolError
from repro.measurement.chronoamperometry import ChronoDwell, Chronoamperometry
from repro.measurement.peaks import Peak, assign_peaks, find_peaks
from repro.measurement.trace import Trace, Voltammogram
from repro.measurement.voltammetry import CvSweep, CyclicVoltammetry
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import WorkingElectrode
from repro.units import ensure_positive

__all__ = ["PanelProtocol", "PanelResult", "TargetReadout"]


@dataclass(frozen=True)
class TargetReadout:
    """One quantified target from the panel.

    ``signal`` is the concentration-proportional raw quantity: the steady
    current for oxidase channels, the peak height for CYP channels.
    ``e_applied`` is the actual potentiostat output the channel was held
    at — chronoamperometric channels only; CV channels sweep a program
    and carry ``None``.
    """

    target: str
    we_name: str
    method: str
    signal: float
    peak: Peak | None = None
    e_applied: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready summary (peak reduced to its potential/height)."""
        return {
            "target": self.target,
            "we_name": self.we_name,
            "method": self.method,
            "signal_a": self.signal,
            "e_applied_v": self.e_applied,
            "peak_potential_v": (self.peak.potential
                                 if self.peak is not None else None),
        }


@dataclass(frozen=True)
class PanelResult:
    """Everything one multiplexed assay produced.

    ``blank_e_applied`` records the held potential of the blank dwell
    (the CDS reference record), when the cell carried a blank WE.
    """

    traces: dict[str, Trace]
    voltammograms: dict[str, Voltammogram]
    readouts: dict[str, TargetReadout]
    assay_time: float
    blank_current: float | None
    blank_e_applied: float | None = None

    def signal_for(self, target: str) -> float:
        """The raw signal of ``target``; raises when it was not measured."""
        if target not in self.readouts:
            raise ProtocolError(
                f"target {target!r} was not measured "
                f"(have: {', '.join(sorted(self.readouts))})")
        return self.readouts[target].signal

    def summary_dict(self) -> dict:
        """JSON-ready summary: quantities only, no raw sample arrays.

        This is what :mod:`repro.api` run records and
        :func:`repro.io.export.run_record_to_json` serialise; full
        traces/voltammograms stay on the live object (export them with
        :func:`repro.io.export.trace_to_csv` when needed).
        """
        return {
            "assay_time_s": self.assay_time,
            "blank_current_a": self.blank_current,
            "blank_e_applied_v": self.blank_e_applied,
            "channels": sorted([*self.traces, *self.voltammograms]),
            "readouts": {target: readout.to_dict()
                         for target, readout in self.readouts.items()},
        }


class PanelProtocol:
    """Multiplexed assay over every WE of a cell, batched across WEs.

    Parameters
    ----------
    ca_dwell:
        Chronoamperometric dwell per oxidase/blank WE, seconds (long
        enough to reach steady state; the default comfortably covers the
        ~30 s settling of Fig. 3).
    cv_window_margin:
        Potential margin around the outermost CYP reduction potentials
        for the sweep window, volts.
    scan_rate:
        CV scan rate, V/s; the paper's accuracy rule says <= 20 mV/s.
    sample_rate:
        Chain sampling rate, Hz.
    settle_between:
        Extra idle time after each mux switch, seconds.
    peak_min_height:
        Peak-detection prominence threshold, amperes.
    ca_injections:
        Mid-dwell bulk additions: one
        :class:`~repro.chem.solution.InjectionSchedule` applied to every
        chronoamperometric WE, or a mapping from WE name to schedule.
    batch_electrodes:
        Advance all chronoamperometric dwells of the cell in one fused
        engine solve per step (default).  ``False`` runs the sequential
        per-WE reference path; both produce bit-identical results.
    screening:
        Opt-in coarse execution profile for explore/sweep workloads
        that only rank candidates: fewer dwell nodes and a coarser CV
        grid.  Off by default; screening results are *not* bit-
        comparable to full-fidelity runs and the api layer keys and
        provenance-flags them separately.
    """

    #: Full-fidelity spatial resolution (the reference profile).
    CA_N_NODES = 60
    CV_GRID_GROWTH = 1.10
    #: Screening-profile resolution: ranks candidates, trades accuracy.
    SCREENING_CA_N_NODES = 24
    SCREENING_CV_GRID_GROWTH = 1.30

    def __init__(self, ca_dwell: float = 60.0,
                 cv_window_margin: float = 0.25,
                 scan_rate: float = 0.020,
                 sample_rate: float = 10.0,
                 settle_between: float = 1.0,
                 peak_min_height: float = 2.0e-9,
                 ca_injections: (InjectionSchedule
                                 | Mapping[str, InjectionSchedule]
                                 | None) = None,
                 batch_electrodes: bool = True,
                 screening: bool = False) -> None:
        self.ca_dwell = ensure_positive(ca_dwell, "ca_dwell")
        self.cv_window_margin = ensure_positive(
            cv_window_margin, "cv_window_margin")
        self.scan_rate = ensure_positive(scan_rate, "scan_rate")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.settle_between = ensure_positive(settle_between, "settle_between")
        self.peak_min_height = ensure_positive(
            peak_min_height, "peak_min_height")
        self.ca_injections = ca_injections
        self.batch_electrodes = bool(batch_electrodes)
        self.screening = bool(screening)
        self.ca_n_nodes = (self.SCREENING_CA_N_NODES if self.screening
                           else self.CA_N_NODES)
        self.cv_grid_growth = (self.SCREENING_CV_GRID_GROWTH
                               if self.screening else self.CV_GRID_GROWTH)
        schedules = (ca_injections.values()
                     if isinstance(ca_injections, Mapping)
                     else [ca_injections])
        for schedule in schedules:
            # None (bare or inside a mapping) means "no schedule".
            if schedule is None:
                continue
            if schedule.duration_hint >= self.ca_dwell:
                raise ProtocolError(
                    "the last injection falls outside the record duration")

    def run(self, cell: ElectrochemicalCell, chain: AcquisitionChain,
            rng: np.random.Generator | None = None) -> PanelResult:
        """Measure every WE in order; return the assembled panel result."""
        generator = rng if rng is not None else np.random.default_rng(2011)
        ca_rows: dict[str, tuple[ChronoDwell, np.ndarray, np.ndarray]] | None
        if self.batch_electrodes:
            ca_rows = {}
            dwells = self.plan_dwells(cell, chain)
            if dwells:
                times = uniform_sample_times(self.ca_dwell, self.sample_rate)
                currents = DwellBatch(dwells, times).simulate()
                ca_rows = {dwell.we_name: (dwell, times, currents[i])
                           for i, dwell in enumerate(dwells)}
        else:
            ca_rows = None
        return self.assemble(cell, chain, generator, ca_rows)

    # -- planning and assembly -----------------------------------------------------

    def _injections_for(self, we_name: str) -> InjectionSchedule | None:
        if isinstance(self.ca_injections, Mapping):
            return self.ca_injections.get(we_name)
        return self.ca_injections

    def _ca_setpoint(self, cell: ElectrochemicalCell, we_name: str) -> float:
        we = cell.working_electrode(we_name)
        if isinstance(we.probe, Oxidase):
            return we.effective_h2o2_wave().potential_for_efficiency(0.95)
        return 0.65  # the generic H2O2 potential of Sec. I-B

    def plan_dwells(self, cell: ElectrochemicalCell,
                     chain: AcquisitionChain) -> list[ChronoDwell]:
        """Engine-ready dwells for every chronoamperometric WE, in order.

        This is the unit the fused paths batch over — within this cell
        here, and across cells in
        :class:`~repro.engine.scheduler.AssayScheduler`.
        """
        dwells: list[ChronoDwell] = []
        for we in cell.working_electrodes:
            if isinstance(we.probe, CytochromeP450):
                continue
            e_set = self._ca_setpoint(cell, we.name)
            e_applied = chain.potentiostat.applied_potential(e_set)
            dwells.append(ChronoDwell(
                cell, we.name, float(e_applied), dt=1.0 / self.sample_rate,
                injections=self._injections_for(we.name),
                n_nodes=self.ca_n_nodes, e_setpoint=e_set))
        return dwells

    def plan_sweeps(self, cell: ElectrochemicalCell,
                    chain: AcquisitionChain) -> list[CvSweep]:
        """Compiled CV sweeps for every CYP WE, in electrode order.

        This is the unit :class:`~repro.engine.scheduler.SweepBatch`
        fuses across cells; each sweep carries its own potential
        program, backgrounds and channel simulators, evaluated exactly
        as the sequential :meth:`_run_cv` path would.
        """
        sweeps: list[CvSweep] = []
        for we in cell.working_electrodes:
            if not isinstance(we.probe, CytochromeP450):
                continue
            sweeps.append(
                self._cv_protocol(we).plan_sweep(cell, we.name, chain))
        return sweeps

    def assemble(self, cell: ElectrochemicalCell, chain: AcquisitionChain,
                  generator: np.random.Generator,
                  ca_rows: (dict[str, tuple[ChronoDwell, np.ndarray,
                                            np.ndarray]] | None),
                  cv_rows: (dict[str, tuple[CvSweep, np.ndarray]]
                            | None) = None,
                  readings: dict | None = None,
                  ) -> PanelResult:
        """Digitise and quantify every WE in electrode order.

        ``ca_rows`` maps WE names to their pre-simulated batched dwell
        chemistry; ``None`` runs the sequential per-WE reference path
        instead.  ``cv_rows`` likewise maps CYP WE names to their fused
        ``(sweep, true_current)`` pairs; missing entries run the
        per-sweep path.  ``readings`` supplies pre-digitised
        :class:`~repro.electronics.chain.ChannelReading` objects per WE
        (the fleet scheduler's group-digitisation output, built from
        noise pre-drawn off ``generator`` in this same electrode
        order); for WEs without one the chain's RNG is consumed
        in-place, strictly in electrode order — the contract that keeps
        every path bit-identical.
        """
        traces: dict[str, Trace] = {}
        voltammograms: dict[str, Voltammogram] = {}
        readouts: dict[str, TargetReadout] = {}
        blank_current: float | None = None
        blank_e_applied: float | None = None
        assay_time = 0.0

        for we in cell.working_electrodes:
            assay_time += self.settle_between
            probe = we.probe
            if isinstance(probe, CytochromeP450):
                if cv_rows is not None and we.name in cv_rows:
                    sweep, row = cv_rows[we.name]
                    reading = (readings.get(we.name)
                               if readings is not None else None)
                    if reading is None:
                        reading = chain.digitize(sweep.times, row, we=we,
                                                 rng=generator)
                    voltammogram = sweep.to_voltammogram(row, reading)
                else:
                    voltammogram = self._run_cv(cell, we.name, chain,
                                                generator)
                voltammograms[we.name] = voltammogram
                assay_time += voltammogram.times[-1]
                self._extract_cyp_readouts(we.name, probe, voltammogram,
                                           readouts)
                continue
            if ca_rows is None:
                trace, e_applied = self._run_ca(cell, we.name, chain,
                                                generator)
            else:
                dwell, times, row = ca_rows[we.name]
                reading = (readings.get(we.name)
                           if readings is not None else None)
                if reading is None:
                    reading = chain.digitize(times, row, we=we,
                                             rng=generator)
                trace = Trace(times=times, current=reading.current_estimate,
                              true_current=row, channel=we.name,
                              reading=reading)
                e_applied = dwell.e_applied
            traces[we.name] = trace
            assay_time += trace.duration
            if isinstance(probe, Oxidase):
                readouts[probe.substrate] = TargetReadout(
                    target=probe.substrate, we_name=we.name,
                    method="chronoamperometry",
                    signal=trace.tail_mean(), e_applied=e_applied)
            else:
                blank_current = trace.tail_mean()
                blank_e_applied = e_applied
        return PanelResult(traces=traces, voltammograms=voltammograms,
                           readouts=readouts, assay_time=assay_time,
                           blank_current=blank_current,
                           blank_e_applied=blank_e_applied)

    # -- per-mode runners ----------------------------------------------------------

    def _run_ca(self, cell: ElectrochemicalCell, we_name: str,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> tuple[Trace, float]:
        protocol = Chronoamperometry(
            e_setpoint=self._ca_setpoint(cell, we_name),
            duration=self.ca_dwell, sample_rate=self.sample_rate,
            injections=self._injections_for(we_name),
            n_nodes=self.ca_n_nodes)
        result = protocol.run(cell, we_name, chain, rng=rng)
        return result.trace, result.e_applied

    def _cv_protocol(self, we: WorkingElectrode) -> CyclicVoltammetry:
        probe = we.probe
        assert isinstance(probe, CytochromeP450)
        potentials = [ch.reduction_potential for ch in probe.channels]
        e_start = max(potentials) + self.cv_window_margin
        e_vertex = min(potentials) - self.cv_window_margin
        waveform = TriangleWaveform(e_start=e_start, e_vertex=e_vertex,
                                    scan_rate=self.scan_rate)
        return CyclicVoltammetry(waveform, sample_rate=self.sample_rate,
                                 grid_growth=self.cv_grid_growth)

    def _run_cv(self, cell: ElectrochemicalCell, we_name: str,
                chain: AcquisitionChain,
                rng: np.random.Generator) -> Voltammogram:
        we = cell.working_electrode(we_name)
        protocol = self._cv_protocol(we)
        return protocol.run(cell, we_name, chain, rng=rng).voltammogram

    def _extract_cyp_readouts(self, we_name: str, probe: CytochromeP450,
                              voltammogram: Voltammogram,
                              readouts: dict[str, TargetReadout]) -> None:
        candidates = {ch.substrate: ch.reduction_potential
                      for ch in probe.channels}
        # Semi-derivative detection: diffusion tails of large waves bury
        # small neighbours' raw prominences (benzphetamine under
        # aminopyrine at panel loadings); the half-derivative returns to
        # baseline between waves and resolves the shoulder honestly.
        peaks = find_peaks(voltammogram, cathodic=True,
                           min_height=self.peak_min_height,
                           smooth_samples=7, method="semiderivative")
        assignment = assign_peaks(peaks, candidates)
        for target, peak in assignment.matches.items():
            readouts[target] = TargetReadout(
                target=target, we_name=we_name, method="cyclic_voltammetry",
                signal=peak.height, peak=peak)
