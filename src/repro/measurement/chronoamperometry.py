"""Chronoamperometry: fixed-potential current-versus-time measurement.

The oxidase detection mode of the paper (Sec. I-B): hold the working
electrode at the applied potential of Table I, watch the current rise
after each analyte injection and settle toward a steady state (Fig. 3
shows ~30 s for a glucose sensor).

The transient is the diffusion layer re-equilibrating, so the simulator
integrates the 1-D substrate field with the enzyme film as a
Newton-linearised Michaelis-Menten boundary (Crank-Nicolson, implicit
surface term).  Every consuming mechanism on the electrode contributes:

- oxidase films (H2O2 path, collection efficiency at the held potential),
- CYP channels held below their reduction potential (linear sink),
- direct oxidisers (dopamine/etoposide) on any electrode — including
  blanks, which is what breaks CDS for those molecules.

All mechanisms of a dwell advance together through
:class:`repro.engine.simulation.SimulationEngine` — one batched
linear-surface solve per sample; the ``_Mechanism`` classes stay as the
scalar reference the engine is built from (and verified against).

The mechanism-building machinery is exposed as engine-facing module
functions (:func:`build_mechanisms`, :func:`refresh_mechanisms`,
:func:`initial_mechanism_current`, :func:`static_current`) and bundled
per electrode by :class:`ChronoDwell`, so cross-electrode and cross-cell
steppers (:class:`~repro.measurement.panel.PanelProtocol`'s fused path,
:class:`~repro.engine.scheduler.DwellBatch`) can advance many dwells
through one shared solve.  :class:`Chronoamperometry` itself integrates
through a single-dwell :class:`~repro.engine.scheduler.DwellBatch`, so
there is exactly one stepping code path at every fan-out level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem import constants as C
from repro.chem.diffusion import CrankNicolsonDiffusion, Grid1D
from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.chem.redox import OxidationEfficiency
from repro.chem.solution import InjectionSchedule
from repro.chem.species import get_species
from repro.electronics.chain import AcquisitionChain
from repro.electronics.waveform import uniform_sample_times
from repro.engine.scheduler import DwellBatch
from repro.errors import ProtocolError
from repro.measurement.trace import Trace
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import WorkingElectrode
from repro.units import ensure_positive

__all__ = [
    "Chronoamperometry",
    "ChronoamperometryResult",
    "ChronoDwell",
    "build_mechanisms",
    "refresh_mechanisms",
    "initial_mechanism_current",
    "static_current",
]

#: Effective heterogeneous rate for species that oxidise directly on the
#: electrode (transport-limited once past their wave), m/s.
_DIRECT_RATE = 1.0e-3


class _Mechanism:
    """One consuming surface reaction on one diffusion field."""

    def __init__(self, solver: CrankNicolsonDiffusion, c0_field: np.ndarray,
                 electrons: float, sign: float) -> None:
        self.solver = solver
        self.field = c0_field
        self.electrons = electrons
        self.sign = sign  # +1 anodic (oxidation), -1 cathodic (reduction)

    def step(self) -> float:
        """Advance dt; return the reaction flux, mol/(m^2 s)."""
        raise NotImplementedError

    def current(self, area: float, flux: float) -> float:
        return self.sign * self.electrons * C.FARADAY * area * flux


class _MichaelisMentenMechanism(_Mechanism):
    """Oxidase film: Newton-linearised MM sink, current via eta(E)."""

    def __init__(self, solver, field, film, eta: float, electrons: int):
        super().__init__(solver, field, electrons * eta, sign=+1.0)
        self.film = film

    def step(self) -> float:
        c0 = float(self.field[0])
        rate = self.film.rate(c0)
        # d(rate)/dc at c0 — always >= 0, keeps the matrix dominant.
        slope = self.film.vmax * self.film.km / (self.film.km + max(c0, 0.0)) ** 2
        a = rate - slope * c0
        self.field = self.solver.step_linear_surface(self.field, a, slope)
        return self.film.rate(float(self.field[0]))


class _LinearSinkMechanism(_Mechanism):
    """First-order surface sink (CYP at fixed E, direct oxidisers)."""

    def __init__(self, solver, field, rate_constant: float,
                 electrons: float, sign: float):
        super().__init__(solver, field, electrons, sign)
        self.rate_constant = max(rate_constant, 0.0)

    def step(self) -> float:
        self.field = self.solver.step_linear_surface(
            self.field, 0.0, self.rate_constant)
        return self.rate_constant * float(self.field[0])


# -- engine-facing dwell chemistry ------------------------------------------------


def _diffusion_field(we: WorkingElectrode, species: str, bulk: float,
                     dt: float, n_nodes: int,
                     ) -> tuple[CrankNicolsonDiffusion, np.ndarray]:
    """A species' solver + initial profile over this electrode's layer."""
    sp = get_species(species)
    d_eff = sp.diffusivity * we.functionalization.permeability
    delta = we.effective_nernst_layer(species)
    grid = Grid1D.uniform(delta, n_nodes)
    solver = CrankNicolsonDiffusion(grid, d_eff, dt,
                                    bulk_boundary="dirichlet")
    field = np.full(grid.n_nodes, max(bulk, 0.0))
    return solver, field


def build_mechanisms(we: WorkingElectrode, chamber, e: float, dt: float,
                     n_nodes: int = 60) -> dict[str, _Mechanism]:
    """One consuming mechanism per electroactive species on ``we``.

    Oxidase probes contribute their substrate's Michaelis-Menten film,
    CYP probes one first-order sink per channel at the held potential,
    and every species in the chamber with a direct-oxidation wave adds a
    sink on any electrode (including blanks — what breaks CDS for those
    molecules).
    """
    mechanisms: dict[str, _Mechanism] = {}
    probe = we.probe
    if isinstance(probe, Oxidase):
        species = probe.substrate
        solver, field = _diffusion_field(we, species, chamber.bulk(species),
                                         dt, n_nodes)
        eta = we.effective_h2o2_wave().at(e)
        mechanisms[species] = _MichaelisMentenMechanism(
            solver, field, we.effective_film(), eta,
            probe.electrons_per_substrate)
    elif isinstance(probe, CytochromeP450):
        for channel in probe.channels:
            species = channel.substrate
            bulk = chamber.bulk(species)
            saturation = channel.km / (channel.km + bulk) if bulk else 1.0
            gain = we.functionalization.signal_gain
            solver, field = _diffusion_field(we, species,
                                             bulk * channel.efficiency
                                             * saturation * gain, dt, n_nodes)
            kf, _ = channel.kinetics.rate_constants(e)
            kf *= we.material.k0_scale * we.functionalization.k0_gain
            n = channel.kinetics.couple.n_electrons
            mechanisms[species] = _LinearSinkMechanism(
                solver, field, kf, n, sign=-1.0)
    for name in chamber.species_present():
        sp = get_species(name)
        if sp.direct_oxidation_potential is None or name in mechanisms:
            continue
        wave = OxidationEfficiency(e_half=sp.direct_oxidation_potential)
        solver, field = _diffusion_field(we, name, chamber.bulk(name),
                                         dt, n_nodes)
        mechanisms[name] = _LinearSinkMechanism(
            solver, field, _DIRECT_RATE * wave.at(e),
            sp.n_electrons, sign=+1.0)
    return mechanisms


def refresh_mechanisms(mechanisms: dict[str, _Mechanism],
                       we: WorkingElectrode, chamber, e: float,
                       dt: float, n_nodes: int = 60) -> None:
    """Refresh bulk boundaries after an injection (create new fields).

    Existing mechanisms keep their relaxed profile and only lift the
    bulk boundary node — stirring refreshes the bulk instantly, the
    layer lags — while newly present species get fresh fields.
    """
    rebuilt = build_mechanisms(we, chamber, e, dt, n_nodes)
    for name, fresh in rebuilt.items():
        if name in mechanisms:
            old = mechanisms[name]
            new_bulk = float(fresh.field[-1])
            old.field = old.field.copy()
            old.field[-1] = new_bulk
            if isinstance(old, _LinearSinkMechanism) and isinstance(
                    fresh, _LinearSinkMechanism):
                old.rate_constant = fresh.rate_constant
        else:
            mechanisms[name] = fresh


def initial_mechanism_current(we: WorkingElectrode,
                              mechanisms: dict[str, _Mechanism]) -> float:
    """Mechanism current at t=0 (surface still at bulk concentration)."""
    total = 0.0
    for mech in mechanisms.values():
        if isinstance(mech, _MichaelisMentenMechanism):
            flux = mech.film.rate(float(mech.field[0]))
        elif isinstance(mech, _LinearSinkMechanism):
            flux = mech.rate_constant * float(mech.field[0])
        else:  # pragma: no cover - no other mechanisms exist
            flux = 0.0
        total += mech.current(we.area, flux)
    return total


def static_current(cell: ElectrochemicalCell, we_name: str,
                   e: float) -> float:
    """Leakage and (steady) cross-talk — not transient-simulated."""
    we = cell.working_electrode(we_name)
    static = we.electrode.leakage_current()
    if len(cell.working_electrodes) > 1:
        static += cell.crosstalk_current(we_name, e)
    return static


class ChronoDwell:
    """Engine-facing chemistry of one chronoamperometric dwell on one WE.

    Everything :meth:`Chronoamperometry.simulate_true_current` tracks
    for one electrode — mechanism set, its own chamber copy, static
    current, injection schedule — packaged so cross-electrode and
    cross-cell steppers (:class:`~repro.measurement.panel.PanelProtocol`
    and :class:`~repro.engine.scheduler.AssayScheduler`, through
    :class:`~repro.engine.scheduler.DwellBatch`) can advance many dwells
    through one shared engine.  The caller's chamber is copied —
    protocols never mutate their inputs.
    """

    def __init__(self, cell: ElectrochemicalCell, we_name: str,
                 e_applied: float, dt: float,
                 injections: InjectionSchedule | None = None,
                 n_nodes: int = 60, e_setpoint: float | None = None) -> None:
        self.we = cell.working_electrode(we_name)
        self.we_name = we_name
        self.e_applied = float(e_applied)
        self.e_setpoint = (float(e_setpoint) if e_setpoint is not None
                           else float(e_applied))
        self.dt = ensure_positive(dt, "dt")
        self.n_nodes = int(n_nodes)
        self.injections = injections if injections else InjectionSchedule()
        self.chamber = cell.chamber.copy()
        self.static = static_current(cell, we_name, self.e_applied)
        self.mechanisms = build_mechanisms(
            self.we, self.chamber, self.e_applied, self.dt, self.n_nodes)

    def initial_current(self) -> float:
        """Cell current at t=0 (static plus instant mechanism response)."""
        return self.static + initial_mechanism_current(self.we,
                                                       self.mechanisms)

    def apply_injection_events(self, events) -> None:
        """Inject each event into this dwell's chamber and refresh fields.

        Call only with the batched state synced back onto the mechanism
        objects (:meth:`~repro.engine.simulation.SimulationEngine.
        sync_back`); the caller rebuilds its engine afterwards.
        """
        for injection in events:
            self.chamber.inject(injection)
            refresh_mechanisms(self.mechanisms, self.we, self.chamber,
                               self.e_applied, self.dt, self.n_nodes)

    def current_from_fluxes(self, fluxes: np.ndarray) -> float:
        """Total cell current given this dwell's slice of batch fluxes."""
        total = self.static
        area = self.we.area
        for mech, flux in zip(self.mechanisms.values(), fluxes):
            total += mech.current(area, float(flux))
        return total

    def current_coefficients(self) -> np.ndarray:
        """One current-per-flux factor per mechanism, in mechanism order.

        ``static + coefficients @ fluxes`` equals
        :meth:`current_from_fluxes` term for term: each factor is
        ``sign * electrons * F * area``, multiplied out in the same
        left-to-right order ``_Mechanism.current`` uses, so vectorised
        callers (:class:`~repro.engine.scheduler.DwellBatch`'s compiled
        step program) reproduce the scalar sum bit for bit.  Recompute
        after injections — they can add mechanisms.
        """
        area = self.we.area
        return np.asarray([mech.sign * mech.electrons * C.FARADAY * area
                           for mech in self.mechanisms.values()])


@dataclass(frozen=True)
class ChronoamperometryResult:
    """Outcome of one chronoamperometric run on one WE."""

    trace: Trace
    we_name: str
    e_setpoint: float
    e_applied: float


class Chronoamperometry:
    """Fixed-potential protocol with an injection schedule.

    Parameters
    ----------
    e_setpoint:
        Requested WE-RE potential, volts (Table I column for oxidases).
    duration:
        Total record length, seconds.
    sample_rate:
        Samples per second (also the chemistry time step).
    injections:
        Bulk-concentration steps over time; empty by default (measure a
        pre-loaded chamber).
    n_nodes:
        Spatial nodes across each electrode's diffusion layer.
    """

    def __init__(self, e_setpoint: float, duration: float,
                 sample_rate: float = 10.0,
                 injections: InjectionSchedule | None = None,
                 n_nodes: int = 60) -> None:
        self.e_setpoint = float(e_setpoint)
        self.duration = ensure_positive(duration, "duration")
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.injections = injections if injections else InjectionSchedule()
        if n_nodes < 5:
            raise ProtocolError("n_nodes must be >= 5")
        self.n_nodes = n_nodes
        if self.injections.duration_hint >= self.duration:
            raise ProtocolError(
                "the last injection falls outside the record duration")

    # -- chemistry ---------------------------------------------------------------

    def simulate_true_current(self, cell: ElectrochemicalCell, we_name: str,
                              e_applied: float | None = None,
                              ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate the cell chemistry; return (times, currents).

        ``e_applied`` defaults to the setpoint (protocol users pass the
        potentiostat's actual output).  The caller's chamber is copied —
        protocols never mutate their inputs.
        """
        e = self.e_setpoint if e_applied is None else float(e_applied)
        times = uniform_sample_times(self.duration, self.sample_rate)
        dwell = self.build_dwell(cell, we_name, e_applied=e)
        currents = DwellBatch([dwell], times).simulate()[0]
        return times, currents

    def build_dwell(self, cell: ElectrochemicalCell, we_name: str,
                    e_applied: float | None = None) -> ChronoDwell:
        """This protocol's dwell chemistry for one WE, engine-ready.

        The returned :class:`ChronoDwell` is what a
        :class:`~repro.engine.scheduler.DwellBatch` fuses across
        electrodes and cells; :meth:`simulate_true_current` is exactly a
        single-dwell batch of it.
        """
        e = self.e_setpoint if e_applied is None else float(e_applied)
        return ChronoDwell(cell, we_name, e, dt=1.0 / self.sample_rate,
                           injections=self.injections, n_nodes=self.n_nodes,
                           e_setpoint=self.e_setpoint)

    def run(self, cell: ElectrochemicalCell, we_name: str,
            chain: AcquisitionChain,
            rng: np.random.Generator | None = None) -> ChronoamperometryResult:
        """Full protocol: chemistry transient digitised through ``chain``."""
        e_applied = chain.potentiostat.applied_potential(self.e_setpoint)
        times, currents = self.simulate_true_current(cell, we_name, e_applied)
        we = cell.working_electrode(we_name)
        reading = chain.digitize(times, currents, we=we, rng=rng)
        trace = Trace(times=times, current=reading.current_estimate,
                      true_current=currents, channel=we_name,
                      reading=reading)
        return ChronoamperometryResult(
            trace=trace, we_name=we_name,
            e_setpoint=self.e_setpoint, e_applied=float(e_applied))

    # -- internals ------------------------------------------------------------------
    # Thin wrappers over the module-level engine-facing functions, kept
    # as the protocol-local reference API (tests pin equivalence on it).

    def _build_mechanisms(self, we: WorkingElectrode, chamber, e: float,
                          dt: float) -> dict[str, _Mechanism]:
        """One mechanism per electroactive species on this electrode."""
        return build_mechanisms(we, chamber, e, dt, self.n_nodes)

    def _apply_injection(self, mechanisms: dict[str, _Mechanism],
                         we: WorkingElectrode, chamber, e: float,
                         dt: float) -> None:
        """Refresh bulk boundaries (and create fields for new species)."""
        refresh_mechanisms(mechanisms, we, chamber, e, dt, self.n_nodes)

    def _instant_current(self, we: WorkingElectrode,
                         mechanisms: dict[str, _Mechanism]) -> float:
        """Current at t=0 (surface still at bulk concentration)."""
        return initial_mechanism_current(we, mechanisms)

    def _static_current(self, cell: ElectrochemicalCell, we_name: str,
                        e: float) -> float:
        """Leakage and (steady) cross-talk — not transient-simulated."""
        return static_current(cell, we_name, e)
