"""Measurement protocols: chronoamperometry, cyclic voltammetry, panels."""

from repro.measurement.chronoamperometry import (
    Chronoamperometry,
    ChronoamperometryResult,
    ChronoDwell,
)
from repro.measurement.panel import PanelProtocol, PanelResult, TargetReadout
from repro.measurement.peaks import Peak, PeakAssignment, assign_peaks, find_peaks
from repro.measurement.pulse_voltammetry import (
    DifferentialPulseVoltammetry,
    DpvPeak,
    DpvResult,
)
from repro.measurement.trace import Trace, Voltammogram
from repro.measurement.voltammetry import (
    CyclicVoltammetry,
    CyclicVoltammetryResult,
)

__all__ = [
    "Trace", "Voltammogram",
    "Chronoamperometry", "ChronoamperometryResult", "ChronoDwell",
    "CyclicVoltammetry", "CyclicVoltammetryResult",
    "Peak", "PeakAssignment", "find_peaks", "assign_peaks",
    "PanelProtocol", "PanelResult", "TargetReadout",
    "DifferentialPulseVoltammetry", "DpvResult", "DpvPeak",
]
