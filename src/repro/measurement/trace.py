"""Measurement result containers.

Two shapes of data come out of the paper's protocols:

- :class:`Trace` — a current-versus-time record (chronoamperometry),
- :class:`Voltammogram` — a current-versus-potential record with sweep
  bookkeeping (cyclic voltammetry).

Both wrap the digitised current *estimates* (post TIA/ADC); raw readings
(:class:`~repro.electronics.chain.ChannelReading`) stay attached for
anyone who needs codes or saturation flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.electronics.chain import ChannelReading
from repro.errors import AnalysisError
from repro.units import ensure_positive

__all__ = ["Trace", "Voltammogram"]


@dataclass(frozen=True)
class Trace:
    """A uniformly sampled current-versus-time record.

    ``current`` is the calibrated estimate reconstructed from ADC codes;
    ``true_current`` the noiseless cell current (available because this is
    a simulator — benches use it to separate chain error from chemistry).
    """

    times: np.ndarray
    current: np.ndarray
    true_current: np.ndarray | None = None
    channel: str = ""
    reading: ChannelReading | None = None

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        i = np.asarray(self.current, dtype=float)
        if t.ndim != 1 or t.size < 2:
            raise AnalysisError("a trace needs at least two samples")
        if i.shape != t.shape:
            raise AnalysisError("times/current shape mismatch")
        object.__setattr__(self, "times", t)
        object.__setattr__(self, "current", i)
        if self.true_current is not None:
            tc = np.asarray(self.true_current, dtype=float)
            if tc.shape != t.shape:
                raise AnalysisError("true_current shape mismatch")
            object.__setattr__(self, "true_current", tc)

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    @property
    def sample_rate(self) -> float:
        return 1.0 / float(self.times[1] - self.times[0])

    @property
    def duration(self) -> float:
        return float(self.times[-1] - self.times[0])

    def window(self, t_start: float, t_end: float) -> "Trace":
        """The sub-trace with t_start <= t <= t_end."""
        if t_end <= t_start:
            raise AnalysisError("window end must be after start")
        mask = (self.times >= t_start) & (self.times <= t_end)
        if int(np.count_nonzero(mask)) < 2:
            raise AnalysisError(
                f"window [{t_start}, {t_end}] holds fewer than 2 samples")
        return Trace(
            times=self.times[mask], current=self.current[mask],
            true_current=(self.true_current[mask]
                          if self.true_current is not None else None),
            channel=self.channel)

    def tail_mean(self, fraction: float = 0.2) -> float:
        """Mean of the last ``fraction`` of samples (steady-state value)."""
        return float(np.mean(self._tail(fraction)))

    def tail_std(self, fraction: float = 0.2) -> float:
        """Standard deviation over the steady tail (noise estimate)."""
        return float(np.std(self._tail(fraction)))

    def smoothed(self, window: int = 11) -> "Trace":
        """Moving-average copy (odd ``window``), for metric extraction.

        Response-time metrics read threshold crossings; on noisy records
        the band edges are re-crossed by noise long after the chemistry
        has settled, so the practitioner smooths first (the paper's
        Fig. 3 curve is visibly filtered too).
        """
        if window < 1 or window % 2 == 0:
            raise AnalysisError("window must be an odd integer >= 1")
        if window == 1 or window >= self.n_samples:
            return self
        kernel = np.ones(window) / window
        padded = np.concatenate([
            np.full(window // 2, self.current[0]),
            self.current,
            np.full(window // 2, self.current[-1])])
        smooth = np.convolve(padded, kernel, mode="valid")
        return Trace(times=self.times, current=smooth,
                     true_current=self.true_current, channel=self.channel)

    def max_slope(self) -> tuple[float, float]:
        """(time, dI/dt) of the steepest rise — the transient response
        marker of Sec. II-B: "the time necessary for the first derivative
        ... to reach its maximum value"."""
        slope = np.gradient(self.current, self.times)
        k = int(np.argmax(slope))
        return float(self.times[k]), float(slope[k])

    def _tail(self, fraction: float) -> np.ndarray:
        if not 0.0 < fraction <= 1.0:
            raise AnalysisError("fraction must be in (0, 1]")
        n = max(int(self.n_samples * fraction), 2)
        return self.current[-n:]


@dataclass(frozen=True)
class Voltammogram:
    """A cyclic-voltammetry record: current against swept potential.

    ``potentials`` is the applied potential at each sample; ``sweep_sign``
    holds +1 on anodic legs and -1 on cathodic legs, which is how the
    peak detector separates forward and return waves.
    """

    times: np.ndarray
    potentials: np.ndarray
    current: np.ndarray
    sweep_sign: np.ndarray
    scan_rate: float
    channel: str = ""
    true_current: np.ndarray | None = None
    reading: ChannelReading | None = None

    def __post_init__(self) -> None:
        t = np.asarray(self.times, dtype=float)
        for name in ("potentials", "current", "sweep_sign"):
            arr = np.asarray(getattr(self, name), dtype=float)
            if arr.shape != t.shape:
                raise AnalysisError(f"{name} shape mismatch")
            object.__setattr__(self, name, arr)
        object.__setattr__(self, "times", t)
        ensure_positive(self.scan_rate, "scan_rate")

    @property
    def n_samples(self) -> int:
        return int(self.times.size)

    def leg(self, cathodic: bool = True, cycle: int = 0) -> "Voltammogram":
        """One sweep leg of one cycle (cathodic = reduction direction).

        Cycles are numbered from 0; the record must contain the requested
        cycle.
        """
        sign = -1.0 if cathodic else 1.0
        mask = self.sweep_sign == sign
        if not np.any(mask):
            raise AnalysisError("no samples in the requested direction")
        # Split contiguous runs of the requested direction; run k is cycle k.
        idx = np.flatnonzero(mask)
        breaks = np.flatnonzero(np.diff(idx) > 1)
        runs = np.split(idx, breaks + 1)
        if cycle >= len(runs):
            raise AnalysisError(
                f"cycle {cycle} not in record ({len(runs)} runs)")
        take = runs[cycle]
        return Voltammogram(
            times=self.times[take], potentials=self.potentials[take],
            current=self.current[take], sweep_sign=self.sweep_sign[take],
            scan_rate=self.scan_rate, channel=self.channel,
            true_current=(self.true_current[take]
                          if self.true_current is not None else None))

    def current_at(self, potential: float, cathodic: bool = True,
                   cycle: int = 0) -> float:
        """Interpolated current at ``potential`` on the chosen leg."""
        leg = self.leg(cathodic=cathodic, cycle=cycle)
        order = np.argsort(leg.potentials)
        return float(np.interp(potential, leg.potentials[order],
                               leg.current[order]))
