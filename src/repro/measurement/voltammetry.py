"""Cyclic voltammetry: the CYP detection mode (paper Sec. I-B).

"Cyclic voltammetry applies a linear-sweep potential forward and backward
within a potential window ... the current is plotted as function of the
voltage and the plot is characterized by some peaks, whose height is
proportional to the target concentration, while position gives information
on the type of molecules."

The simulator integrates, per CYP substrate channel, the coupled oxidised/
reduced diffusion fields with a Butler-Volmer boundary.  Both fields share
one Crank-Nicolson operator; the nonlinear surface coupling is resolved
*exactly* per step through a Schur complement:

    J = (kf*u_ox0 - kb*u_red0) / (1 + s*w0*(kf + kb))

where ``u`` are the unconstrained CN solutions, ``w`` the cached surface
response and ``s = dt/V0``.  No inner iteration is needed, and the scheme
is unconditionally stable.

On top of the faradaic peaks the cell contributes the double-layer
charging current (a hysteresis rectangle proportional to electrode area
and scan rate — the background the paper's microelectrode argument is
about) and, for oxidase-functionalized electrodes swept anodically, the
steady H2O2 oxidation wave.

The protocol advances its channels through
:class:`repro.engine.simulation.SimulationEngine`: all 2M ox/red fields
of a sweep move in one batched tridiagonal solve per sample.
:class:`_RedoxChannelSimulator` remains the scalar reference the engine
is built from (and verified against, bit for bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem import constants as C
from repro.chem.diffusion import CrankNicolsonDiffusion, Grid1D, default_domain_length
from repro.chem.enzymes import CytochromeP450, Oxidase
from repro.chem.species import get_species
from repro.electronics.chain import AcquisitionChain
from repro.electronics.waveform import TriangleWaveform, uniform_sample_times
from repro.engine.simulation import SimulationEngine
from repro.errors import ProtocolError
from repro.measurement.trace import Voltammogram
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import WorkingElectrode
from repro.units import ensure_positive

__all__ = ["CvSweep", "CyclicVoltammetry", "CyclicVoltammetryResult",
           "build_channel_simulators"]


class _RedoxChannelSimulator:
    """Coupled ox/red diffusion for one CYP substrate channel.

    This is the scalar reference path: the protocols batch these
    objects through :class:`repro.engine.redox.RedoxChannelBatch`, which
    reads the attributes set here and must keep :meth:`step` semantics
    exactly (the engine tests pin bitwise agreement).  ``grid_growth``
    sets the expanding-grid ratio — 1.10 is the full-fidelity default;
    screening mode trades nodes for speed with a coarser ratio.
    """

    def __init__(self, we: WorkingElectrode, substrate: str,
                 c_effective: float, dt: float, duration: float,
                 n_electrons: int, k0: float, alpha: float,
                 e_formal: float, grid_growth: float = 1.10) -> None:
        sp = get_species(substrate)
        d = sp.diffusivity * we.functionalization.permeability
        length = default_domain_length(d, duration)
        first = max(0.25 * math.sqrt(d * dt), length / 4000.0)
        grid = Grid1D.expanding(first, length, growth=grid_growth)
        self.solver = CrankNicolsonDiffusion(grid, d, dt,
                                             bulk_boundary="dirichlet")
        self.c_ox = np.full(grid.n_nodes, max(c_effective, 0.0))
        self.c_red = np.zeros(grid.n_nodes)
        self.n = n_electrons
        self.k0 = k0
        self.alpha = alpha
        self.e_formal = e_formal
        self._s = self.solver.surface_source_scale
        self._w0 = float(self.solver.surface_response()[0])

    def step(self, e_applied: float) -> float:
        """Advance one dt at potential ``e_applied``; return the current-
        defining reduction flux J (mol/(m^2 s), positive = reduction)."""
        f = C.F_OVER_RT
        x = self.n * f * (e_applied - self.e_formal)
        x = min(max(x, -500.0), 500.0)
        kf = self.k0 * math.exp(-self.alpha * x)
        kb = self.k0 * math.exp((1.0 - self.alpha) * x)
        u_ox = self.solver.solve_implicit(self.solver.explicit_rhs(self.c_ox))
        u_red = self.solver.solve_implicit(self.solver.explicit_rhs(self.c_red))
        denominator = 1.0 + self._s * self._w0 * (kf + kb)
        flux = (kf * float(u_ox[0]) - kb * float(u_red[0])) / denominator
        w = self.solver.surface_response()
        self.c_ox = np.clip(u_ox - flux * self._s * w, 0.0, None)
        self.c_red = np.clip(u_red + flux * self._s * w, 0.0, None)
        return flux


def build_channel_simulators(we: WorkingElectrode, chamber, dt: float,
                             duration: float, grid_growth: float = 1.10,
                             ) -> list[_RedoxChannelSimulator]:
    """One coupled ox/red simulator per loaded CYP channel of ``we``.

    Shared by cyclic voltammetry and differential pulse voltammetry —
    the chemistry does not care what shape E(t) takes.
    """
    probe = we.probe
    if not isinstance(probe, CytochromeP450):
        return []
    sims = []
    for channel in probe.channels:
        bulk = chamber.bulk(channel.substrate)
        if bulk <= 0.0:
            continue
        saturation = channel.km / (channel.km + bulk)
        # Nanostructuring wires more enzyme per geometric area, which
        # raises the electroactive concentration the film presents.
        gain = we.functionalization.signal_gain
        c_eff = bulk * channel.efficiency * saturation * gain
        k0 = (channel.kinetics.k0 * we.material.k0_scale
              * we.functionalization.k0_gain)
        sims.append(_RedoxChannelSimulator(
            we=we, substrate=channel.substrate, c_effective=c_eff,
            dt=dt, duration=duration,
            n_electrons=channel.kinetics.couple.n_electrons,
            k0=k0, alpha=channel.kinetics.alpha,
            e_formal=channel.kinetics.couple.e_formal,
            grid_growth=grid_growth))
    return sims


@dataclass
class CvSweep:
    """One planned CV sweep, compiled for cross-cell fusion.

    Everything :meth:`CyclicVoltammetry.simulate_true_current` computes
    *outside* the diffusion solve — the potential program, the
    quasi-static and charging backgrounds, the per-channel
    current-per-flux factors — evaluated once at planning time, so a
    :class:`~repro.engine.scheduler.SweepBatch` can fuse the channels of
    many sweeps into one engine and assemble each sweep's current row
    from the recorded flux history.  ``quasi`` and ``charging`` stay
    separate arrays because the scalar loop adds them in that order
    (``(faradaic + quasi) + charging``) and bit-identity requires the
    same association.
    """

    we_name: str
    we: WorkingElectrode
    waveform: TriangleWaveform
    sample_rate: float
    times: np.ndarray
    potentials: np.ndarray
    sweep_sign: np.ndarray
    e_applied: np.ndarray
    channels: list
    coefficients: np.ndarray
    quasi: np.ndarray
    charging: np.ndarray

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def row_from_fluxes(self, flux_rows) -> np.ndarray:
        """This sweep's true-current row given its slice of batch fluxes.

        ``flux_rows`` is the ``(n_channels, n_samples)`` flux history
        the fused engine recorded for this sweep's channels.  The
        accumulation subtracts one channel term at a time, in channel
        order, exactly as the scalar sample loop does.
        """
        faradaic = np.zeros(self.times.size)
        for j in range(self.n_channels):
            faradaic -= self.coefficients[j] * flux_rows[j]
        return (faradaic + self.quasi) + self.charging

    def to_voltammogram(self, row: np.ndarray, reading) -> Voltammogram:
        """Assemble the digitised record, as :meth:`CyclicVoltammetry.run`."""
        return Voltammogram(
            times=self.times, potentials=np.asarray(self.e_applied),
            current=reading.current_estimate, sweep_sign=self.sweep_sign,
            scan_rate=self.waveform.scan_rate, channel=self.we_name,
            true_current=row, reading=reading)


@dataclass(frozen=True)
class CyclicVoltammetryResult:
    """Outcome of one CV run on one WE."""

    voltammogram: Voltammogram
    we_name: str
    waveform: TriangleWaveform


class CyclicVoltammetry:
    """Cyclic-voltammetry protocol for one working electrode.

    Parameters
    ----------
    waveform:
        The triangular sweep (start, vertex, scan rate, cycles).  The
        paper's accuracy rule caps useful scan rates at ~20 mV/s; faster
        sweeps run, but peak positions shift — the A2 ablation measures
        exactly that, so the protocol only *warns* through the result,
        never refuses.
    sample_rate:
        Samples (and chemistry steps) per second.
    grid_growth:
        Expanding-grid ratio of the channel simulators; the 1.10
        default is the full-fidelity profile, screening mode passes a
        coarser ratio.
    """

    def __init__(self, waveform: TriangleWaveform,
                 sample_rate: float = 20.0,
                 grid_growth: float = 1.10) -> None:
        self.waveform = waveform
        self.sample_rate = ensure_positive(sample_rate, "sample_rate")
        self.grid_growth = ensure_positive(grid_growth, "grid_growth")
        if waveform.duration * sample_rate > 2.0e6:
            raise ProtocolError(
                "waveform too long for the configured sample rate")

    # -- chemistry ---------------------------------------------------------------

    def simulate_true_current(self, cell: ElectrochemicalCell, we_name: str,
                              ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                         np.ndarray]:
        """Integrate the sweep; return (times, potentials, sweep_sign, i)."""
        we = cell.working_electrode(we_name)
        chamber = cell.chamber
        dt = 1.0 / self.sample_rate
        times = uniform_sample_times(self.waveform.duration, self.sample_rate)
        n = times.size
        potentials = self.waveform.value(times)
        rates = self.waveform.rate(times)
        sweep_sign = np.where(rates >= 0.0, 1.0, -1.0)

        channels = self._build_channels(we, chamber, dt)
        engine = (SimulationEngine.for_redox_channels(channels)
                  if channels else None)
        currents = np.empty(n)
        for k in range(n):
            e = float(potentials[k])
            faradaic = 0.0
            if engine is not None:
                fluxes = engine.step(e)
                for j, sim in enumerate(channels):
                    faradaic -= sim.n * C.FARADAY * we.area * float(fluxes[j])
            currents[k] = (faradaic
                           + self._quasi_static_current(cell, we, e)
                           + we.electrode.charging_current(float(rates[k])))
        return times, potentials, sweep_sign, currents

    def run(self, cell: ElectrochemicalCell, we_name: str,
            chain: AcquisitionChain,
            rng: np.random.Generator | None = None) -> CyclicVoltammetryResult:
        """Full protocol: swept chemistry digitised through ``chain``."""
        times, e_set, sweep_sign, currents = self.simulate_true_current(
            cell, we_name)
        e_applied = chain.potentiostat.applied_potential(e_set)
        we = cell.working_electrode(we_name)
        reading = chain.digitize(times, currents, we=we, rng=rng)
        voltammogram = Voltammogram(
            times=times, potentials=np.asarray(e_applied),
            current=reading.current_estimate, sweep_sign=sweep_sign,
            scan_rate=self.waveform.scan_rate, channel=we_name,
            true_current=currents, reading=reading)
        return CyclicVoltammetryResult(
            voltammogram=voltammogram, we_name=we_name,
            waveform=self.waveform)

    def plan_sweep(self, cell: ElectrochemicalCell, we_name: str,
                   chain: AcquisitionChain) -> CvSweep:
        """Compile this protocol's sweep on ``we_name`` for fusion.

        Evaluates every potential-dependent background and per-channel
        factor up front (sampling the same scalar functions the
        reference loop calls, at the same arguments) and builds fresh
        channel simulators, so a :class:`~repro.engine.scheduler.
        SweepBatch` fusing this sweep with others reproduces
        :meth:`simulate_true_current` bit for bit.
        """
        we = cell.working_electrode(we_name)
        chamber = cell.chamber
        dt = 1.0 / self.sample_rate
        times = uniform_sample_times(self.waveform.duration, self.sample_rate)
        n = times.size
        potentials = self.waveform.value(times)
        rates = self.waveform.rate(times)
        sweep_sign = np.where(rates >= 0.0, 1.0, -1.0)
        channels = self._build_channels(we, chamber, dt)
        quasi = np.empty(n)
        charging = np.empty(n)
        for k in range(n):
            quasi[k] = self._quasi_static_current(cell, we,
                                                  float(potentials[k]))
            charging[k] = we.electrode.charging_current(float(rates[k]))
        coefficients = np.asarray([sim.n * C.FARADAY * we.area
                                   for sim in channels])
        e_applied = chain.potentiostat.applied_potential(potentials)
        return CvSweep(we_name=we_name, we=we, waveform=self.waveform,
                       sample_rate=self.sample_rate, times=times,
                       potentials=potentials, sweep_sign=sweep_sign,
                       e_applied=np.asarray(e_applied), channels=channels,
                       coefficients=coefficients, quasi=quasi,
                       charging=charging)

    # -- internals ------------------------------------------------------------------

    def _build_channels(self, we: WorkingElectrode, chamber,
                        dt: float) -> list[_RedoxChannelSimulator]:
        return build_channel_simulators(we, chamber, dt,
                                        self.waveform.duration,
                                        self.grid_growth)

    def _quasi_static_current(self, cell: ElectrochemicalCell,
                              we: WorkingElectrode, e: float) -> float:
        """Non-swept contributions: oxidase wave, direct oxidisers, leakage.

        These follow the potential quasi-statically at <= 20 mV/s (film
        kinetics are fast against the sweep), so their steady-state values
        at the instantaneous potential apply.
        """
        total = we.electrode.leakage_current()
        probe = we.probe
        if isinstance(probe, Oxidase):
            total += we.oxidase_current(probe, e, cell.chamber)
        total += we.direct_oxidation_current(e, cell.chamber)
        return total
