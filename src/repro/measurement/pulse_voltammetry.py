"""Differential pulse voltammetry (DPV) — an extension beyond the paper.

The paper closes by noting that benzphetamine and aminopyrine "have a much
lower sensitivity with respect to the other values" (Sec. III).  The
classic instrumental answer — and the natural next step for the platform's
voltage generator — is DPV: superimpose short potential pulses on a slow
staircase and record the *difference* between the current just before each
pulse and at its end.

Two properties make the differential measurement attractive here:

- **charging rejection** — the double-layer charging spike after each
  step decays with ``tau = R_s * C_dl`` (tens of microseconds for the
  platform's 0.23 mm^2 pads), far faster than the ~100 ms pulse, so both
  samples see essentially zero charging current and the background that
  plagues linear-sweep CV subtracts away;
- **peak-shaped output** — the difference of two sigmoid wave positions
  is a symmetric peak centred near the half-wave potential, which
  resolves adjacent targets without semi-derivative post-processing.

The simulator reuses the coupled ox/red diffusion channels of the CV
engine; only the potential program and the sampling pattern differ.
Like CV, the channels advance through
:class:`repro.engine.simulation.SimulationEngine` — one batched
tridiagonal solve per sample for all channels of the staircase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.chem import constants as C
from repro.electronics.chain import AcquisitionChain
from repro.engine.simulation import SimulationEngine
from repro.errors import ProtocolError
from repro.measurement.voltammetry import build_channel_simulators
from repro.sensors.cell import ElectrochemicalCell
from repro.units import ensure_positive

__all__ = ["DifferentialPulseVoltammetry", "DpvResult", "DpvPeak"]


@dataclass(frozen=True)
class DpvPeak:
    """One detected DPV peak: position (base potential) and height (A)."""

    potential: float
    height: float


@dataclass(frozen=True)
class DpvResult:
    """A DPV record: differential current against staircase potential."""

    base_potentials: np.ndarray
    differential: np.ndarray
    i_before: np.ndarray
    i_pulse: np.ndarray
    pulse_amplitude: float

    @property
    def n_points(self) -> int:
        return int(self.base_potentials.size)

    def find_peaks(self, min_height: float = 1.0e-10,
                   min_separation: float = 0.03) -> tuple[DpvPeak, ...]:
        """Reduction peaks of the differential (cathodic convention)."""
        from scipy.signal import find_peaks as _scipy_find_peaks
        ensure_positive(min_height, "min_height")
        signal = -self.differential
        step = float(np.median(np.abs(np.diff(self.base_potentials))))
        distance = max(int(min_separation / max(step, 1e-12)), 1)
        idx, props = _scipy_find_peaks(signal, prominence=min_height,
                                       distance=distance)
        peaks = [DpvPeak(potential=float(self.base_potentials[i]),
                         height=float(props["prominences"][k]))
                 for k, i in enumerate(idx)]
        return tuple(sorted(peaks, key=lambda p: p.potential, reverse=True))


class DifferentialPulseVoltammetry:
    """DPV protocol: staircase toward ``e_end`` with superimposed pulses.

    Parameters
    ----------
    e_start, e_end:
        Staircase limits, volts; a cathodic scan has ``e_end < e_start``.
    step_potential:
        Staircase increment magnitude per period, volts.
    pulse_amplitude:
        Pulse height, volts, applied in the scan direction.
    pulse_width:
        Pulse duration, seconds.
    period:
        Staircase period, seconds (must exceed the pulse width).
    dt:
        Simulation/sampling time step; must divide the period and leave
        at least two samples inside the pulse.
    sample_window:
        Samples averaged at the end of each phase for the two readings
        (instrumental integration; beats white noise down by sqrt(N)).
    """

    def __init__(self, e_start: float, e_end: float,
                 step_potential: float = 0.005,
                 pulse_amplitude: float = 0.050,
                 pulse_width: float = 0.1,
                 period: float = 0.4,
                 dt: float = 0.02,
                 sample_window: int = 2) -> None:
        if e_end == e_start:
            raise ProtocolError("e_end must differ from e_start")
        ensure_positive(step_potential, "step_potential")
        ensure_positive(pulse_amplitude, "pulse_amplitude")
        ensure_positive(pulse_width, "pulse_width")
        ensure_positive(period, "period")
        ensure_positive(dt, "dt")
        if pulse_width >= period:
            raise ProtocolError("pulse_width must be shorter than the period")
        if pulse_width < 2.0 * dt:
            raise ProtocolError("pulse_width must span at least 2 samples")
        if abs(round(period / dt) - period / dt) > 1e-9:
            raise ProtocolError("dt must divide the period")
        if sample_window < 1:
            raise ProtocolError("sample_window must be >= 1")
        if sample_window * dt > pulse_width / 2.0:
            raise ProtocolError(
                "sample_window covers more than half the pulse; readings "
                "would include the un-settled step")
        self.e_start = float(e_start)
        self.e_end = float(e_end)
        self.direction = 1.0 if e_end > e_start else -1.0
        self.step_potential = step_potential
        self.pulse_amplitude = pulse_amplitude
        self.pulse_width = pulse_width
        self.period = period
        self.dt = dt
        self.sample_window = int(sample_window)
        self.n_steps = int(math.floor(abs(e_end - e_start) / step_potential))
        if self.n_steps < 3:
            raise ProtocolError("window too narrow for the staircase step")

    # -- potential program ---------------------------------------------------

    def potential_program(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, potentials) of the full staircase-plus-pulse waveform."""
        samples_per_period = int(round(self.period / self.dt))
        pulse_samples = int(round(self.pulse_width / self.dt))
        n_total = self.n_steps * samples_per_period
        times = np.arange(n_total) * self.dt
        potentials = np.empty(n_total)
        for k in range(self.n_steps):
            base = self.e_start + self.direction * k * self.step_potential
            start = k * samples_per_period
            end = start + samples_per_period
            potentials[start:end] = base
            potentials[end - pulse_samples:end] = (
                base + self.direction * self.pulse_amplitude)
        return times, potentials

    def _sample_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Indices of (just-before-pulse, end-of-pulse) per period."""
        samples_per_period = int(round(self.period / self.dt))
        pulse_samples = int(round(self.pulse_width / self.dt))
        periods = np.arange(self.n_steps)
        before = (periods + 1) * samples_per_period - pulse_samples - 1
        at_pulse = (periods + 1) * samples_per_period - 1
        return before, at_pulse

    # -- simulation ------------------------------------------------------------

    def simulate_true(self, cell: ElectrochemicalCell,
                      we_name: str) -> DpvResult:
        """Noise-free DPV record (chemistry only)."""
        times, potentials, currents = self._simulate_currents(cell, we_name)
        return self._assemble(potentials, currents)

    def run(self, cell: ElectrochemicalCell, we_name: str,
            chain: AcquisitionChain,
            rng: np.random.Generator | None = None) -> DpvResult:
        """Full protocol: waveform through the chain, then differencing."""
        times, potentials, currents = self._simulate_currents(cell, we_name)
        we = cell.working_electrode(we_name)
        reading = chain.digitize(times, currents, we=we, rng=rng)
        return self._assemble(potentials, reading.current_estimate)

    # -- internals ----------------------------------------------------------------

    def _simulate_currents(self, cell: ElectrochemicalCell, we_name: str,
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        we = cell.working_electrode(we_name)
        times, potentials = self.potential_program()
        duration = float(times[-1]) if times.size else self.period
        channels = build_channel_simulators(we, cell.chamber, self.dt,
                                            duration)
        engine = (SimulationEngine.for_redox_channels(channels)
                  if channels else None)
        currents = np.empty(times.size)
        for k in range(times.size):
            e = float(potentials[k])
            faradaic = 0.0
            if engine is not None:
                fluxes = engine.step(e)
                for j, sim in enumerate(channels):
                    faradaic -= sim.n * C.FARADAY * we.area * float(fluxes[j])
            # Steps happen between samples; the double-layer spike decays
            # with tau = Rs*Cdl (~tens of us) and is gone by the next
            # sample — the charging rejection DPV is built on.
            currents[k] = faradaic + we.electrode.leakage_current()
        return times, potentials, currents

    def _assemble(self, potentials: np.ndarray,
                  currents: np.ndarray) -> DpvResult:
        before_idx, pulse_idx = self._sample_indices()
        w = self.sample_window
        offsets = np.arange(w)
        i_before = currents[before_idx[:, None] - offsets].mean(axis=1)
        i_pulse = currents[pulse_idx[:, None] - offsets].mean(axis=1)
        base = potentials[before_idx]
        return DpvResult(base_potentials=base,
                         differential=i_pulse - i_before,
                         i_before=i_before, i_pulse=i_pulse,
                         pulse_amplitude=self.direction
                         * self.pulse_amplitude)
