"""repro — An Integrated Platform for Advanced Diagnostics (DATE 2011).

A full-system reproduction of De Micheli et al.'s biosensing-platform
paper: electrochemistry (oxidase and cytochrome-P450 probes, diffusion,
chronoamperometry, cyclic voltammetry), physical sensors (electrodes,
functionalization, multi-electrode chips, arrays), the electronic
acquisition chain (potentiostat, TIA, mux, ADC, noise strategies), the
Sec. II-B metrics (LOD, sensitivity, linearity, response time,
throughput), and the paper's central proposition — platform-based
design-space exploration for multi-target biosensors.

Quickstart::

    import repro

    cell = repro.data.paper_panel_cell()
    chain = repro.data.integrated_chain("cyp", n_channels=5)
    result = repro.measurement.PanelProtocol().run(cell, chain)
    print(result.readouts["glucose"].signal)

Subpackages
-----------
``repro.chem``
    Species, enzyme kinetics, redox laws, diffusion solver.
``repro.sensors``
    Materials, electrodes, cells, the Fig. 4 biointerface, arrays.
``repro.electronics``
    Waveforms, potentiostat, TIA, ADC, mux, noise, the full chain.
``repro.measurement``
    Chronoamperometry, cyclic voltammetry, peak analysis, panels.
``repro.analysis``
    The Sec. II-B metric definitions and calibration machinery.
``repro.core``
    Targets, component library, design rules, DSE, Pareto, platforms.
``repro.data``
    Tables I/II/III as data plus calibrated factories.
``repro.io``
    ASCII tables and CSV/JSON export.
"""

from repro import analysis, chem, core, data, electronics, io, measurement, sensors
from repro.errors import (
    AnalysisError,
    CalibrationError,
    ChemistryError,
    DesignError,
    ElectronicsError,
    InfeasibleDesignError,
    ProtocolError,
    ReproError,
    SensorError,
    SimulationError,
    SpecError,
    UnitsError,
)

__version__ = "1.0.0"

__all__ = [
    "chem", "sensors", "electronics", "measurement", "analysis",
    "core", "data", "io",
    "ReproError", "UnitsError", "ChemistryError", "SimulationError",
    "SensorError", "ElectronicsError", "ProtocolError", "AnalysisError",
    "CalibrationError", "DesignError", "InfeasibleDesignError", "SpecError",
    "__version__",
]
