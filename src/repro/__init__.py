"""repro — An Integrated Platform for Advanced Diagnostics (DATE 2011).

A full-system reproduction of De Micheli et al.'s biosensing-platform
paper: electrochemistry (oxidase and cytochrome-P450 probes, diffusion,
chronoamperometry, cyclic voltammetry), physical sensors (electrodes,
functionalization, multi-electrode chips, arrays), the electronic
acquisition chain (potentiostat, TIA, mux, ADC, noise strategies), the
Sec. II-B metrics (LOD, sensitivity, linearity, response time,
throughput), and the paper's central proposition — platform-based
design-space exploration for multi-target biosensors.

Quickstart::

    from repro import api

    record = api.run(api.AssaySpec(seed=2011))   # the Fig. 4 panel
    print(record.spec_hash, record.result.readouts["glucose"].signal)

(The class-level escape hatch remains available: build a cell with
``repro.data.paper_panel_cell()``, a chain with
``repro.data.integrated_chain(...)`` and call
``repro.measurement.PanelProtocol().run(cell, chain)``.)

Subpackages
-----------
``repro.api``
    The declarative front door: versioned run specs, ``run(spec)``,
    streaming fleet results, provenance-carrying run records.
``repro.chem``
    Species, enzyme kinetics, redox laws, diffusion solver.
``repro.sensors``
    Materials, electrodes, cells, the Fig. 4 biointerface, arrays.
``repro.electronics``
    Waveforms, potentiostat, TIA, ADC, mux, noise, the full chain.
``repro.measurement``
    Chronoamperometry, cyclic voltammetry, peak analysis, panels.
``repro.analysis``
    The Sec. II-B metric definitions and calibration machinery.
``repro.core``
    Targets, component library, design rules, DSE, Pareto, platforms.
``repro.data``
    Tables I/II/III as data plus calibrated factories.
``repro.io``
    ASCII tables and CSV/JSON export.
"""

from repro import (
    analysis,
    api,
    chem,
    core,
    data,
    electronics,
    io,
    measurement,
    sensors,
)
from repro.errors import (
    AnalysisError,
    CalibrationError,
    ChemistryError,
    DesignError,
    ElectronicsError,
    InfeasibleDesignError,
    ProtocolError,
    ReproError,
    SensorError,
    SimulationError,
    SpecError,
    UnitsError,
)

__version__ = "1.0.0"

__all__ = [
    "chem", "sensors", "electronics", "measurement", "analysis",
    "core", "data", "io", "api",
    "ReproError", "UnitsError", "ChemistryError", "SimulationError",
    "SensorError", "ElectronicsError", "ProtocolError", "AnalysisError",
    "CalibrationError", "DesignError", "InfeasibleDesignError", "SpecError",
    "__version__",
]
