"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the platform simulator can catch a single base class.  The
subclasses mirror the layers of the system:

- chemistry and numerical simulation (:class:`ChemistryError`,
  :class:`SimulationError`),
- physical sensor construction (:class:`SensorError`),
- electronics behavioural models (:class:`ElectronicsError`),
- measurement protocols (:class:`ProtocolError`),
- metric extraction (:class:`AnalysisError`),
- platform design-space exploration (:class:`DesignError`,
  :class:`InfeasibleDesignError`),
- run execution and persistence (:class:`ExecutionError`,
  :class:`StoreError`),
- the diagnostics service layer (:class:`ServiceError`,
  :class:`RateLimitError`).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "UnitsError",
    "ChemistryError",
    "UnknownSpeciesError",
    "UnknownEnzymeError",
    "SimulationError",
    "ConvergenceError",
    "SensorError",
    "ElectronicsError",
    "SaturationError",
    "ProtocolError",
    "AnalysisError",
    "CalibrationError",
    "DesignError",
    "InfeasibleDesignError",
    "SpecError",
    "ExecutionError",
    "StoreError",
    "ServiceError",
    "RateLimitError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class UnitsError(ReproError, ValueError):
    """A quantity was supplied in an invalid or nonsensical unit/magnitude."""


class ChemistryError(ReproError):
    """Base class for chemistry-layer errors."""


class UnknownSpeciesError(ChemistryError, KeyError):
    """A species name was not found in the species registry."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f" (known: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown species {name!r}{hint}")


class UnknownEnzymeError(ChemistryError, KeyError):
    """An enzyme/probe name was not found in the probe library."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f" (known: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"unknown enzyme {name!r}{hint}")


class SimulationError(ReproError):
    """A numerical simulation failed or was configured inconsistently."""


class ConvergenceError(SimulationError):
    """An iterative solver failed to converge within its iteration budget."""


class SensorError(ReproError):
    """A physical sensor model was constructed or used inconsistently."""


class ElectronicsError(ReproError):
    """An electronics behavioural model was configured inconsistently."""


class SaturationError(ElectronicsError):
    """A signal exceeded the physical range of an electronic block.

    Raised only when a block is configured with ``strict=True``; by default
    blocks clip (as real circuits do) and flag the trace instead.
    """


class ProtocolError(ReproError):
    """A measurement protocol was configured inconsistently."""


class AnalysisError(ReproError):
    """Metric extraction failed (e.g. no steady state reached)."""


class CalibrationError(AnalysisError):
    """A calibration curve could not be established from the given data."""


class DesignError(ReproError):
    """Base class for platform design-space exploration errors."""


class InfeasibleDesignError(DesignError):
    """No platform in the design space satisfies the requirements."""

    def __init__(self, message: str, violations: tuple[str, ...] = ()):
        self.violations = violations
        if violations:
            message = f"{message}: " + "; ".join(violations)
        super().__init__(message)


class SpecError(DesignError, ValueError):
    """A JSON platform specification was malformed."""


class ExecutionError(ReproError):
    """A run failed at execution time — not a bad spec, a bad *run*.

    Raised by execution backends for runtime failures: a worker process
    that died or hung, a job whose retry budget is exhausted under
    ``on_error="raise"``, or executor bookkeeping that lost a job.
    :class:`~repro.errors.SpecError` stays reserved for malformed user
    input; the two fail for different reasons and deserve different
    handling (a spec error will fail forever, an execution error may
    succeed on retry).
    """


class StoreError(ReproError):
    """A run-store record could not be read or written."""


class ServiceError(ReproError):
    """The diagnostics service failed or returned an unexpected response.

    Raised by the server for protocol/transport-level problems (a job id
    that does not exist, a malformed request line) and by the thin
    client when the server answers with a status it cannot map back to
    a more specific error class.
    """


class RateLimitError(ServiceError):
    """A client exceeded its token-bucket rate allowance (HTTP 429).

    ``retry_after_s`` is the server's suggested backoff — the time until
    the bucket refills enough to admit one submission.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0):
        self.retry_after_s = float(retry_after_s)
        super().__init__(message)
