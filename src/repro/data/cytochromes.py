"""Table II of the paper: cytochromes P450 and their target drugs.

Each :class:`CypRecord` is one (isoform, drug) row with the tabulated
reduction potential vs Ag/AgCl.  The catalog groups rows by isoform into
:class:`~repro.chem.enzymes.CytochromeP450` probes — CYP3A4, CYP2B4,
CYP2B6 and CYP2C9 each sense two drugs, which is the paper's
multi-target-per-electrode argument.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mv_to_v

__all__ = ["CypRecord", "TABLE_II", "cyp_records_for", "cyp_isoforms",
           "cyp_record"]


@dataclass(frozen=True)
class CypRecord:
    """One row of Table II.

    ``reduction_potential`` in volts vs Ag/AgCl; ``n_electrons`` follows
    the paper's reaction (4) (2-electron reduction of the CYP catalytic
    cycle).
    """

    isoform: str
    target: str
    description: str
    reduction_potential: float
    reference: str
    n_electrons: int = 2


TABLE_II: tuple[CypRecord, ...] = (
    CypRecord("CYP1A2", "clozapine",
              "Antipsychotic used in the treatment of schizophrenia",
              mv_to_v(-265.0), "[12]"),
    CypRecord("CYP3A4", "erythromycin",
              "Broad-spectrum antibiotic",
              mv_to_v(-625.0), "[13]"),
    CypRecord("CYP3A4", "indinavir",
              "Used in the treatment of HIV infection and AIDS",
              mv_to_v(-750.0), "[14]"),
    CypRecord("CYP11A1", "cholesterol",
              "Metabolite able to establish proper cell membrane "
              "permeability and fluidity",
              mv_to_v(-400.0), "[15]"),
    CypRecord("CYP2B4", "benzphetamine",
              "Used in the treatment of obesity",
              mv_to_v(-250.0), "[16]"),
    CypRecord("CYP2B4", "aminopyrine",
              "Analgesic, anti-inflammatory, and antipyretic drug",
              mv_to_v(-400.0), "[17]"),
    CypRecord("CYP2B6", "bupropion",
              "Antidepressant",
              mv_to_v(-450.0), "[18]"),
    CypRecord("CYP2B6", "lidocaine",
              "Anesthetic and antiarrhythmic",
              mv_to_v(-450.0), "[19]"),
    CypRecord("CYP2C9", "torsemide",
              "Diuretic",
              mv_to_v(-19.0), "[20]"),
    CypRecord("CYP2C9", "diclofenac",
              "Anti-inflammatory (written 'diclofecan' in the paper)",
              mv_to_v(-41.0), "[20]"),
    CypRecord("CYP2E1", "p_nitrophenol",
              "Intermediate in the synthesis of paracetamol",
              mv_to_v(-300.0), "[21]"),
)


def cyp_isoforms() -> tuple[str, ...]:
    """All isoforms of Table II, in first-appearance order."""
    seen: list[str] = []
    for record in TABLE_II:
        if record.isoform not in seen:
            seen.append(record.isoform)
    return tuple(seen)


def cyp_records_for(isoform: str) -> tuple[CypRecord, ...]:
    """All rows of one isoform (one per sensed drug)."""
    records = tuple(r for r in TABLE_II if r.isoform == isoform)
    if not records:
        known = ", ".join(cyp_isoforms())
        raise KeyError(f"no CYP records for {isoform!r} (known: {known})")
    return records


def cyp_record(target: str) -> CypRecord:
    """The Table II row sensing a given drug."""
    for record in TABLE_II:
        if record.target == target:
            return record
    known = ", ".join(r.target for r in TABLE_II)
    raise KeyError(f"no CYP record for {target!r} (known: {known})")
