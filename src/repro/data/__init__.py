"""The paper's tables as data, and factories for calibrated objects."""

from repro.data.catalog import (
    PAPER_PANEL_MID_CONCENTRATIONS,
    PAPER_PANEL_TARGETS,
    bench_chain,
    build_cytochrome,
    build_oxidase,
    integrated_chain,
    paper_biointerface,
    paper_panel_cell,
    reference_cell,
    reference_working_electrode,
    table1_cell,
    table1_working_electrode,
)
from repro.data.cytochromes import (
    TABLE_II,
    CypRecord,
    cyp_isoforms,
    cyp_record,
    cyp_records_for,
)
from repro.data.oxidases import TABLE_I, OxidaseRecord, oxidase_record
from repro.data.performance import (
    TABLE_III,
    TABLE_III_TARGETS,
    PerformanceRecord,
    performance_record,
)

__all__ = [
    "TABLE_I", "OxidaseRecord", "oxidase_record",
    "TABLE_II", "CypRecord", "cyp_records_for", "cyp_isoforms", "cyp_record",
    "TABLE_III", "TABLE_III_TARGETS", "PerformanceRecord",
    "performance_record",
    "build_oxidase", "build_cytochrome",
    "reference_working_electrode", "reference_cell",
    "table1_working_electrode", "table1_cell",
    "bench_chain", "integrated_chain",
    "paper_biointerface", "paper_panel_cell",
    "PAPER_PANEL_TARGETS", "PAPER_PANEL_MID_CONCENTRATIONS",
]
