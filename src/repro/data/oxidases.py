"""Table I of the paper: oxidases used to develop biosensors.

Each :class:`OxidaseRecord` carries the paper row (target, description,
applied potential vs Ag/AgCl) plus the reference-electrode context of the
cited work, which the catalog uses to place the H2O2 oxidation wave so
that the *measured* 95 %-saturation potential on that electrode equals the
paper's applied potential.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import mv_to_v

__all__ = ["OxidaseRecord", "TABLE_I", "oxidase_record"]


@dataclass(frozen=True)
class OxidaseRecord:
    """One row of Table I plus reference-sensor context.

    ``applied_potential`` is the Table I value (volts vs Ag/AgCl).
    ``reference_material`` / ``reference_nanostructure`` name the cited
    electrode (see Sec. III: glucose/lactate/glutamate values were
    obtained on carbon-nanotube electrodes).  ``reference_area`` is a
    representative geometric area for the cited screen-printed sensors,
    m^2.
    """

    enzyme: str
    display_name: str
    target: str
    description: str
    applied_potential: float
    reference: str
    prosthetic_group: str = "FAD"
    reference_material: str = "screen_printed_carbon"
    reference_nanostructure: str = "carbon_nanotubes"
    reference_area: float = 7.0e-6


TABLE_I: tuple[OxidaseRecord, ...] = (
    OxidaseRecord(
        enzyme="glucose_oxidase",
        display_name="Glucose oxidase",
        target="glucose",
        description="Metabolic compound as energy source",
        applied_potential=mv_to_v(550.0),
        reference="[8]",
        prosthetic_group="FAD",
    ),
    OxidaseRecord(
        enzyme="lactate_oxidase",
        display_name="Lactate oxidase",
        target="lactate",
        description="Metabolic compound as marker of cell suffering",
        applied_potential=mv_to_v(650.0),
        reference="[9]",
        # Lactate oxidase carries FMN (paper Sec. I-B).
        prosthetic_group="FMN",
    ),
    OxidaseRecord(
        enzyme="glutamate_oxidase",
        display_name="L-Glutamate oxidase",
        target="glutamate",
        description="Excitatory neurotransmitter",
        applied_potential=mv_to_v(600.0),
        reference="[10]",
        prosthetic_group="FAD",
    ),
    OxidaseRecord(
        enzyme="cholesterol_oxidase",
        display_name="Cholesterol oxidase",
        target="cholesterol",
        description=("Metabolic compound that establishes proper membrane "
                     "permeability and fluidity"),
        applied_potential=mv_to_v(700.0),
        reference="[11]",
        prosthetic_group="FAD",
    ),
)


def oxidase_record(target: str) -> OxidaseRecord:
    """The Table I row for a target metabolite."""
    for record in TABLE_I:
        if record.target == target:
            return record
    known = ", ".join(r.target for r in TABLE_I)
    raise KeyError(f"no oxidase record for {target!r} (known: {known})")
