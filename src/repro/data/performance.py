"""Table III of the paper: performance of the six metabolite biosensors.

Each :class:`PerformanceRecord` holds the reported sensitivity, limit of
detection and linear range, together with the reference-electrode context
of the cited measurement (material, nanostructure, representative area)
and the detection method.  The catalog inverts these numbers into model
parameters (see :mod:`repro.data.fitting`) so the T3 bench can *measure*
them back through the simulated acquisition chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import um_conc_to_si

__all__ = ["PerformanceRecord", "TABLE_III", "performance_record",
           "TABLE_III_TARGETS"]


@dataclass(frozen=True)
class PerformanceRecord:
    """One row of Table III plus reference-sensor context.

    ``sensitivity`` in the paper's unit, uA/(mM*cm^2); ``lod`` in
    mol/m^3 (None for cholesterol — the paper leaves that cell empty);
    ``linear_range`` in mol/m^3 (== mM).  ``cv_height_factor`` is the
    one-time numeric correction between the reversible Randles-Sevcik
    height and the simulator's measured peak prominence for
    quasi-reversible CYP films (see data.fitting).
    """

    target: str
    probe: str
    method: str  # "chronoamperometry" | "cyclic_voltammetry"
    sensitivity: float
    lod: float | None
    linear_range: tuple[float, float]
    reference: str
    reference_material: str
    reference_nanostructure: str | None
    reference_area: float = 7.0e-6
    cv_height_factor: float = 1.0


TABLE_III: tuple[PerformanceRecord, ...] = (
    PerformanceRecord(
        target="glucose", probe="glucose_oxidase",
        method="chronoamperometry",
        sensitivity=27.7, lod=um_conc_to_si(575.0),
        linear_range=(0.5, 4.0), reference="Sec. III",
        reference_material="screen_printed_carbon",
        reference_nanostructure="carbon_nanotubes",
    ),
    PerformanceRecord(
        target="lactate", probe="lactate_oxidase",
        method="chronoamperometry",
        sensitivity=40.1, lod=um_conc_to_si(366.0),
        linear_range=(0.5, 2.5), reference="Sec. III",
        reference_material="screen_printed_carbon",
        reference_nanostructure="carbon_nanotubes",
    ),
    PerformanceRecord(
        target="glutamate", probe="glutamate_oxidase",
        method="chronoamperometry",
        sensitivity=25.5, lod=um_conc_to_si(1574.0),
        linear_range=(0.5, 2.0), reference="Sec. III",
        reference_material="screen_printed_carbon",
        reference_nanostructure="carbon_nanotubes",
    ),
    PerformanceRecord(
        target="benzphetamine", probe="CYP2B4",
        method="cyclic_voltammetry",
        sensitivity=0.28, lod=um_conc_to_si(200.0),
        linear_range=(0.2, 1.2), reference="[16]",
        reference_material="rhodium_graphite",
        reference_nanostructure=None,
        cv_height_factor=0.672,
    ),
    PerformanceRecord(
        target="aminopyrine", probe="CYP2B4",
        method="cyclic_voltammetry",
        sensitivity=2.8, lod=um_conc_to_si(400.0),
        linear_range=(0.8, 8.0), reference="[16]",
        reference_material="rhodium_graphite",
        reference_nanostructure=None,
        cv_height_factor=0.617,
    ),
    PerformanceRecord(
        target="cholesterol", probe="CYP11A1",
        method="cyclic_voltammetry",
        sensitivity=112.0, lod=None,
        linear_range=(0.01, 0.08), reference="[15]",
        reference_material="screen_printed_carbon",
        reference_nanostructure="carbon_nanotubes",
        cv_height_factor=0.649,
    ),
)

#: Targets of Table III, in paper order.
TABLE_III_TARGETS = tuple(record.target for record in TABLE_III)


def performance_record(target: str) -> PerformanceRecord:
    """The Table III row for a target."""
    for record in TABLE_III:
        if record.target == target:
            return record
    known = ", ".join(TABLE_III_TARGETS)
    raise KeyError(f"no performance record for {target!r} (known: {known})")
