"""Derivation of simulation parameters from the paper's reported values.

Table III aggregates experimentally measured sensitivities, detection
limits and linear ranges from the cited sensor papers.  Rather than
hard-coding behaviours, this module *inverts the model*: given a reported
sensitivity and linear range, it solves for the enzyme-film parameters
(vmax, km / efficiency) that reproduce them through the library's own
transport and kinetics equations.  The benches then close the loop by
measuring the simulated sensors end-to-end.

Inversions used:

- **Oxidase sensitivity** (chronoamperometric slope): at low
  concentration the steady flux per concentration is the series
  combination of mass transfer ``m = D_eff/delta_eff`` and film rate
  ``kf = vmax/km``; the slope is ``S = n*F*eta*(1/m + 1/kf)^-1``.  Given
  S (paper) and m (electrode geometry), kf follows; km then sets the
  saturation point so the 5 %-non-linearity range ends at the paper's
  upper limit (solved numerically on the closed-form steady state).
- **CYP sensitivity** (CV peak height per concentration):
  Randles-Sevcik with the channel's electroactive efficiency,
  ``S = 0.4463*n*F*sqrt(n*f*v*D)*efficiency`` at the reference scan rate
  (20 mV/s); km = saturation knee scaled from the paper's upper range
  limit.
- **Blank noise for LOD**: the paper defines ``LOD = Vb + 3*sigma_b``;
  with a laboratory-grade chain (negligible flicker) the blank current
  noise required to place the LOD at the paper's value is
  ``sigma_i = LOD * S_si * A / 3``, converted to the electrode's noise
  density given the bench sampling bandwidth.
"""

from __future__ import annotations

import math

from repro.chem import constants as C
from repro.chem.kinetics import MichaelisMentenFilm, steady_state_turnover_flux
from repro.errors import ChemistryError
from repro.units import ensure_positive, sensitivity_to_si

__all__ = [
    "oxidase_film_from_paper",
    "cyp_channel_params_from_paper",
    "blank_noise_density_for_lod",
    "KM_RANGE_FACTOR_SEED",
]

#: Initial guess: km around this multiple of the paper's upper linear
#: limit keeps Michaelis-Menten bending below ~5 % across the range.
KM_RANGE_FACTOR_SEED = 9.0


def oxidase_film_from_paper(sensitivity_paper: float,
                            linear_upper: float,
                            mass_transfer: float,
                            eta: float = 0.95,
                            n_electrons: int = C.ELECTRONS_PER_H2O2,
                            nl_fraction: float = 0.05,
                            linear_lower: float | None = None,
                            ) -> MichaelisMentenFilm:
    """Film (vmax, km) reproducing a Table III oxidase row.

    Parameters
    ----------
    sensitivity_paper:
        Table III sensitivity, uA/(mM*cm^2).  Matched as the *endpoint
        slope over the paper's linear range* — the paper's own Savg
        estimator (eq. 6).
    linear_upper:
        Upper linear-range limit, mol/m^3 (== mM).
    mass_transfer:
        m = D_eff/delta_eff of the reference electrode, m/s.
    eta:
        H2O2 collection efficiency at the applied potential (the 95 %
        point of the wave by construction).
    nl_fraction:
        The non-linearity budget that terminates the linear range.
    linear_lower:
        Lower linear-range limit (defaults to ``linear_upper / 8``).

    Raises :class:`~repro.errors.ChemistryError` when the requested
    sensitivity exceeds the transport-limited ceiling ``n*F*m`` — no film
    can beat diffusion.
    """
    s_si = sensitivity_to_si(sensitivity_paper)
    ensure_positive(linear_upper, "linear_upper")
    ensure_positive(mass_transfer, "mass_transfer")
    lower = (linear_upper / 8.0 if linear_lower is None
             else ensure_positive(linear_lower, "linear_lower"))
    if lower >= linear_upper:
        raise ChemistryError("linear_lower must sit below linear_upper")
    slope_flux = s_si / (n_electrons * C.FARADAY * eta)  # m/s
    if slope_flux >= mass_transfer:
        ceiling = n_electrons * C.FARADAY * eta * mass_transfer
        raise ChemistryError(
            f"sensitivity {sensitivity_paper} uA/(mM cm^2) exceeds the "
            f"transport ceiling {ceiling / 1e-2:.1f} of this electrode; "
            f"use a thinner diffusion layer or larger electrode")

    def endpoint_slope(film: MichaelisMentenFilm) -> float:
        f_low = steady_state_turnover_flux(lower, film, mass_transfer)
        f_up = steady_state_turnover_flux(linear_upper, film, mass_transfer)
        return (f_up - f_low) / (linear_upper - lower)

    def nl_fraction_of(film: MichaelisMentenFilm) -> float:
        """Fractional non-linearity over the paper range (eq. 7 style)."""
        f_low = steady_state_turnover_flux(lower, film, mass_transfer)
        f_up = steady_state_turnover_flux(linear_upper, film, mass_transfer)
        slope = (f_up - f_low) / (linear_upper - lower)
        worst = 0.0
        for frac in (0.25, 0.5, 0.75):
            c = lower + frac * (linear_upper - lower)
            f = steady_state_turnover_flux(c, film, mass_transfer)
            line = f_low + slope * (c - lower)
            worst = max(worst, abs(f - line))
        span = abs(f_up - f_low)
        return worst / span if span > 0.0 else 0.0

    def km_for(kf: float) -> float:
        """Bisect km so the range-top non-linearity meets the budget."""
        def nl_at(km: float) -> float:
            return nl_fraction_of(MichaelisMentenFilm(vmax=kf * km, km=km))
        km_low, km_high = 0.2 * linear_upper, 400.0 * linear_upper
        if nl_at(km_high) > nl_fraction:
            return km_high  # transport bending dominates: flattest choice
        if nl_at(km_low) < nl_fraction:
            return km_low   # always straight enough: steepest allowed
        for _ in range(60):
            km_mid = math.sqrt(km_low * km_high)
            if nl_at(km_mid) > nl_fraction:
                km_low = km_mid
            else:
                km_high = km_mid
        return km_high

    # Fixed point: the saturation droop makes the endpoint slope fall
    # below the low-concentration slope, so boost kf until the *measured*
    # endpoint slope matches the paper value.
    kf = 1.0 / (1.0 / slope_flux - 1.0 / mass_transfer)
    km = km_for(kf)
    for _ in range(8):
        film = MichaelisMentenFilm(vmax=kf * km, km=km)
        achieved = endpoint_slope(film)
        ratio = slope_flux / achieved
        if abs(ratio - 1.0) < 1.0e-3:
            break
        scaled = kf * ratio
        # kf cannot push the series combination beyond transport.
        if scaled >= 50.0 * mass_transfer:
            scaled = 50.0 * mass_transfer
        kf = scaled
        km = km_for(kf)
    return MichaelisMentenFilm(vmax=kf * km, km=km)


def cyp_channel_params_from_paper(sensitivity_paper: float,
                                  linear_upper: float,
                                  diffusivity: float,
                                  scan_rate: float = 0.020,
                                  n_electrons: int = 2,
                                  height_factor: float = 1.0,
                                  ) -> tuple[float, float]:
    """(efficiency, km) reproducing a Table III CYP row.

    ``height_factor`` corrects the reversible Randles-Sevcik height for
    quasi-reversible kinetics and the peak-prominence estimator (derived
    once from the simulator; see data.performance).
    """
    s_si = sensitivity_to_si(sensitivity_paper)
    ensure_positive(linear_upper, "linear_upper")
    ensure_positive(diffusivity, "diffusivity")
    ensure_positive(scan_rate, "scan_rate")
    ensure_positive(height_factor, "height_factor")
    rs = (C.RANDLES_SEVCIK_COEFFICIENT * n_electrons * C.FARADAY
          * math.sqrt(n_electrons * C.F_OVER_RT * scan_rate * diffusivity))
    km = KM_RANGE_FACTOR_SEED * linear_upper
    # The endpoint-slope estimator sees the km saturation averaged over
    # the range; compensate with the mean saturation factor.
    mean_saturation = km / (km + 0.5 * linear_upper)
    efficiency = s_si / (rs * height_factor * mean_saturation)
    if efficiency > 2.0:
        raise ChemistryError(
            f"sensitivity {sensitivity_paper} uA/(mM cm^2) needs "
            f"efficiency {efficiency:.2f} > 2; even porous-film "
            f"preconcentration cannot reach the paper value at this "
            f"diffusivity/scan-rate")
    return efficiency, km


def blank_noise_density_for_lod(lod_concentration: float,
                                sensitivity_paper: float,
                                area: float,
                                bench_nyquist: float = 5.0,
                                equivalent_radius: float | None = None,
                                ) -> float:
    """Sensor noise density placing the blank-derived LOD at the paper value.

    Returns the :class:`~repro.sensors.electrode.WorkingElectrode`
    ``sensor_noise_density`` (A/sqrt(Hz) per mm of equivalent radius)
    such that ``3*sigma_b`` corresponds to ``lod_concentration`` through
    the sensitivity, when sampled by the laboratory chain at
    ``bench_nyquist``.
    """
    ensure_positive(lod_concentration, "lod_concentration")
    ensure_positive(area, "area")
    ensure_positive(bench_nyquist, "bench_nyquist")
    s_si = sensitivity_to_si(sensitivity_paper)
    sigma_current = lod_concentration * abs(s_si) * area / 3.0
    radius = (equivalent_radius if equivalent_radius is not None
              else math.sqrt(area / math.pi))
    density = sigma_current / math.sqrt(bench_nyquist)
    return density / (radius / 1.0e-3)
