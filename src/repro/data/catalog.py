"""Factory for calibrated probes, reference sensors, chips and chains.

This module turns the paper's tables into ready-to-run objects:

- :func:`build_oxidase` / :func:`build_cytochrome` — probes whose film
  parameters are inverted from Tables I and III
  (:mod:`repro.data.fitting`),
- :func:`reference_working_electrode` / :func:`reference_cell` — the
  cited works' electrodes (screen-printed + CNT, rhodium-graphite), used
  by the T1/T2/T3 benches,
- :func:`paper_biointerface` / :func:`paper_panel_cell` — the Fig. 4
  five-electrode silicon chip with the Sec. III panel functionalization,
- :func:`bench_chain` / :func:`integrated_chain` — a laboratory-grade
  acquisition chain (for reproducing the cited numbers) and the
  integrated platform chain with the paper's Sec. II-C readout specs
  (+/-10 uA @ 10 nA for oxidases, +/-100 uA @ 100 nA for CYPs).
"""

from __future__ import annotations

import math
from functools import lru_cache

from repro.chem.enzymes import (
    CypSubstrateChannel,
    CytochromeP450,
    Oxidase,
    ProstheticGroup,
)
from repro.chem.redox import ButlerVolmerKinetics, OxidationEfficiency, RedoxCouple
from repro.chem.solution import Chamber
from repro.chem.species import get_species
from repro.data import fitting
from repro.data.cytochromes import cyp_records_for
from repro.data.oxidases import oxidase_record
from repro.data.performance import performance_record
from repro.electronics.adc import ADC
from repro.electronics.chain import AcquisitionChain
from repro.electronics.mux import Multiplexer
from repro.electronics.noise import NoiseStrategy
from repro.electronics.potentiostat import Potentiostat
from repro.electronics.tia import TransimpedanceAmplifier
from repro.errors import DesignError
from repro.sensors.biointerface import BioInterface
from repro.sensors.cell import ElectrochemicalCell
from repro.sensors.electrode import (
    PAPER_ELECTRODE_AREA,
    Electrode,
    ElectrodeRole,
    WorkingElectrode,
)
from repro.sensors.functionalization import (
    CARBON_NANOTUBES,
    Nanostructure,
    with_cytochrome,
    with_oxidase,
)
from repro.sensors.materials import get_material

__all__ = [
    "build_oxidase",
    "build_cytochrome",
    "reference_working_electrode",
    "reference_cell",
    "table1_working_electrode",
    "table1_cell",
    "bench_chain",
    "integrated_chain",
    "READOUT_CLASSES",
    "select_readout_class",
    "paper_biointerface",
    "paper_panel_cell",
    "PAPER_PANEL_TARGETS",
    "PAPER_PANEL_MID_CONCENTRATIONS",
    "SATURATION_FRACTION",
    "H2O2_WAVE_SLOPE",
    "CYP_BASE_K0",
]

#: The Table I applied potential is read as the 95 %-saturation point of
#: the H2O2 collection wave.
SATURATION_FRACTION = 0.95

#: Slope of the H2O2 oxidation wave, volts (one-electron Nernstian).
H2O2_WAVE_SLOPE = 0.0257

#: Intrinsic standard rate constant of immobilised CYP films, m/s
#: (quasi-reversible at 20 mV/s; materials scale it).
CYP_BASE_K0 = 1.2e-4

#: Default channel parameters for Table II drugs without a Table III row.
_DEFAULT_CYP_EFFICIENCY = 0.10
_DEFAULT_CYP_KM = 10.0

#: Defaults for the Table I cholesterol-oxidase probe, which has no
#: Table III row (the panel senses cholesterol via CYP11A1 instead):
#: a representative sensitivity below the transport ceiling, and the
#: clinically useful range the paper's Sec. III panel needs.
_CHOLESTEROL_OXIDASE_SENSITIVITY = 15.0
_CHOLESTEROL_OXIDASE_UPPER = 0.2

#: Targets of the Fig. 4 / Sec. III multi-panel, in electrode order.
PAPER_PANEL_TARGETS = (
    "glucose", "lactate", "glutamate",
    "benzphetamine", "aminopyrine", "cholesterol",
)

#: Mid-linear-range concentrations for panel demonstrations, mol/m^3.
PAPER_PANEL_MID_CONCENTRATIONS = {
    "glucose": 2.0,
    "lactate": 1.5,
    "glutamate": 1.2,
    "benzphetamine": 0.7,
    "aminopyrine": 4.0,
    "cholesterol": 0.045,
}


def _effective_nernst_layer(area: float) -> float:
    """delta_eff of a disk electrode of the given area (planar || disk)."""
    from repro.chem.constants import NERNST_LAYER_QUIESCENT
    radius = math.sqrt(area / math.pi)
    delta_disk = math.pi * radius / 4.0
    return 1.0 / (1.0 / NERNST_LAYER_QUIESCENT + 1.0 / delta_disk)


def _reference_wave_shift(record_material: str,
                          nanostructure: Nanostructure | None) -> float:
    material = get_material(record_material)
    shift = material.h2o2_wave_shift
    if nanostructure is not None:
        shift += nanostructure.h2o2_wave_shift
    return shift


def _nanostructure_for(name: str | None) -> Nanostructure | None:
    if name is None:
        return None
    if name == "carbon_nanotubes":
        return CARBON_NANOTUBES
    raise DesignError(f"unknown reference nanostructure {name!r}")


@lru_cache(maxsize=None)
def build_oxidase(target: str) -> Oxidase:
    """The calibrated oxidase probe for a Table I target.

    The film reproduces the Table III sensitivity and linear range on the
    reference electrode; the H2O2 wave is placed so that the measured
    95 %-saturation potential on that electrode equals the Table I
    applied potential.
    """
    record = oxidase_record(target)
    nano = _nanostructure_for(record.reference_nanostructure)
    species = get_species(target)
    delta = _effective_nernst_layer(record.reference_area)
    mass_transfer = species.diffusivity / delta
    try:
        perf = performance_record(target)
        has_perf = perf.method == "chronoamperometry"
    except KeyError:
        has_perf = False
    if has_perf:
        sensitivity = perf.sensitivity
        lower, upper = perf.linear_range
    else:
        sensitivity = _CHOLESTEROL_OXIDASE_SENSITIVITY
        lower, upper = _CHOLESTEROL_OXIDASE_UPPER / 8.0, _CHOLESTEROL_OXIDASE_UPPER
    effective_film = fitting.oxidase_film_from_paper(
        sensitivity, upper, mass_transfer, eta=SATURATION_FRACTION,
        linear_lower=lower)
    gain = nano.signal_gain if nano else 1.0
    base_film = effective_film.scaled(1.0 / gain)
    # Place the base wave so the *effective* wave on the reference
    # electrode saturates (95 %) exactly at the Table I potential.
    logit = H2O2_WAVE_SLOPE * math.log(
        SATURATION_FRACTION / (1.0 - SATURATION_FRACTION))
    e_half = (record.applied_potential - logit
              - _reference_wave_shift(record.reference_material, nano))
    group = (ProstheticGroup.FMN if record.prosthetic_group == "FMN"
             else ProstheticGroup.FAD)
    return Oxidase(
        name=record.enzyme, display_name=record.display_name,
        prosthetic_group=group, substrate=target,
        film=base_film,
        h2o2_wave=OxidationEfficiency(e_half=e_half, slope=H2O2_WAVE_SLOPE),
    )


@lru_cache(maxsize=None)
def build_cytochrome(isoform: str) -> CytochromeP450:
    """The calibrated CYP probe for a Table II isoform.

    Channels carry the tabulated reduction potentials (2-electron
    couples, reaction (4)); efficiencies and saturation constants are
    inverted from the Table III sensitivities and linear ranges where
    available.
    """
    channels = []
    for record in cyp_records_for(isoform):
        species = get_species(record.target)
        try:
            perf = performance_record(record.target)
            usable = perf.method == "cyclic_voltammetry"
        except KeyError:
            usable = False
        if usable:
            efficiency, km = fitting.cyp_channel_params_from_paper(
                perf.sensitivity, perf.linear_range[1],
                species.diffusivity, n_electrons=record.n_electrons,
                height_factor=perf.cv_height_factor)
            # The fitted efficiency is the *effective* value on the
            # reference electrode; peel off its nanostructure gain so the
            # probe is geometry-independent (mirrors the oxidase films).
            ref_nano = _nanostructure_for(perf.reference_nanostructure)
            if ref_nano is not None:
                efficiency /= ref_nano.signal_gain
        else:
            efficiency, km = _DEFAULT_CYP_EFFICIENCY, _DEFAULT_CYP_KM
        couple = RedoxCouple(
            name=f"{isoform}:{record.target}",
            e_formal=record.reduction_potential,
            n_electrons=record.n_electrons)
        channels.append(CypSubstrateChannel(
            substrate=record.target,
            kinetics=ButlerVolmerKinetics(couple, k0=CYP_BASE_K0),
            efficiency=efficiency, km=km))
    return CytochromeP450(
        name=isoform.lower(), display_name=isoform,
        prosthetic_group=ProstheticGroup.HEME,
        channels=tuple(channels))


def _probe_for_target(target: str):
    """The panel probe for a target: oxidase for the first three
    metabolites, cytochrome for the drug compounds and cholesterol."""
    if target in ("glucose", "lactate", "glutamate"):
        return build_oxidase(target)
    perf = performance_record(target)
    return build_cytochrome(perf.probe)


@lru_cache(maxsize=None)
def table1_working_electrode(target: str) -> WorkingElectrode:
    """The Table I reference electrode carrying the *oxidase* probe.

    Differs from :func:`reference_working_electrode` for cholesterol,
    whose Table III row is CYP-based while Table I lists cholesterol
    oxidase; the T1 bench sweeps these electrodes.
    """
    record = oxidase_record(target)
    nano = _nanostructure_for(record.reference_nanostructure)
    functionalization = with_oxidase(build_oxidase(target), nanostructure=nano)
    electrode = Electrode(
        name=f"WE_{target}_t1", role=ElectrodeRole.WORKING,
        material=get_material(record.reference_material),
        area=record.reference_area)
    return WorkingElectrode(electrode=electrode,
                            functionalization=functionalization)


def table1_cell(target: str,
                chamber: Chamber | None = None) -> ElectrochemicalCell:
    """A single-sensor cell around the Table I oxidase electrode."""
    we = table1_working_electrode(target)
    if chamber is None:
        chamber = Chamber(name=f"t1_{target}")
    reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                          material=get_material("silver"), area=we.area)
    counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                        material=get_material("gold"), area=2.0 * we.area)
    return ElectrochemicalCell(chamber=chamber, working_electrodes=[we],
                               reference=reference, counter=counter)


@lru_cache(maxsize=None)
def reference_working_electrode(target: str) -> WorkingElectrode:
    """The cited work's electrode for a Table III target.

    Geometry, material and nanostructure follow the performance record;
    the electrode's noise density is derived so the blank-based LOD
    lands at the Table III value (when one is given).
    """
    perf = performance_record(target)
    nano = _nanostructure_for(perf.reference_nanostructure)
    probe = _probe_for_target(target)
    if isinstance(probe, Oxidase):
        functionalization = with_oxidase(probe, nanostructure=nano)
    else:
        functionalization = with_cytochrome(probe, nanostructure=nano)
    if perf.lod is not None:
        density = fitting.blank_noise_density_for_lod(
            perf.lod, perf.sensitivity, perf.reference_area)
    else:
        density = 2.0e-9
    electrode = Electrode(
        name=f"WE_{target}", role=ElectrodeRole.WORKING,
        material=get_material(perf.reference_material),
        area=perf.reference_area)
    return WorkingElectrode(electrode=electrode,
                            functionalization=functionalization,
                            sensor_noise_density=density)


def reference_cell(target: str,
                   chamber: Chamber | None = None) -> ElectrochemicalCell:
    """A single-sensor cell around the reference electrode of a target."""
    we = reference_working_electrode(target)
    if chamber is None:
        chamber = Chamber(name=f"cell_{target}")
    reference = Electrode(name="RE", role=ElectrodeRole.REFERENCE,
                          material=get_material("silver"), area=we.area)
    counter = Electrode(name="CE", role=ElectrodeRole.COUNTER,
                        material=get_material("gold"), area=2.0 * we.area)
    return ElectrochemicalCell(chamber=chamber, working_electrodes=[we],
                               reference=reference, counter=counter)


def bench_chain(seed: int = 2011) -> AcquisitionChain:
    """A laboratory-grade chain: the instruments behind the cited numbers.

    High-gain potentiostat, low-noise chopper-stabilised electrometer
    front-end (negligible flicker), 16-bit conversion, no drift — so the
    measured Table III metrics reflect the *sensors*, not the readout.
    """
    potentiostat = Potentiostat(open_loop_gain=1.0e6, input_offset=2.0e-5,
                                compliance=10.0, bandwidth=1.0e5,
                                solution_resistance=100.0,
                                power=1.0, area_mm2=1.0e4)
    tia = TransimpedanceAmplifier(
        feedback_resistance=1.0e6, rail=10.0,
        input_offset_current=0.0, bandwidth=1.0e4,
        flicker_corner=0.05, amplifier_noise_density=1.0e-13,
        power=1.0, area_mm2=1.0e4)
    adc = ADC(n_bits=16, v_min=-10.0, v_max=10.0, sample_rate=10.0,
              power=1.0, area_mm2=1.0e4)
    return AcquisitionChain(potentiostat=potentiostat, tia=tia, adc=adc,
                            baseline_drift_rate=0.0, seed=seed)


#: Readout classes: full-scale current (A) and resolution (A).  The first
#: two are the paper's Sec. II-C specifications for macro sensors; the
#: third extends the same 2000-code dynamic range to the microfabricated
#: 0.23 mm^2 electrodes, whose currents are ~30x smaller (documented as a
#: reproduction substitution in DESIGN.md).
READOUT_CLASSES: dict[str, tuple[float, float]] = {
    "cyp_micro": (1.0e-6, 1.0e-9),
    "oxidase": (10.0e-6, 10.0e-9),
    "cyp": (100.0e-6, 100.0e-9),
}


def select_readout_class(peak_current: float) -> str:
    """The finest readout class whose full scale covers ``peak_current``.

    Raises :class:`~repro.errors.DesignError` when even the widest class
    saturates — the platform then needs a smaller electrode or a diluted
    sample.
    """
    for name in ("cyp_micro", "oxidase", "cyp"):
        full_scale, _ = READOUT_CLASSES[name]
        if abs(peak_current) <= 0.9 * full_scale:
            return name
    raise DesignError(
        f"current {peak_current:.3g} A exceeds every readout class "
        f"(max +/-100 uA)")


def integrated_chain(readout: str = "oxidase", n_channels: int = 5,
                     noise_strategy: NoiseStrategy | None = None,
                     seed: int = 2011) -> AcquisitionChain:
    """The integrated platform chain with the paper's Sec. II-C specs.

    ``readout`` names a :data:`READOUT_CLASSES` entry: ``"oxidase"``
    (+/-10 uA @ 10 nA), ``"cyp"`` (+/-100 uA @ 100 nA) or ``"cyp_micro"``
    (+/-1 uA @ 1 nA, the scaled class for 0.23 mm^2 electrodes).
    """
    if readout not in READOUT_CLASSES:
        known = ", ".join(READOUT_CLASSES)
        raise DesignError(f"readout must be one of {known}, got {readout!r}")
    full_scale, resolution = READOUT_CLASSES[readout]
    tia = TransimpedanceAmplifier.for_range(full_scale)
    adc = ADC.for_readout(full_scale, resolution, sample_rate=100.0)
    mux = Multiplexer(n_channels=n_channels)
    return AcquisitionChain(potentiostat=Potentiostat(), tia=tia, adc=adc,
                            mux=mux, noise_strategy=noise_strategy,
                            seed=seed)


def paper_biointerface(we_area: float = PAPER_ELECTRODE_AREA) -> BioInterface:
    """The Fig. 4 chip: five gold WEs (0.23 mm^2), gold CE, silver RE.

    Functionalization per Sec. III: glucose, lactate and glutamate
    oxidases (CNT-nanostructured), CYP2B4 for benzphetamine + aminopyrine
    on one electrode, CYP11A1 (CNT) for cholesterol.
    """
    gold = get_material("gold")
    wes = []
    layout = [
        ("WE1", with_oxidase(build_oxidase("glucose"),
                             nanostructure=CARBON_NANOTUBES)),
        ("WE2", with_oxidase(build_oxidase("lactate"),
                             nanostructure=CARBON_NANOTUBES)),
        ("WE3", with_oxidase(build_oxidase("glutamate"),
                             nanostructure=CARBON_NANOTUBES)),
        ("WE4", with_cytochrome(build_cytochrome("CYP2B4"),
                                nanostructure=CARBON_NANOTUBES)),
        ("WE5", with_cytochrome(build_cytochrome("CYP11A1"),
                                nanostructure=CARBON_NANOTUBES)),
    ]
    for name, functionalization in layout:
        wes.append(WorkingElectrode(
            electrode=Electrode(name=name, role=ElectrodeRole.WORKING,
                                material=gold, area=we_area),
            functionalization=functionalization))
    return BioInterface.gold_chip("paper_fig4", wes, we_area=we_area)


def paper_panel_cell(concentrations: dict[str, float] | None = None,
                     we_area: float = PAPER_ELECTRODE_AREA,
                     ) -> ElectrochemicalCell:
    """The Fig. 4 chip wetted by a sample.

    ``concentrations`` maps target names to bulk values, mol/m^3;
    defaults to mid-linear-range loadings of all six panel targets.
    """
    chamber = Chamber(name="panel")
    loading = (concentrations if concentrations is not None
               else PAPER_PANEL_MID_CONCENTRATIONS)
    for name, value in loading.items():
        chamber.set_bulk(name, value)
    return paper_biointerface(we_area).as_cell(chamber)
