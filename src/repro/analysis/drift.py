"""Long-term drift models and recalibration strategies.

The paper motivates implantable, long-term monitoring (refs. [3]-[6]) and
names polymer membranes as the stability measure (Sec. III).  This module
provides the two tools a long-term deployment needs:

- :class:`GainDriftModel` — sensitivity loss over time (biofouling,
  enzyme deactivation), optionally suppressed by a membrane,
- :class:`OnePointRecalibration` — the classic CGM procedure: a
  reference measurement re-anchors the calibration slope; the class
  tracks the corrected calibration and converts signals to
  concentrations between recalibrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import AnalysisError
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["GainDriftModel", "OnePointRecalibration"]


@dataclass(frozen=True)
class GainDriftModel:
    """Exponential sensitivity decay: gain(t) = exp(-rate * suppressed_t).

    ``rate`` is the fractional loss per second for small losses
    (biofouling, enzyme deactivation); ``suppression`` in [0, 1) is the
    fraction of the drift a stabilising membrane removes
    (:attr:`~repro.sensors.functionalization.Membrane.drift_suppression`).
    Exponential rather than linear so the gain never goes negative on
    long horizons.
    """

    rate: float
    suppression: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.rate, "rate")
        if not 0.0 <= self.suppression < 1.0:
            raise AnalysisError("suppression must be in [0, 1)")

    @classmethod
    def per_day(cls, fraction_per_day: float,
                suppression: float = 0.0) -> "GainDriftModel":
        """Build from a per-day fractional loss (the natural lab unit)."""
        ensure_non_negative(fraction_per_day, "fraction_per_day")
        if fraction_per_day >= 1.0:
            raise AnalysisError("fraction_per_day must be < 1")
        rate = -math.log(1.0 - fraction_per_day) / 86400.0
        return cls(rate=rate, suppression=suppression)

    def gain(self, t: float) -> float:
        """Remaining sensitivity fraction after ``t`` seconds."""
        ensure_non_negative(t, "t")
        return math.exp(-self.rate * (1.0 - self.suppression) * t)

    def time_to_gain(self, gain: float) -> float:
        """Seconds until the sensitivity falls to ``gain`` (0 < gain < 1).

        Infinite when the (suppressed) drift rate is zero.
        """
        if not 0.0 < gain < 1.0:
            raise AnalysisError("gain must be in (0, 1)")
        effective = self.rate * (1.0 - self.suppression)
        if effective == 0.0:
            return float("inf")
        return -math.log(gain) / effective


class OnePointRecalibration:
    """Slope re-anchoring against a reference measurement.

    Parameters
    ----------
    slope, intercept:
        The day-0 calibration (signal = slope * concentration +
        intercept); slope must be nonzero.

    The intercept (blank level) is assumed stable — drift attacks the
    *gain* in this model; CDS/chopping handle baseline drift upstream.
    """

    def __init__(self, slope: float, intercept: float = 0.0) -> None:
        if slope == 0.0 or not math.isfinite(slope):
            raise AnalysisError("calibration slope must be finite nonzero")
        self._slope = float(slope)
        self._intercept = float(intercept)
        self._initial_slope = float(slope)
        self.recalibration_count = 0

    @property
    def slope(self) -> float:
        """The currently active slope."""
        return self._slope

    @property
    def gain_estimate(self) -> float:
        """Apparent remaining sensitivity vs day 0 (slope ratio)."""
        return self._slope / self._initial_slope

    def concentration(self, signal: float) -> float:
        """Invert the active calibration."""
        return (float(signal) - self._intercept) / self._slope

    def recalibrate(self, signal: float, true_concentration: float) -> float:
        """Re-anchor the slope with one reference point; returns it.

        ``true_concentration`` comes from the reference method (a
        fingerstick in CGM practice) and must be positive.
        """
        ensure_positive(true_concentration, "true_concentration")
        new_slope = (float(signal) - self._intercept) / true_concentration
        if new_slope == 0.0 or not math.isfinite(new_slope):
            raise AnalysisError(
                "recalibration produced a degenerate slope; the signal "
                "equals the intercept — check the reference sample")
        if new_slope * self._initial_slope < 0.0:
            raise AnalysisError(
                "recalibration flipped the calibration sign; the sensor "
                "is no longer functional")
        self._slope = new_slope
        self.recalibration_count += 1
        return new_slope
