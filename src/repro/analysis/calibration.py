"""Calibration curves and linear-range extraction.

A calibration run measures the sensor signal at a ladder of known
concentrations; this module fits the curve, extracts the paper's Table III
columns — sensitivity, limit of detection, linear range — and exposes the
inverse map (signal -> concentration) a deployed platform would use.

The linear range follows the paper's non-linearity definition (eq. 7):
starting from the low end, the range grows while ``NLmax`` stays below a
fraction of the spanned signal; Michaelis-Menten saturation eventually
bends the curve and caps the range.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import (
    average_sensitivity,
    lod_concentration,
    max_nonlinearity,
)
from repro.errors import AnalysisError, CalibrationError
from repro.units import ensure_non_negative, ensure_positive

__all__ = ["CalibrationPoint", "CalibrationCurve", "run_calibration"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One measured ladder step: concentration, mean signal, repeat std."""

    concentration: float
    signal: float
    signal_std: float = 0.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.concentration, "concentration")
        ensure_non_negative(self.signal_std, "signal_std")


class CalibrationCurve:
    """A fitted sensor calibration.

    Parameters
    ----------
    points:
        Ladder of :class:`CalibrationPoint`, any order (sorted
        internally); concentrations must be distinct and include enough
        points (>= 3) for a meaningful fit.
    blank_mean, blank_std:
        Blank statistics (zero-concentration signal) used for the LOD.
    """

    def __init__(self, points: list[CalibrationPoint],
                 blank_mean: float = 0.0, blank_std: float = 0.0) -> None:
        if len(points) < 3:
            raise CalibrationError("a calibration needs at least 3 points")
        ordered = sorted(points, key=lambda p: p.concentration)
        concentrations = [p.concentration for p in ordered]
        if len(set(concentrations)) != len(concentrations):
            raise CalibrationError("duplicate calibration concentrations")
        self.points = ordered
        self.blank_mean = float(blank_mean)
        self.blank_std = ensure_non_negative(blank_std, "blank_std")

    # -- raw arrays -----------------------------------------------------------

    @property
    def concentrations(self) -> np.ndarray:
        return np.asarray([p.concentration for p in self.points])

    @property
    def signals(self) -> np.ndarray:
        return np.asarray([p.signal for p in self.points])

    # -- Table III metrics ------------------------------------------------------

    def sensitivity(self, c_low: float | None = None,
                    c_high: float | None = None) -> float:
        """Savg (eq. 6) over [c_low, c_high] (full ladder by default)."""
        c, v = self._window(c_low, c_high)
        return average_sensitivity(c, v)

    def sensitivity_per_area(self, area: float) -> float:
        """Sensitivity normalised by electrode area (Table III units
        when fed paper-unit inputs; SI in, SI out)."""
        ensure_positive(area, "area")
        return self.sensitivity() / area

    def limit_of_detection(self) -> float:
        """LOD as a concentration, ``3*sigma_b / S`` with S from the
        low-concentration end of the ladder (where the blank matters)."""
        low_end = min(4, len(self.points))
        c = self.concentrations[:low_end]
        v = self.signals[:low_end]
        slope = average_sensitivity(c, v)
        return lod_concentration(self.blank_std, slope)

    def linear_range(self, nl_fraction: float = 0.05,
                     min_points: int = 3,
                     noise_floor: float | None = None) -> tuple[float, float]:
        """The largest low-anchored range with bounded non-linearity.

        Grows the window upward from the lowest concentration while
        ``NLmax`` (eq. 7) stays below ``nl_fraction`` of the window's
        signal span — or below three times the measurement noise,
        whichever is larger: curvature buried under the noise floor is
        not measurable and must not shrink the range.  ``noise_floor``
        defaults to the blank standard deviation.  The lower bound is the
        larger of the lowest measured point and the LOD.
        """
        if not 0.0 < nl_fraction < 0.5:
            raise CalibrationError("nl_fraction must be in (0, 0.5)")
        c_all = self.concentrations
        v_all = self.signals
        if min_points < 3:
            raise CalibrationError("min_points must be >= 3")
        floor = self.blank_std if noise_floor is None else float(noise_floor)
        best_high = None
        for j in range(min_points - 1, c_all.size):
            c = c_all[: j + 1]
            v = v_all[: j + 1]
            span = abs(float(v[-1] - v[0]))
            if span == 0.0:
                continue
            nl = max_nonlinearity(c, v)
            if nl <= max(nl_fraction * span, 3.0 * floor):
                best_high = float(c[j])
        if best_high is None:
            raise CalibrationError(
                "no linear region found (even the smallest window bends)")
        lower = float(c_all[0])
        try:
            lower = max(lower, self.limit_of_detection())
        except AnalysisError:
            # Data-shaped LOD failures (no usable blank statistics, a
            # flat low-concentration end) fall back to the measured
            # floor.  Anything else — bad configuration, numerical
            # failure — must propagate, not silently shrink the range.
            pass
        if lower >= best_high:
            lower = float(c_all[0])
        return lower, best_high

    # -- inverse use -----------------------------------------------------------

    def fit_line(self, c_low: float | None = None,
                 c_high: float | None = None) -> tuple[float, float]:
        """Least-squares (slope, intercept) over a window."""
        c, v = self._window(c_low, c_high)
        slope, intercept = np.polyfit(c, v, deg=1)
        return float(slope), float(intercept)

    def concentration_from_signal(self, signal: float,
                                  c_low: float | None = None,
                                  c_high: float | None = None) -> float:
        """Invert the linear fit: the deployed platform's readout path."""
        slope, intercept = self.fit_line(c_low, c_high)
        c = self.concentrations
        span = float(c[-1] - c[0])
        scale = max(float(np.max(np.abs(self.signals))), 1e-30)
        if abs(slope) * span < 1.0e-9 * scale:
            raise CalibrationError(
                "flat calibration cannot be inverted (signal varies by "
                "less than 1e-9 of its magnitude across the ladder)")
        return (float(signal) - intercept) / slope

    # -- internals ------------------------------------------------------------

    def _window(self, c_low: float | None,
                c_high: float | None) -> tuple[np.ndarray, np.ndarray]:
        c = self.concentrations
        v = self.signals
        mask = np.ones(c.size, dtype=bool)
        if c_low is not None:
            mask &= c >= c_low
        if c_high is not None:
            mask &= c <= c_high
        if int(np.count_nonzero(mask)) < 2:
            raise CalibrationError("calibration window holds < 2 points")
        return c[mask], v[mask]


def run_calibration(signal_at: Callable[[float], tuple[float, float]],
                    concentrations: list[float],
                    blank_repeats: int = 5) -> CalibrationCurve:
    """Drive a measurement callable over a concentration ladder.

    ``signal_at(c)`` must return ``(mean_signal, signal_std)`` for bulk
    concentration ``c``; it is called once per ladder step plus
    ``blank_repeats`` times at zero to establish the blank statistics.
    This indirection keeps the analysis layer independent of protocols —
    benches pass closures around :class:`~repro.electronics.chain.
    AcquisitionChain` runs.
    """
    if len(concentrations) < 3:
        raise CalibrationError("need at least 3 ladder concentrations")
    if blank_repeats < 2:
        raise CalibrationError("need at least 2 blank repeats")
    blanks = [signal_at(0.0) for _ in range(blank_repeats)]
    blank_means = [b[0] for b in blanks]
    blank_mean = float(np.mean(blank_means))
    # Blank sigma: combine the repeat scatter with the per-run std.  The
    # scatter uses the sample estimator (ddof=1): with a handful of
    # repeats the population formula biases sigma_b low and makes every
    # LOD derived from it optimistic.
    within = float(np.mean([b[1] for b in blanks]))
    between = float(np.std(blank_means, ddof=1))
    blank_std = math.hypot(within, between)
    points = []
    for c in sorted(concentrations):
        mean, std = signal_at(float(c))
        points.append(CalibrationPoint(concentration=float(c),
                                       signal=mean, signal_std=std))
    return CalibrationCurve(points, blank_mean=blank_mean,
                            blank_std=blank_std)
