"""Metric extraction: the Sec. II-B properties, calibrations, blanks."""

from repro.analysis.baseline import blank_statistics, trace_baseline
from repro.analysis.drift import GainDriftModel, OnePointRecalibration
from repro.analysis.calibration import (
    CalibrationCurve,
    CalibrationPoint,
    run_calibration,
)
from repro.analysis.selectivity import (
    CrossResponseMatrix,
    cross_response_matrix,
)
from repro.analysis.metrics import (
    average_sensitivity,
    lod_concentration,
    lod_signal,
    max_nonlinearity,
    sample_throughput,
    selectivity_ratio,
    steady_state_response_time,
    transient_response_time,
)

__all__ = [
    "lod_signal", "lod_concentration", "average_sensitivity",
    "max_nonlinearity", "steady_state_response_time",
    "transient_response_time", "sample_throughput", "selectivity_ratio",
    "CalibrationPoint", "CalibrationCurve", "run_calibration",
    "trace_baseline", "blank_statistics",
    "GainDriftModel", "OnePointRecalibration",
    "CrossResponseMatrix", "cross_response_matrix",
]
