"""Blank and baseline estimation.

The LOD definition of the paper (eq. 5) stands on the *blank*: the mean
``Vb`` and standard deviation ``sigma_b`` of the signal with no analyte.
This module measures blanks through the acquisition chain and estimates
pre-event baselines on recorded traces.
"""

from __future__ import annotations

import math

import numpy as np

from repro.electronics.chain import AcquisitionChain
from repro.errors import AnalysisError
from repro.measurement.trace import Trace
from repro.sensors.cell import ElectrochemicalCell
from repro.units import ensure_positive

__all__ = ["trace_baseline", "blank_statistics"]


def trace_baseline(trace: Trace, t_event: float) -> tuple[float, float]:
    """(mean, std) of the trace before ``t_event``.

    Raises when fewer than 4 pre-event samples exist — a baseline from
    less data is not meaningful for LOD work.
    """
    mask = trace.times < t_event
    if int(np.count_nonzero(mask)) < 4:
        raise AnalysisError(
            f"fewer than 4 samples before t={t_event}; record a longer "
            f"pre-injection window")
    values = trace.current[mask]
    return float(np.mean(values)), float(np.std(values))


def blank_statistics(cell: ElectrochemicalCell, we_name: str,
                     chain: AcquisitionChain, e_applied: float,
                     duration: float = 10.0, repeats: int = 5,
                     rng: np.random.Generator | None = None,
                     ) -> tuple[float, float]:
    """Measure (Vb, sigma_b) of one WE with the chamber as-is.

    Runs ``repeats`` fixed-potential acquisitions of ``duration`` seconds
    each through the chain and pools within-run noise with between-run
    scatter.  Call with an analyte-free chamber for a true blank; calling
    with analyte present measures the working baseline instead.
    """
    ensure_positive(duration, "duration")
    if repeats < 2:
        raise AnalysisError("need at least 2 blank repeats")
    generator = rng if rng is not None else np.random.default_rng(1980)
    we = cell.working_electrode(we_name)
    true_current = cell.measured_current(we_name, e_applied)
    means = []
    stds = []
    for _ in range(repeats):
        mean, std = chain.measure_constant(
            true_current, duration=duration, we=we, rng=generator)
        means.append(mean)
        stds.append(std)
    within = float(np.mean(stds))
    between = float(np.std(means))
    return float(np.mean(means)), math.hypot(within, between)
