"""Selectivity analysis: how well each electrode ignores everything else.

Sec. II-B: "*Selectivity*.  It measures the ability to discriminate
between different substances.  Such behavior is principally a function of
the recognition element, i.e. the enzymes."

The core artifact is the **cross-response matrix**: every working
electrode's signal when the chamber holds exactly one candidate species.
A selective panel is near-diagonal; off-diagonal mass comes from three
physical routes the models capture —

- **direct oxidisers** (dopamine, etoposide) respond on *every*
  electrode, including blanks (the CDS caveat),
- **H2O2 cross-talk** couples co-chambered oxidase electrodes,
- **shared CYP isoforms** respond to all of their substrates (resolved
  only by CV peak position, not by chronoamperometry).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import selectivity_ratio
from repro.errors import AnalysisError
from repro.io.tables import render_table
from repro.sensors.cell import ElectrochemicalCell
from repro.units import ensure_positive

__all__ = ["CrossResponseMatrix", "cross_response_matrix"]


@dataclass(frozen=True)
class CrossResponseMatrix:
    """WE-by-species steady-state responses at a fixed potential.

    ``responses[we][species]`` is the baseline-corrected current (A) of
    electrode ``we`` with only ``species`` present at its probe
    concentration.  ``concentrations`` records the loading used per
    species.
    """

    e_applied: float
    we_names: tuple[str, ...]
    species: tuple[str, ...]
    responses: dict[str, dict[str, float]]
    concentrations: dict[str, float]
    primary_targets: dict[str, tuple[str, ...]]

    def response(self, we_name: str, species: str) -> float:
        try:
            return self.responses[we_name][species]
        except KeyError:
            raise AnalysisError(
                f"no response recorded for ({we_name!r}, {species!r})"
            ) from None

    def selectivity(self, we_name: str, interferent: str) -> float:
        """Primary-target-to-interferent ratio for one electrode.

        The primary signal is the largest response among the electrode's
        own targets.  Infinite when the interferent gives no signal.
        """
        own = self.primary_targets.get(we_name, ())
        if not own:
            raise AnalysisError(
                f"electrode {we_name!r} has no primary target "
                f"(blank electrodes have no selectivity)")
        primary = max(abs(self.response(we_name, t)) for t in own)
        if primary == 0.0:
            raise AnalysisError(
                f"electrode {we_name!r} does not respond to its own "
                f"target(s) — selectivity undefined")
        return selectivity_ratio(primary, self.response(we_name, interferent))

    def worst_interferent(self, we_name: str) -> tuple[str, float]:
        """The species with the lowest selectivity ratio for ``we_name``.

        Species that are the electrode's own targets are excluded.
        """
        own = set(self.primary_targets.get(we_name, ()))
        worst_name, worst_ratio = "", float("inf")
        for name in self.species:
            if name in own:
                continue
            ratio = self.selectivity(we_name, name)
            if ratio < worst_ratio:
                worst_name, worst_ratio = name, ratio
        if not worst_name:
            raise AnalysisError(f"no interferents evaluated for {we_name!r}")
        return worst_name, worst_ratio

    def render(self, scale: float = 1.0e9, unit: str = "nA") -> str:
        """ASCII matrix, one row per electrode."""
        headers = ["WE \\ species"] + [s[:12] for s in self.species]
        rows = []
        for we in self.we_names:
            row = [we]
            for s in self.species:
                value = self.responses[we][s] * scale
                marker = "*" if s in self.primary_targets.get(we, ()) else ""
                row.append(f"{value:.2f}{marker}")
            rows.append(row)
        table = render_table(headers, rows,
                             title=f"cross-response matrix ({unit}; "
                                   f"* = electrode's own target)")
        return table


def cross_response_matrix(cell: ElectrochemicalCell, e_applied: float,
                          species: tuple[str, ...] | None = None,
                          concentration: float = 1.0,
                          ) -> CrossResponseMatrix:
    """Measure the steady-state cross-response matrix of a cell.

    Each species is loaded alone at ``concentration`` (mol/m^3) into a
    copy of the chamber; every WE's baseline-corrected current is
    recorded.  ``species`` defaults to the union of all electrode
    targets.

    Uses the steady-state fast path (no transients, no chain noise): the
    matrix characterises the *chemistry*, which is where the paper
    locates selectivity.
    """
    ensure_positive(concentration, "concentration")
    if species is None:
        species = cell.targets()
    if not species:
        raise AnalysisError("no species to evaluate")
    we_names = cell.we_names()

    primary: dict[str, tuple[str, ...]] = {}
    for we in cell.working_electrodes:
        primary[we.name] = we.targets()

    # Baselines: empty chamber.
    empty = cell.chamber.copy()
    for name in list(empty.species_present()):
        empty.set_bulk(name, 0.0)
    baselines = {}
    original = cell.chamber
    try:
        cell.chamber = empty
        for we_name in we_names:
            baselines[we_name] = cell.measured_current(we_name, e_applied)
        responses: dict[str, dict[str, float]] = {w: {} for w in we_names}
        for s in species:
            loaded = empty.copy()
            loaded.set_bulk(s, concentration)
            cell.chamber = loaded
            for we_name in we_names:
                value = cell.measured_current(we_name, e_applied)
                responses[we_name][s] = value - baselines[we_name]
    finally:
        cell.chamber = original
    return CrossResponseMatrix(
        e_applied=e_applied, we_names=we_names, species=tuple(species),
        responses=responses,
        concentrations={s: concentration for s in species},
        primary_targets=primary)
