"""The acquisition-chain quality metrics of paper Sec. II-B.

Every definition follows the paper (and its cited recommendations):

- **Limit of detection** (eq. 5, ACS committee [24]):
  ``LOD = Vb + 3*sigma_b`` in signal units; the smallest *concentration*
  distinguishable from blank is ``3*sigma_b / S`` for sensitivity S.
- **Sensitivity** (eq. 6): ``Savg = dV/dC`` over the measured range.
- **Linearity** (eq. 7):
  ``NLmax = max |V_C - V_C0 - Savg*(C - C0)|``.
- **Response times**: steady-state response time = time to 90 % of the
  steady response; transient response time = time where dV/dt peaks.
- **Sample throughput**: measurements per unit time, from transient plus
  recovery time.
- **Selectivity**: discrimination ratio between target and interferent
  responses.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import AnalysisError
from repro.measurement.trace import Trace
from repro.units import ensure_non_negative, ensure_positive

__all__ = [
    "lod_signal",
    "lod_concentration",
    "average_sensitivity",
    "max_nonlinearity",
    "steady_state_response_time",
    "transient_response_time",
    "sample_throughput",
    "selectivity_ratio",
]


def lod_signal(blank_mean: float, blank_std: float,
               confidence: float = 3.0) -> float:
    """Paper eq. (5): LOD = Vb + 3*sigma_b, in signal units.

    The default ``confidence=3`` is the ACS recommendation the paper
    quotes ("a definite risk of less than 7 % for false positive").
    """
    ensure_non_negative(blank_std, "blank_std")
    ensure_positive(confidence, "confidence")
    return blank_mean + confidence * blank_std


def lod_concentration(blank_std: float, sensitivity: float,
                      confidence: float = 3.0) -> float:
    """Smallest detectable concentration, ``3*sigma_b / |S|``.

    ``sensitivity`` is the calibration slope in signal units per
    concentration unit; its sign is irrelevant (CYP reduction currents
    are negative).
    """
    ensure_non_negative(blank_std, "blank_std")
    ensure_positive(confidence, "confidence")
    if sensitivity == 0.0 or not math.isfinite(sensitivity):
        raise AnalysisError(
            f"sensitivity must be nonzero and finite, got {sensitivity!r}")
    return confidence * blank_std / abs(sensitivity)


def average_sensitivity(concentrations: np.ndarray,
                        signals: np.ndarray) -> float:
    """Paper eq. (6): Savg = delta(V) / delta(C) over the measured range.

    Uses the endpoint definition of the paper (range edges), which equals
    the least-squares slope for perfectly linear data and is the paper's
    stated estimator otherwise.
    """
    c, v = _as_curve(concentrations, signals)
    span = c[-1] - c[0]
    if span <= 0.0:
        raise AnalysisError("concentration range must have positive span")
    return float((v[-1] - v[0]) / span)


def max_nonlinearity(concentrations: np.ndarray, signals: np.ndarray,
                     reference_index: int = 0) -> float:
    """Paper eq. (7): NLmax = max |V_C - V_C0 - Savg*(C - C0)|.

    ``reference_index`` selects C0 (the paper's reference concentration;
    the lowest measured point by default).  Returned in signal units;
    divide by the signal span for a fractional figure.
    """
    c, v = _as_curve(concentrations, signals)
    if not 0 <= reference_index < c.size:
        raise AnalysisError(f"reference_index {reference_index} out of range")
    savg = average_sensitivity(c, v)
    c0, v0 = c[reference_index], v[reference_index]
    deviations = np.abs(v - v0 - savg * (c - c0))
    return float(np.max(deviations))


def steady_state_response_time(trace: Trace, t_event: float,
                               settle_fraction: float = 0.9,
                               baseline: float | None = None) -> float:
    """Time after ``t_event`` to reach ``settle_fraction`` of the step.

    The paper: "the time necessary to reach 90 % of the steady-state
    response".  The steady level is the tail mean; the pre-event level is
    ``baseline`` or the mean before the event.  Uses the *last* crossing
    into the settled band so noise spikes do not fake early settling.
    """
    if not 0.0 < settle_fraction < 1.0:
        raise AnalysisError("settle_fraction must be in (0, 1)")
    times, values = trace.times, trace.current
    after = times >= t_event
    if int(np.count_nonzero(after)) < 4:
        raise AnalysisError("too few samples after the event")
    if baseline is None:
        before = times < t_event
        if not np.any(before):
            baseline = float(values[0])
        else:
            baseline = float(np.mean(values[before]))
    steady = trace.tail_mean()
    step = steady - baseline
    if abs(step) <= 0.0:
        raise AnalysisError("no response step after the event")
    threshold = baseline + settle_fraction * step
    t_after = times[after]
    v_after = values[after]
    if step > 0:
        outside = v_after < threshold
    else:
        outside = v_after > threshold
    if not np.any(outside):
        return float(t_after[0] - t_event)
    last_outside = int(np.flatnonzero(outside)[-1])
    if last_outside + 1 >= t_after.size:
        raise AnalysisError("response never settles inside the record")
    return float(t_after[last_outside + 1] - t_event)


def transient_response_time(trace: Trace, t_event: float) -> float:
    """Time after ``t_event`` where |dV/dt| is largest (paper Sec. II-B)."""
    times, values = trace.times, trace.current
    after = times >= t_event
    if int(np.count_nonzero(after)) < 4:
        raise AnalysisError("too few samples after the event")
    t_after = times[after]
    slope = np.gradient(values[after], t_after)
    k = int(np.argmax(np.abs(slope)))
    return float(t_after[k] - t_event)


def sample_throughput(transient_time: float, recovery_time: float) -> float:
    """Individual samples per hour (paper Sec. II-B).

    One sample occupies the transient response plus the recovery back to
    baseline.
    """
    ensure_positive(transient_time, "transient_time")
    ensure_non_negative(recovery_time, "recovery_time")
    return 3600.0 / (transient_time + recovery_time)


def selectivity_ratio(target_signal: float, interferent_signal: float) -> float:
    """Target-to-interferent response ratio at equal concentrations.

    Infinite when the interferent produces no signal at all (ideal
    enzyme specificity).
    """
    if target_signal == 0.0:
        raise AnalysisError("target signal is zero; sensor does not respond")
    if interferent_signal == 0.0:
        return float("inf")
    return abs(target_signal) / abs(interferent_signal)


def _as_curve(concentrations, signals) -> tuple[np.ndarray, np.ndarray]:
    c = np.asarray(concentrations, dtype=float)
    v = np.asarray(signals, dtype=float)
    if c.ndim != 1 or c.size < 2:
        raise AnalysisError("need at least two calibration points")
    if v.shape != c.shape:
        raise AnalysisError("concentrations/signals shape mismatch")
    if np.any(np.diff(c) <= 0.0):
        raise AnalysisError("concentrations must be strictly increasing")
    return c, v
